//! The Visapult wire protocol: light and heavy payloads over striped sockets.
//!
//! Appendix A: per timestep each back-end PE sends the viewer a *light
//! payload* — "visualization metadata \[that\] consists of texture size, bytes
//! per pixel, and geometric information used to place the texture in a 3D
//! scene ... on the order of 256 bytes" — followed by a *heavy payload* of
//! "raw pixel data, as well as any geometric data", typically 0.25–1 MB of
//! texture plus tens of kilobytes of AMR grid lines.
//!
//! Messages are length-prefixed and carry a magic word and type byte so the
//! same encoding works over in-process channels (as `FramePayload` structs)
//! and over real TCP sockets (via [`write_frame`]/[`read_frame`]).

use crate::error::VisapultError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::sync::Arc;

/// Protocol magic word ("VSPL").
pub const MAGIC: u32 = 0x5653_504c;
/// Message type byte for a light payload.
pub const TYPE_LIGHT: u8 = 1;
/// Message type byte for a heavy payload.
pub const TYPE_HEAVY: u8 = 2;

/// Visualization metadata for one (PE, timestep): everything the viewer needs
/// to place the incoming texture in its scene graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LightPayload {
    /// Timestep number.
    pub frame: u32,
    /// Sending PE rank.
    pub rank: u32,
    /// Texture width in pixels.
    pub texture_width: u32,
    /// Texture height in pixels.
    pub texture_height: u32,
    /// Bytes per pixel of the heavy payload's texture (4 for RGBA8).
    pub bytes_per_pixel: u32,
    /// Centre of the quad the texture maps onto, in model coordinates.
    pub quad_center: [f32; 3],
    /// Half-extent vector along the texture's U direction.
    pub quad_u: [f32; 3],
    /// Half-extent vector along the texture's V direction.
    pub quad_v: [f32; 3],
    /// Number of line segments in the heavy payload's geometry block.
    pub geometry_segments: u32,
}

impl LightPayload {
    /// Encoded size in bytes (fixed): six `u32` fields plus three 3-vectors
    /// of `f32`.
    pub const ENCODED_LEN: usize = 6 * 4 + 9 * 4;
}

/// The visualization data itself: the rendered slab texture and any geometry.
///
/// Both members are shared: the texture is a refcounted [`Bytes`] buffer and
/// the geometry an `Arc`'d segment list, so a frame payload moves from the
/// back-end render loop through the per-PE channel into the viewer's scene
/// graph without its bytes ever being memcpy'd.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeavyPayload {
    /// Timestep number.
    pub frame: u32,
    /// Sending PE rank.
    pub rank: u32,
    /// RGBA8 texture bytes (`texture_width × texture_height × 4`), shared.
    pub texture_rgba8: Bytes,
    /// AMR grid line segments in model coordinates, shared.
    pub geometry: Arc<Vec<([f32; 3], [f32; 3])>>,
}

impl HeavyPayload {
    /// Total payload size in bytes (texture plus geometry).
    pub fn payload_bytes(&self) -> u64 {
        self.texture_rgba8.len() as u64 + (self.geometry.len() * 24) as u64
    }
}

/// One timestep's complete transmission from one PE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FramePayload {
    /// The metadata (sent first).
    pub light: LightPayload,
    /// The data (sent second).
    pub heavy: HeavyPayload,
}

impl FramePayload {
    /// Total bytes this frame contributes to the back-end → viewer link.
    pub fn wire_bytes(&self) -> u64 {
        LightPayload::ENCODED_LEN as u64 + self.heavy.payload_bytes()
    }

    /// Total *framed* bytes (message headers included) this frame occupies
    /// on the striped transport — always equal to what
    /// `StripeSender::send_frame` returns, so telemetry that logs before the
    /// send and counters summed after it agree.
    pub fn framed_wire_bytes(&self) -> u64 {
        // + the light message header (9), the heavy header segment, and the
        // geometry count word (4); the payload bytes are already counted.
        self.wire_bytes() + 9 + HEAVY_HEADER_LEN as u64 + 4
    }
}

fn put_vec3(buf: &mut BytesMut, v: [f32; 3]) {
    for c in v {
        buf.put_f32(c);
    }
}

fn get_vec3(buf: &mut impl Buf) -> [f32; 3] {
    [buf.get_f32(), buf.get_f32(), buf.get_f32()]
}

/// Encode a light payload (including the message header).
pub fn encode_light(p: &LightPayload) -> Vec<u8> {
    let mut body = BytesMut::with_capacity(LightPayload::ENCODED_LEN);
    body.put_u32(p.frame);
    body.put_u32(p.rank);
    body.put_u32(p.texture_width);
    body.put_u32(p.texture_height);
    body.put_u32(p.bytes_per_pixel);
    put_vec3(&mut body, p.quad_center);
    put_vec3(&mut body, p.quad_u);
    put_vec3(&mut body, p.quad_v);
    body.put_u32(p.geometry_segments);
    frame_message(TYPE_LIGHT, &body)
}

/// Encode a heavy payload (including the message header).
pub fn encode_heavy(p: &HeavyPayload) -> Vec<u8> {
    let mut body = BytesMut::with_capacity(16 + p.texture_rgba8.len() + p.geometry.len() * 24);
    body.put_u32(p.frame);
    body.put_u32(p.rank);
    body.put_u32(p.texture_rgba8.len() as u32);
    body.put_slice(&p.texture_rgba8);
    body.put_u32(p.geometry.len() as u32);
    for (a, b) in p.geometry.iter() {
        put_vec3(&mut body, *a);
        put_vec3(&mut body, *b);
    }
    frame_message(TYPE_HEAVY, &body)
}

fn frame_message(msg_type: u8, body: &[u8]) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(9 + body.len());
    out.put_u32(MAGIC);
    out.put_u8(msg_type);
    out.put_u32(body.len() as u32);
    out.put_slice(body);
    out.to_vec()
}

/// Decode a light payload from a full message (header included).
pub fn decode_light(msg: &[u8]) -> Result<LightPayload, VisapultError> {
    let (msg_type, mut body) = split_message(msg)?;
    if msg_type != TYPE_LIGHT {
        return Err(VisapultError::Protocol(format!(
            "expected light payload, got type {msg_type}"
        )));
    }
    if body.remaining() < LightPayload::ENCODED_LEN {
        return Err(VisapultError::Protocol("light payload truncated".to_string()));
    }
    Ok(LightPayload {
        frame: body.get_u32(),
        rank: body.get_u32(),
        texture_width: body.get_u32(),
        texture_height: body.get_u32(),
        bytes_per_pixel: body.get_u32(),
        quad_center: get_vec3(&mut body),
        quad_u: get_vec3(&mut body),
        quad_v: get_vec3(&mut body),
        geometry_segments: body.get_u32(),
    })
}

/// Decode a heavy payload from a full message (header included), copying the
/// texture out of the message buffer.  When the message already lives in a
/// shared [`Bytes`] buffer, prefer [`decode_heavy_shared`], which slices the
/// texture zero-copy instead.
pub fn decode_heavy(msg: &[u8]) -> Result<HeavyPayload, VisapultError> {
    decode_heavy_inner(msg, |start, len| Bytes::from(msg[start..start + len].to_vec()))
}

/// Decode a heavy payload from a shared message buffer.  The returned
/// payload's texture is an O(1) slice of `msg` — the raw pixel data read off
/// the socket is never copied again.
pub fn decode_heavy_shared(msg: &Bytes) -> Result<HeavyPayload, VisapultError> {
    decode_heavy_inner(msg, |start, len| msg.slice(start..start + len))
}

fn decode_heavy_inner(msg: &[u8], texture: impl FnOnce(usize, usize) -> Bytes) -> Result<HeavyPayload, VisapultError> {
    let (msg_type, mut body) = split_message(msg)?;
    if msg_type != TYPE_HEAVY {
        return Err(VisapultError::Protocol(format!(
            "expected heavy payload, got type {msg_type}"
        )));
    }
    if body.remaining() < 12 {
        return Err(VisapultError::Protocol("heavy payload truncated".to_string()));
    }
    let frame = body.get_u32();
    let rank = body.get_u32();
    let tex_len = body.get_u32() as usize;
    if body.remaining() < tex_len {
        return Err(VisapultError::Protocol("heavy payload texture truncated".to_string()));
    }
    // Hand the extractor the texture's absolute position in `msg` (derived
    // from how far the body cursor has advanced, so there is exactly one
    // source of truth for the layout) and a shared message buffer can be
    // sliced in place.
    let tex_start = body.as_ptr() as usize - msg.as_ptr() as usize;
    let texture_rgba8 = texture(tex_start, tex_len);
    let mut body = &body[tex_len..];
    if body.remaining() < 4 {
        return Err(VisapultError::Protocol(
            "heavy payload geometry count missing".to_string(),
        ));
    }
    let seg_count = body.get_u32() as usize;
    if body.remaining() < seg_count * 24 {
        return Err(VisapultError::Protocol("heavy payload geometry truncated".to_string()));
    }
    let mut geometry = Vec::with_capacity(seg_count);
    for _ in 0..seg_count {
        geometry.push((get_vec3(&mut body), get_vec3(&mut body)));
    }
    Ok(HeavyPayload {
        frame,
        rank,
        texture_rgba8,
        geometry: Arc::new(geometry),
    })
}

fn split_message(msg: &[u8]) -> Result<(u8, &[u8]), VisapultError> {
    if msg.len() < 9 {
        return Err(VisapultError::Protocol("message shorter than header".to_string()));
    }
    let mut header = &msg[..9];
    let magic = header.get_u32();
    if magic != MAGIC {
        return Err(VisapultError::Protocol(format!("bad magic {magic:#x}")));
    }
    let msg_type = header.get_u8();
    let len = header.get_u32() as usize;
    if msg.len() < 9 + len {
        return Err(VisapultError::Protocol(format!(
            "message body truncated: expected {len} bytes, have {}",
            msg.len() - 9
        )));
    }
    Ok((msg_type, &msg[9..9 + len]))
}

/// One frame split into its wire segments, each a shared [`Bytes`] buffer —
/// the zero-copy encoding the striped transport ships.
///
/// Concatenated in order the four segments are byte-identical to
/// `encode_light(..) ‖ encode_heavy(..)`, but the texture segment is an O(1)
/// refcount bump of the payload's own buffer rather than a copy, so a frame
/// can be chunked onto stripes and reassembled on the far side without its
/// pixel data ever being memcpy'd.
#[derive(Debug, Clone)]
pub struct FrameSegments {
    /// The complete light-payload message (header + body).
    pub light: Bytes,
    /// The heavy message's header + fixed body prefix (magic, type, length,
    /// frame, rank, texture length): [`HEAVY_HEADER_LEN`] bytes.
    pub heavy_header: Bytes,
    /// The raw texture, shared with the payload (no copy).
    pub texture: Bytes,
    /// The geometry block: segment count + packed endpoints.
    pub geometry: Bytes,
}

/// Encoded size of [`FrameSegments::heavy_header`]: the 9-byte message header
/// plus frame, rank and texture length.
pub const HEAVY_HEADER_LEN: usize = 9 + 12;

impl FrameSegments {
    /// Encode a frame into its wire segments without copying the texture.
    pub fn encode(frame: &FramePayload) -> FrameSegments {
        let light = Bytes::from(encode_light(&frame.light));
        let heavy = &frame.heavy;
        let body_len = 12 + heavy.texture_rgba8.len() + 4 + heavy.geometry.len() * 24;
        let mut header = BytesMut::with_capacity(HEAVY_HEADER_LEN);
        header.put_u32(MAGIC);
        header.put_u8(TYPE_HEAVY);
        header.put_u32(body_len as u32);
        header.put_u32(heavy.frame);
        header.put_u32(heavy.rank);
        header.put_u32(heavy.texture_rgba8.len() as u32);
        let mut geometry = BytesMut::with_capacity(4 + heavy.geometry.len() * 24);
        geometry.put_u32(heavy.geometry.len() as u32);
        for (a, b) in heavy.geometry.iter() {
            put_vec3(&mut geometry, *a);
            put_vec3(&mut geometry, *b);
        }
        FrameSegments {
            light,
            heavy_header: header.freeze(),
            texture: heavy.texture_rgba8.clone(),
            geometry: geometry.freeze(),
        }
    }

    /// True when `other` views the exact same four buffer windows — the
    /// identity test a shared decode memo uses to prove two reassemblies are
    /// byte-for-byte the same frame without comparing the bytes.  Same
    /// allocation at the same window means same content (the buffers are
    /// immutable), so a hit is exact, never probabilistic.
    pub fn same_regions(&self, other: &FrameSegments) -> bool {
        self.light.ptr_eq(&other.light)
            && self.heavy_header.ptr_eq(&other.heavy_header)
            && self.texture.ptr_eq(&other.texture)
            && self.geometry.ptr_eq(&other.geometry)
    }

    /// Segment lengths in wire order.
    pub fn lens(&self) -> [usize; 4] {
        [
            self.light.len(),
            self.heavy_header.len(),
            self.texture.len(),
            self.geometry.len(),
        ]
    }

    /// Total framed bytes this frame puts on the wire.
    pub fn wire_bytes(&self) -> u64 {
        self.lens().iter().map(|l| *l as u64).sum()
    }

    /// Decode reassembled segments back into a frame, validating every length
    /// and the light/heavy identity fields against each other.  The texture
    /// passes through as-is — when the segments are rejoined slices of the
    /// sender's buffers this is a fully zero-copy decode.
    pub fn decode(self) -> Result<FramePayload, VisapultError> {
        let light = decode_light(&self.light)?;
        let mut h: &[u8] = &self.heavy_header;
        if h.remaining() < HEAVY_HEADER_LEN {
            return Err(VisapultError::Protocol("heavy header truncated".to_string()));
        }
        let magic = h.get_u32();
        if magic != MAGIC {
            return Err(VisapultError::Protocol(format!("bad magic {magic:#x}")));
        }
        let msg_type = h.get_u8();
        if msg_type != TYPE_HEAVY {
            return Err(VisapultError::Protocol(format!(
                "expected heavy payload, got type {msg_type}"
            )));
        }
        let body_len = h.get_u32() as usize;
        let frame = h.get_u32();
        let rank = h.get_u32();
        let tex_len = h.get_u32() as usize;
        if tex_len != self.texture.len() {
            return Err(VisapultError::Protocol(format!(
                "texture segment is {} bytes but the header says {tex_len}",
                self.texture.len()
            )));
        }
        if body_len != 12 + tex_len + self.geometry.len() {
            return Err(VisapultError::Protocol("heavy body length mismatch".to_string()));
        }
        if frame != light.frame || rank != light.rank {
            return Err(VisapultError::Protocol(format!(
                "light ({}, {}) and heavy ({frame}, {rank}) payloads disagree on identity",
                light.frame, light.rank
            )));
        }
        if tex_len != light.texture_width as usize * light.texture_height as usize * light.bytes_per_pixel as usize {
            return Err(VisapultError::Protocol(format!(
                "texture is {tex_len} bytes but the metadata promises {}x{}x{}",
                light.texture_width, light.texture_height, light.bytes_per_pixel
            )));
        }
        let mut g: &[u8] = &self.geometry;
        if g.remaining() < 4 {
            return Err(VisapultError::Protocol(
                "heavy payload geometry count missing".to_string(),
            ));
        }
        let seg_count = g.get_u32() as usize;
        if g.remaining() != seg_count * 24 {
            return Err(VisapultError::Protocol("heavy payload geometry truncated".to_string()));
        }
        if seg_count != light.geometry_segments as usize {
            return Err(VisapultError::Protocol(format!(
                "geometry has {seg_count} segments but the metadata promises {}",
                light.geometry_segments
            )));
        }
        let mut geometry = Vec::with_capacity(seg_count);
        for _ in 0..seg_count {
            geometry.push((get_vec3(&mut g), get_vec3(&mut g)));
        }
        Ok(FramePayload {
            heavy: HeavyPayload {
                frame,
                rank,
                texture_rgba8: self.texture,
                geometry: Arc::new(geometry),
            },
            light,
        })
    }
}

/// Write one frame (light then heavy, the order the paper prescribes) to a
/// byte stream — used when the back-end → viewer link is a real TCP socket.
pub fn write_frame<W: Write>(w: &mut W, frame: &FramePayload) -> Result<(), VisapultError> {
    w.write_all(&encode_light(&frame.light))?;
    w.write_all(&encode_heavy(&frame.heavy))?;
    w.flush()?;
    Ok(())
}

/// Read one complete message (header + body) from a byte stream into a
/// shared buffer, so decoders can slice it zero-copy.
fn read_message<R: Read>(r: &mut R) -> Result<Bytes, VisapultError> {
    let mut header = [0u8; 9];
    r.read_exact(&mut header)?;
    let mut h = &header[4..];
    let _type = h.get_u8();
    let len = h.get_u32() as usize;
    let mut msg = Vec::with_capacity(9 + len);
    msg.extend_from_slice(&header);
    msg.resize(9 + len, 0);
    r.read_exact(&mut msg[9..])?;
    Ok(Bytes::from(msg))
}

/// Read one frame (light then heavy) from a byte stream.  The heavy texture
/// is decoded as a zero-copy slice of the received message buffer.
pub fn read_frame<R: Read>(r: &mut R) -> Result<FramePayload, VisapultError> {
    let light_msg = read_message(r)?;
    let light = decode_light(&light_msg)?;
    let heavy_msg = read_message(r)?;
    let heavy = decode_heavy_shared(&heavy_msg)?;
    Ok(FramePayload { light, heavy })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> FramePayload {
        FramePayload {
            light: LightPayload {
                frame: 7,
                rank: 3,
                texture_width: 8,
                texture_height: 8,
                bytes_per_pixel: 4,
                quad_center: [1.0, 2.0, 3.0],
                quad_u: [4.0, 0.0, 0.0],
                quad_v: [0.0, 5.0, 0.0],
                geometry_segments: 2,
            },
            heavy: HeavyPayload {
                frame: 7,
                rank: 3,
                texture_rgba8: (0..8 * 8 * 4).map(|i| (i % 255) as u8).collect::<Vec<u8>>().into(),
                geometry: Arc::new(vec![([0.0; 3], [1.0, 1.0, 1.0]), ([2.0, 2.0, 2.0], [3.0, 3.0, 3.0])]),
            },
        }
    }

    #[test]
    fn light_payload_roundtrip_and_size() {
        let f = sample_frame();
        let enc = encode_light(&f.light);
        // The paper: metadata "is on the order of 256 bytes".
        assert!(enc.len() < 256, "light payload is {} bytes", enc.len());
        let dec = decode_light(&enc).unwrap();
        assert_eq!(dec, f.light);
    }

    #[test]
    fn heavy_payload_roundtrip() {
        let f = sample_frame();
        let enc = encode_heavy(&f.heavy);
        let dec = decode_heavy(&enc).unwrap();
        assert_eq!(dec, f.heavy);
        assert_eq!(f.heavy.payload_bytes(), (8 * 8 * 4 + 2 * 24) as u64);
    }

    #[test]
    fn shared_decode_slices_the_texture_zero_copy() {
        let f = sample_frame();
        let msg = Bytes::from(encode_heavy(&f.heavy));
        let before = bytes::deep_copy_count();
        let dec = decode_heavy_shared(&msg).unwrap();
        assert_eq!(dec, f.heavy);
        assert_eq!(
            bytes::deep_copy_count(),
            before,
            "shared decode must not copy the texture"
        );
        // The decoded texture literally is a window into the message buffer.
        assert!(dec.texture_rgba8.ptr_eq(&msg.slice(21..21 + dec.texture_rgba8.len())));
        // Truncation errors still apply.
        assert!(decode_heavy_shared(&msg.slice(..msg.len() - 10)).is_err());
    }

    #[test]
    fn segment_encode_matches_the_legacy_wire_format() {
        let f = sample_frame();
        let segments = FrameSegments::encode(&f);
        let mut legacy = encode_light(&f.light);
        legacy.extend_from_slice(&encode_heavy(&f.heavy));
        let mut concat = Vec::new();
        for seg in [
            &segments.light,
            &segments.heavy_header,
            &segments.texture,
            &segments.geometry,
        ] {
            concat.extend_from_slice(seg);
        }
        assert_eq!(concat, legacy, "segments concatenate to the legacy encoding");
        assert_eq!(segments.wire_bytes(), legacy.len() as u64);
        assert_eq!(segments.heavy_header.len(), HEAVY_HEADER_LEN);
        // The payload-side accessor agrees with the encoded reality, so
        // telemetry logged before a send matches the counters summed after.
        assert_eq!(f.framed_wire_bytes(), segments.wire_bytes());
    }

    #[test]
    fn segment_encode_shares_the_texture_and_decode_round_trips() {
        let f = sample_frame();
        let before = bytes::deep_copy_count();
        let segments = FrameSegments::encode(&f);
        assert!(
            segments.texture.ptr_eq(&f.heavy.texture_rgba8),
            "the texture segment must be the payload's own buffer"
        );
        let texture = segments.texture.clone();
        let back = segments.decode().unwrap();
        assert_eq!(back, f);
        assert!(back.heavy.texture_rgba8.ptr_eq(&texture), "decode passes it through");
        assert_eq!(
            bytes::deep_copy_count(),
            before,
            "segment encode/decode must never deep-copy"
        );
    }

    #[test]
    fn segment_decode_rejects_inconsistent_frames() {
        let f = sample_frame();
        // Texture shorter than the header promises.
        let mut s = FrameSegments::encode(&f);
        s.texture = s.texture.slice(..s.texture.len() - 4);
        assert!(s.decode().is_err());
        // Light and heavy disagreeing on identity.
        let mut wrong = f.clone();
        wrong.light.frame += 1;
        assert!(FrameSegments::encode(&wrong).decode().is_err());
        // Geometry truncated.
        let mut s = FrameSegments::encode(&f);
        s.geometry = s.geometry.slice(..s.geometry.len() - 1);
        assert!(s.decode().is_err());
        // Metadata promising a different texture size.
        let mut wrong = f.clone();
        wrong.light.texture_width += 1;
        assert!(FrameSegments::encode(&wrong).decode().is_err());
    }

    #[test]
    fn type_confusion_is_rejected() {
        let f = sample_frame();
        assert!(decode_light(&encode_heavy(&f.heavy)).is_err());
        assert!(decode_heavy(&encode_light(&f.light)).is_err());
    }

    #[test]
    fn corrupt_messages_are_rejected() {
        let f = sample_frame();
        let mut enc = encode_light(&f.light);
        enc[0] ^= 0xff; // break the magic
        assert!(decode_light(&enc).is_err());

        let enc = encode_heavy(&f.heavy);
        assert!(decode_heavy(&enc[..enc.len() - 10]).is_err());
        assert!(decode_light(&[1, 2, 3]).is_err());
    }

    #[test]
    fn stream_roundtrip_over_a_cursor() {
        let f = sample_frame();
        let mut buf = Vec::new();
        write_frame(&mut buf, &f).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back = read_frame(&mut cursor).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn stream_roundtrip_over_real_tcp() {
        let f = sample_frame();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn({
            let f = f.clone();
            move || {
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                for _ in 0..3 {
                    write_frame(&mut stream, &f).unwrap();
                }
            }
        });
        let (mut conn, _) = listener.accept().unwrap();
        for _ in 0..3 {
            let got = read_frame(&mut conn).unwrap();
            assert_eq!(got, f);
        }
        sender.join().unwrap();
    }

    #[test]
    fn wire_bytes_counts_light_and_heavy() {
        let f = sample_frame();
        assert_eq!(
            f.wire_bytes(),
            LightPayload::ENCODED_LEN as u64 + f.heavy.payload_bytes()
        );
    }
}
