//! The multi-session service layer: one render farm, many viewers.
//!
//! The paper's deployment (§3) decouples the parallel back end from the
//! viewer precisely so one expensive render farm can serve remote consumers
//! at their own frame rates — yet until this module the pipeline hard-wired
//! exactly one viewer per campaign.  `service` is the seam that turns the
//! pipeline into a multi-tenant system:
//!
//! * [`SessionBroker`] — a deterministic admission-control state machine.  It
//!   accepts a schedule of [`SessionSpec`]s (render viewpoint, quality tier,
//!   join/leave frame), allocates them against modeled backend render slots
//!   and link-capacity units (the allocation-under-constraints framing of
//!   *More with Less*), may evict lower-priority sessions for higher ones,
//!   and accounts shared renders: sessions subscribed to the same viewpoint
//!   share one backend render per frame, so `renders_performed` counts
//!   distinct live viewpoints while `render_requests` counts what a naive
//!   per-session farm would have paid.
//! * [`crate::pipeline::FanoutPlane`] — the real-mode shared-render
//!   fan-out.  It sits
//!   between the backend's striped links and N concurrent sessions,
//!   multicasting every stripe chunk zero-copy ([`bytes::Bytes`] clones) onto
//!   per-session bounded queues.  A slow session's full queue degrades *that
//!   session* (the rest of the frame is skipped for it, leaving a partial
//!   composite) instead of stalling the farm or the other sessions.
//! * Per-session flow adaptation: each session drains its queue through its
//!   own [`netsim::StripePacer`] (derived from a per-session
//!   [`netsim::TcpModel`] by the scenario layer), so every session
//!   experiences its own WAN — an untuned dial-up-grade session backpressures
//!   only itself.
//!
//! The virtual-time path replays the identical broker state machine frame by
//! frame (`pipeline::ReplayPlane`), so the deterministic
//! half of [`ServiceStats`] is byte-identical between the two execution
//! paths and is covered by the campaign replay fingerprint; queue-timing
//! counters (chunks actually delivered or dropped, frames skipped) are
//! excluded, exactly as wall-clock timestamps are.

use crate::transport::{
    striped_link, AssemblyEvent, FrameAssembler, FrameChunk, StripeReceiver, StripeSender, TcpTuning, TransportConfig,
    TransportError,
};
use crate::viewer::ViewerError;
use netlogger::{tags, FieldValue, NetLogger};
use netsim::{Bandwidth, StripePacer};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Session specifications
// ---------------------------------------------------------------------------

/// What a session is entitled to — and what it costs the shared farm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QualityTier {
    /// A driving console: full frames, partial composites, first claim on
    /// capacity (may evict lower tiers).
    Interactive,
    /// A standard remote viewer.
    Standard,
    /// A cheap thumbnail/overview consumer; first to be evicted.
    Preview,
}

impl QualityTier {
    /// Link-capacity units this tier consumes while admitted.
    pub fn cost_units(&self) -> u64 {
        match self {
            QualityTier::Interactive => 4,
            QualityTier::Standard => 2,
            QualityTier::Preview => 1,
        }
    }

    /// Eviction priority (higher evicts lower, never the reverse).
    pub fn priority(&self) -> u8 {
        match self {
            QualityTier::Interactive => 2,
            QualityTier::Standard => 1,
            QualityTier::Preview => 0,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            QualityTier::Interactive => "interactive",
            QualityTier::Standard => "standard",
            QualityTier::Preview => "preview",
        }
    }
}

/// One session the broker is asked to serve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Session name (used in reports).
    pub name: String,
    /// Render key: sessions sharing a viewpoint share one backend render.
    pub viewpoint: u32,
    /// Quality tier (capacity cost and eviction priority).
    pub tier: QualityTier,
    /// Frame at which the session asks to join.
    pub join_frame: u32,
    /// Frame *before* which the session leaves (`None` = stays to the end).
    pub leave_frame: Option<u32>,
    /// Stripes of the session's own fan-out queue.
    pub stripes: u32,
    /// Per-stripe queue depth override (`None` = the broker's
    /// [`ServiceConfig::queue_depth`]).
    pub queue_depth: Option<usize>,
    /// TCP stack the session's last mile models.
    pub tuning: TcpTuning,
    /// Modeled last-mile goodput in Mbps (`None` = unshaped; the real plane
    /// paces the session's consumer to this, the broker compares it against
    /// the farm egress to count flow-limited sessions).
    pub pace_rate_mbps: Option<f64>,
}

impl SessionSpec {
    /// A session with the laptop-scale defaults: joins at frame 0, stays to
    /// the end, four wan-tuned stripes, unshaped.
    pub fn new(name: impl Into<String>, viewpoint: u32, tier: QualityTier) -> Self {
        SessionSpec {
            name: name.into(),
            viewpoint,
            tier,
            join_frame: 0,
            leave_frame: None,
            stripes: 4,
            queue_depth: None,
            tuning: TcpTuning::WanTuned,
            pace_rate_mbps: None,
        }
    }

    /// Builder: the `[join, leave)` frame window.
    pub fn with_window(mut self, join: u32, leave: Option<u32>) -> Self {
        self.join_frame = join;
        self.leave_frame = leave;
        self
    }

    /// Builder: the session's modeled last-mile pacing rate.
    pub fn paced_at_mbps(mut self, mbps: f64) -> Self {
        self.pace_rate_mbps = Some(mbps);
        self
    }

    /// True when the session wants frame `f`.
    pub fn live_at(&self, frame: u32) -> bool {
        frame >= self.join_frame && self.leave_frame.map(|l| frame < l).unwrap_or(true)
    }
}

/// Modeled capacity the broker admits against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Hard cap on concurrently admitted sessions.
    pub max_sessions: usize,
    /// Shared egress capacity in tier cost units (see
    /// [`QualityTier::cost_units`]).
    pub link_capacity_units: u64,
    /// Concurrent distinct render keys the backend can sustain.
    pub render_slots: u32,
    /// Bounded per-session fan-out queue depth, in chunks.
    pub queue_depth: usize,
    /// Modeled farm egress goodput in Mbps; sessions whose own last mile is
    /// slower are counted flow-limited (they will be degraded, not waited
    /// for).
    pub farm_egress_mbps: Option<f64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_sessions: 64,
            link_capacity_units: 256,
            render_slots: 8,
            queue_depth: 64,
            farm_egress_mbps: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Broker state machine
// ---------------------------------------------------------------------------

/// Why the broker turned a session away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Every session slot is taken by equal-or-higher tiers.
    SessionSlots,
    /// Admitting would oversubscribe the link capacity units.
    LinkCapacity,
    /// No render slot: too many distinct viewpoints already live.
    RenderSlots,
}

impl RejectReason {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::SessionSlots => "session-slots",
            RejectReason::LinkCapacity => "link-capacity",
            RejectReason::RenderSlots => "render-slots",
        }
    }
}

/// One lifecycle transition the broker decided, tagged with the session's
/// schedule index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// The session was admitted and is now live.
    Admitted {
        /// Schedule index of the session.
        session: usize,
    },
    /// The session was turned away at its join frame.
    Rejected {
        /// Schedule index of the session.
        session: usize,
        /// Which capacity ran out.
        reason: RejectReason,
    },
    /// A live session was evicted to make room for a higher tier.
    Evicted {
        /// Schedule index of the session.
        session: usize,
    },
    /// The session reached its leave frame (or the campaign ended).
    Left {
        /// Schedule index of the session.
        session: usize,
    },
}

impl SessionEvent {
    /// The schedule index the event concerns.
    pub fn session(&self) -> usize {
        match *self {
            SessionEvent::Admitted { session }
            | SessionEvent::Rejected { session, .. }
            | SessionEvent::Evicted { session }
            | SessionEvent::Left { session } => session,
        }
    }

    /// The NetLogger tag this event emits as.
    pub fn tag(&self) -> &'static str {
        match self {
            SessionEvent::Admitted { .. } => tags::SERVICE_JOIN,
            SessionEvent::Rejected { .. } => tags::SERVICE_REJECT,
            SessionEvent::Evicted { .. } => tags::SERVICE_EVICT,
            SessionEvent::Left { .. } => tags::SERVICE_LEAVE,
        }
    }
}

/// Telemetry of the service layer over one stage (or summed over a campaign).
///
/// The session-lifecycle and shared-render counters are deterministic — pure
/// functions of the session schedule and the capacity config — and are
/// covered by replay fingerprints; the two execution paths report them
/// identically by construction because both drive the same
/// [`SessionBroker`].  `fanout_chunks`/`fanout_bytes` (offered load) are
/// deterministic per path.  The delivery counters below them depend on queue
/// timing and are excluded from fingerprints, exactly as wall-clock values
/// are.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Sessions in the schedule.
    pub sessions_offered: u64,
    /// Sessions admitted (including any later evicted).
    pub sessions_admitted: u64,
    /// Sessions turned away at their join frame.
    pub sessions_rejected: u64,
    /// Sessions evicted for higher tiers.
    pub sessions_evicted: u64,
    /// Peak concurrently live sessions.
    pub peak_live_sessions: u64,
    /// Renders a naive per-session farm would have performed (one per live
    /// session per frame).
    pub render_requests: u64,
    /// Renders the shared farm actually performed (one per distinct live
    /// viewpoint per frame).
    pub renders_performed: u64,
    /// Admitted sessions whose modeled last mile is slower than the farm
    /// egress — the ones the plane will degrade rather than wait for.
    pub flow_limited_sessions: u64,
    /// Chunk deliveries the fan-out owed (chunks per frame × sessions live at
    /// that frame).
    pub fanout_chunks: u64,
    /// Bytes the fan-out owed.
    pub fanout_bytes: u64,
    /// Chunks actually enqueued to session queues (timing-dependent).
    pub chunks_delivered: u64,
    /// Chunks dropped by degradation or departed sessions (timing-dependent).
    pub chunks_dropped: u64,
    /// Per-session (rank, frame) deliveries that fully assembled
    /// (timing-dependent).
    pub frames_completed: u64,
    /// Per-session (rank, frame) deliveries degraded to a partial composite
    /// (timing-dependent).
    pub frames_skipped: u64,
}

impl ServiceStats {
    /// Render requests served by a shared render instead of a new one.
    pub fn shared_render_hits(&self) -> u64 {
        self.render_requests.saturating_sub(self.renders_performed)
    }

    /// Fraction of render requests served by sharing.
    pub fn shared_render_hit_rate(&self) -> f64 {
        if self.render_requests == 0 {
            0.0
        } else {
            self.shared_render_hits() as f64 / self.render_requests as f64
        }
    }

    /// Backend renders as a fraction of the naive per-session count.
    pub fn render_ratio(&self) -> f64 {
        if self.render_requests == 0 {
            0.0
        } else {
            self.renders_performed as f64 / self.render_requests as f64
        }
    }

    /// Element-wise accumulate `other` into `self` (peaks take the max).
    pub fn merge(&mut self, other: &ServiceStats) {
        self.sessions_offered += other.sessions_offered;
        self.sessions_admitted += other.sessions_admitted;
        self.sessions_rejected += other.sessions_rejected;
        self.sessions_evicted += other.sessions_evicted;
        self.peak_live_sessions = self.peak_live_sessions.max(other.peak_live_sessions);
        self.render_requests += other.render_requests;
        self.renders_performed += other.renders_performed;
        self.flow_limited_sessions += other.flow_limited_sessions;
        self.fanout_chunks += other.fanout_chunks;
        self.fanout_bytes += other.fanout_bytes;
        self.chunks_delivered += other.chunks_delivered;
        self.chunks_dropped += other.chunks_dropped;
        self.frames_completed += other.frames_completed;
        self.frames_skipped += other.frames_skipped;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionState {
    Pending,
    Live,
    Rejected,
    Evicted,
    Left,
}

/// The session broker: admits a frame-indexed schedule of sessions against
/// modeled capacity, owns their lifecycle, and accounts shared renders.
///
/// The broker is a *pure state machine*: given the same config and schedule,
/// [`SessionBroker::advance_to`] makes the same decisions on every run and on
/// both execution paths.  The real fan-out plane drives it with the frame
/// numbers it observes on the wire; the virtual-time twin drives it with the
/// same frame counter — so admission, eviction, churn and shared-render
/// telemetry replay bit-identically.
#[derive(Debug)]
pub struct SessionBroker {
    config: ServiceConfig,
    schedule: Vec<SessionSpec>,
    state: Vec<SessionState>,
    /// Live schedule indices, in admission order.
    live: Vec<usize>,
    next_frame: u32,
    /// (live sessions, distinct viewpoints) per processed frame.
    live_per_frame: Vec<(u64, u64)>,
    events: Vec<(u32, SessionEvent)>,
    stats: ServiceStats,
}

impl SessionBroker {
    /// A broker over `schedule`, admitting against `config`.
    pub fn new(config: ServiceConfig, schedule: Vec<SessionSpec>) -> SessionBroker {
        let stats = ServiceStats {
            sessions_offered: schedule.len() as u64,
            ..ServiceStats::default()
        };
        SessionBroker {
            state: vec![SessionState::Pending; schedule.len()],
            live: Vec::new(),
            next_frame: 0,
            live_per_frame: Vec::new(),
            events: Vec::new(),
            stats,
            config,
            schedule,
        }
    }

    /// The capacity configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The spec at schedule index `session`.
    pub fn spec(&self, session: usize) -> &SessionSpec {
        &self.schedule[session]
    }

    /// Number of sessions in the schedule.
    pub fn session_count(&self) -> usize {
        self.schedule.len()
    }

    /// The next frame `advance_to` will process.
    pub fn next_frame(&self) -> u32 {
        self.next_frame
    }

    /// Schedule indices of the currently live sessions, in admission order.
    pub fn live(&self) -> &[usize] {
        &self.live
    }

    /// Sessions live at an already-processed frame.
    pub fn live_count_at(&self, frame: u32) -> u64 {
        self.live_per_frame.get(frame as usize).map(|&(l, _)| l).unwrap_or(0)
    }

    /// Every lifecycle event so far, with the frame it occurred at.
    pub fn events(&self) -> &[(u32, SessionEvent)] {
        &self.events
    }

    /// Current telemetry snapshot.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    fn cost(&self, session: usize) -> u64 {
        self.schedule[session].tier.cost_units()
    }

    /// First violated constraint if `incoming` joined the sessions in `live`.
    fn admission_block(&self, live: &[usize], incoming: usize) -> Option<RejectReason> {
        if live.len() + 1 > self.config.max_sessions {
            return Some(RejectReason::SessionSlots);
        }
        let units: u64 = live.iter().map(|&s| self.cost(s)).sum::<u64>() + self.cost(incoming);
        if units > self.config.link_capacity_units {
            return Some(RejectReason::LinkCapacity);
        }
        let mut viewpoints: HashSet<u32> = live.iter().map(|&s| self.schedule[s].viewpoint).collect();
        viewpoints.insert(self.schedule[incoming].viewpoint);
        if viewpoints.len() as u32 > self.config.render_slots {
            return Some(RejectReason::RenderSlots);
        }
        None
    }

    fn try_admit(&mut self, frame: u32, session: usize) {
        if self.admission_block(&self.live, session).is_none() {
            self.admit(frame, session);
            return;
        }
        // Over capacity: consider evicting strictly lower-priority sessions,
        // lowest tier first, most recently admitted first within a tier.
        let newcomer_priority = self.schedule[session].tier.priority();
        let mut candidates: Vec<(usize, usize)> = self
            .live
            .iter()
            .enumerate()
            .filter(|&(_, &s)| self.schedule[s].tier.priority() < newcomer_priority)
            .map(|(pos, &s)| (pos, s))
            .collect();
        candidates.sort_by_key(|&(pos, s)| (self.schedule[s].tier.priority(), std::cmp::Reverse(pos)));
        let mut victims: Vec<usize> = Vec::new();
        let mut remaining: Vec<usize> = self.live.clone();
        let mut feasible = false;
        for &(_, victim) in &candidates {
            remaining.retain(|&s| s != victim);
            victims.push(victim);
            if self.admission_block(&remaining, session).is_none() {
                feasible = true;
                break;
            }
        }
        if !feasible {
            // Rejection performs no evictions: capacity that cannot be freed
            // must not be churned.
            let reason = self
                .admission_block(&self.live, session)
                .expect("admission was blocked");
            self.state[session] = SessionState::Rejected;
            self.stats.sessions_rejected += 1;
            self.events.push((frame, SessionEvent::Rejected { session, reason }));
            return;
        }
        // Minimize the victim set: the greedy cascade can pick up sessions
        // whose eviction never eased the blocking constraint (e.g. a preview
        // evicted for a render slot its viewpoint does not even hold).
        // Restore any victim the newcomer can coexist with, in eviction
        // order, so only load-bearing evictions are committed.
        let mut spared: HashSet<usize> = HashSet::new();
        for &candidate in &victims {
            let trial: Vec<usize> = self
                .live
                .iter()
                .copied()
                .filter(|s| !victims.contains(s) || spared.contains(s) || *s == candidate)
                .collect();
            if self.admission_block(&trial, session).is_none() {
                spared.insert(candidate);
            }
        }
        victims.retain(|v| !spared.contains(v));
        for victim in victims {
            self.live.retain(|&s| s != victim);
            self.state[victim] = SessionState::Evicted;
            self.stats.sessions_evicted += 1;
            self.events.push((frame, SessionEvent::Evicted { session: victim }));
        }
        self.admit(frame, session);
    }

    fn admit(&mut self, frame: u32, session: usize) {
        self.live.push(session);
        self.state[session] = SessionState::Live;
        self.stats.sessions_admitted += 1;
        if let (Some(pace), Some(farm)) = (self.schedule[session].pace_rate_mbps, self.config.farm_egress_mbps) {
            if pace < farm {
                self.stats.flow_limited_sessions += 1;
            }
        }
        self.events.push((frame, SessionEvent::Admitted { session }));
    }

    /// Process every frame up to and including `frame`: leaves first (a
    /// departure frees capacity for a same-frame join), then joins in
    /// schedule order, then the frame's shared-render accounting.  Returns
    /// the lifecycle events the catch-up produced, in order.
    pub fn advance_to(&mut self, frame: u32) -> Vec<SessionEvent> {
        let first_new = self.events.len();
        while self.next_frame <= frame {
            let f = self.next_frame;
            let leavers: Vec<usize> = self
                .live
                .iter()
                .copied()
                .filter(|&s| self.schedule[s].leave_frame == Some(f))
                .collect();
            for s in leavers {
                self.live.retain(|&l| l != s);
                self.state[s] = SessionState::Left;
                self.events.push((f, SessionEvent::Left { session: s }));
            }
            let joiners: Vec<usize> = (0..self.schedule.len())
                .filter(|&s| self.state[s] == SessionState::Pending && self.schedule[s].join_frame == f)
                .collect();
            for s in joiners {
                // A session leaving before it would join never materializes.
                if !self.schedule[s].live_at(f) {
                    self.state[s] = SessionState::Left;
                    continue;
                }
                self.try_admit(f, s);
            }
            let live = self.live.len() as u64;
            let viewpoints = self
                .live
                .iter()
                .map(|&s| self.schedule[s].viewpoint)
                .collect::<HashSet<u32>>()
                .len() as u64;
            self.live_per_frame.push((live, viewpoints));
            self.stats.render_requests += live;
            self.stats.renders_performed += viewpoints;
            self.stats.peak_live_sessions = self.stats.peak_live_sessions.max(live);
            self.next_frame += 1;
        }
        self.events[first_new..].iter().map(|&(_, e)| e).collect()
    }

    /// End of campaign: every still-live session leaves.
    pub fn finish(&mut self) -> Vec<SessionEvent> {
        let frame = self.next_frame;
        let first_new = self.events.len();
        for s in std::mem::take(&mut self.live) {
            self.state[s] = SessionState::Left;
            self.events.push((frame, SessionEvent::Left { session: s }));
        }
        self.events[first_new..].iter().map(|&(_, e)| e).collect()
    }

    /// Fold the offered fan-out load into the stats: `per_frame[f]` is the
    /// `(chunks, bytes)` the farm emitted for frame `f`; each live session
    /// was owed a copy.  Pure arithmetic over the broker's frame history, so
    /// both execution paths fold identical numbers for identical plans.
    pub fn fold_fanout_load(&mut self, per_frame: &[(u64, u64)]) {
        for (f, &(chunks, bytes)) in per_frame.iter().enumerate() {
            let live = self.live_count_at(f as u32);
            self.stats.fanout_chunks += chunks * live;
            self.stats.fanout_bytes += bytes * live;
        }
    }
}

// ---------------------------------------------------------------------------
// The real-mode fan-out plane
// ---------------------------------------------------------------------------

/// What one session actually received (real path only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionDelivery {
    /// Session name from the spec.
    pub name: String,
    /// Render key the session subscribed to.
    pub viewpoint: u32,
    /// Quality tier.
    pub tier: QualityTier,
    /// Per-PE frames fully reassembled by this session.
    pub frames_completed: u64,
    /// Per-PE frames degraded to a partial composite (queue-full skips).
    pub frames_skipped: u64,
    /// Chunks enqueued to this session.
    pub chunks_delivered: u64,
    /// Chunks withheld from this session (degradation or departure).
    pub chunks_dropped: u64,
    /// Payload bytes enqueued to this session.
    pub bytes_delivered: u64,
    /// Delivery anomalies this session observed, in arrival order.
    pub errors: Vec<ViewerError>,
}

/// Everything the real fan-out plane produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceRunReport {
    /// Deterministic broker counters with the plane's timing counters merged
    /// in.
    pub stats: ServiceStats,
    /// Per-session deliveries, in schedule order (admitted sessions only).
    pub sessions: Vec<SessionDelivery>,
    /// Every broker lifecycle decision, with the frame it occurred at.
    pub events: Vec<(u32, SessionEvent)>,
}

/// A session's fan-out endpoint, shared by every per-PE plane thread.
///
/// Endpoints are never removed mid-run: stripe interleaving means a chunk of
/// frame `f` can be observed after the broker has already processed frame
/// `f+1`, so membership is decided by the chunk's own frame against the
/// session's deterministic `[join, end)` window, not by when the chunk
/// happened to arrive.  `end_frame` is the leave or eviction frame the
/// broker decided (`u32::MAX` until then).
struct SessionEndpoint {
    session: usize,
    spec: SessionSpec,
    sender: StripeSender,
    end_frame: std::sync::atomic::AtomicU32,
}

impl SessionEndpoint {
    fn wants(&self, frame: u32) -> bool {
        self.spec.live_at(frame) && frame < self.end_frame.load(std::sync::atomic::Ordering::Relaxed)
    }
}

struct PlaneState {
    broker: SessionBroker,
    endpoints: Vec<Arc<SessionEndpoint>>,
    consumers: Vec<(usize, std::thread::JoinHandle<SessionDelivery>)>,
}

impl PlaneState {
    /// Advance the broker to `frame`, materializing queues and consumers for
    /// admissions and closing the delivery window for leaves/evictions.
    fn observe_frame(&mut self, frame: u32, transport: &TransportConfig) {
        if frame < self.broker.next_frame() {
            return;
        }
        let before = self.broker.events().len();
        self.broker.advance_to(frame);
        let new: Vec<(u32, SessionEvent)> = self.broker.events()[before..].to_vec();
        for (at, event) in new {
            self.apply(at, event, transport);
        }
    }

    fn apply(&mut self, at: u32, event: SessionEvent, transport: &TransportConfig) {
        match event {
            SessionEvent::Admitted { session } => {
                let spec = self.broker.spec(session).clone();
                // The session's own bounded striped queue: its stripes, the
                // service queue depth, never paced at the queue (the pacer
                // lives in the consumer, so a slow WAN fills the queue and
                // degrades only this session).
                let link_config = TransportConfig {
                    stripes: spec.stripes.max(1),
                    chunk_bytes: transport.chunk_bytes,
                    queue_depth: spec.queue_depth.unwrap_or(self.broker.config().queue_depth),
                    tuning: spec.tuning,
                    pace_rate_mbps: None,
                };
                let (tx, rx) = striped_link(&link_config);
                let pacer = spec
                    .pace_rate_mbps
                    .map(|mbps| StripePacer::from_rate(Bandwidth::from_mbps(mbps), spec.stripes.max(1)));
                let consumer_spec = spec.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("visapult-session-{session}"))
                    .spawn(move || run_session_consumer(rx, &consumer_spec, pacer))
                    .expect("spawn session consumer");
                self.consumers.push((session, handle));
                self.endpoints.push(Arc::new(SessionEndpoint {
                    session,
                    spec,
                    sender: tx,
                    end_frame: std::sync::atomic::AtomicU32::new(u32::MAX),
                }));
            }
            SessionEvent::Left { session } | SessionEvent::Evicted { session } => {
                // Close the delivery window at the frame the broker decided;
                // straggler chunks of earlier frames still belong to the
                // session.  The queue disconnects when the plane winds down.
                if let Some(ep) = self.endpoints.iter().find(|e| e.session == session) {
                    ep.end_frame.store(at, std::sync::atomic::Ordering::Relaxed);
                }
            }
            SessionEvent::Rejected { .. } => {}
        }
    }
}

/// Drain one session's queue: pace each chunk through the session's own
/// modeled WAN, reassemble frames, and record every anomaly as the typed
/// [`ViewerError`] the viewer itself would report.
fn run_session_consumer(mut rx: StripeReceiver, spec: &SessionSpec, mut pacer: Option<StripePacer>) -> SessionDelivery {
    let mut delivery = SessionDelivery {
        name: spec.name.clone(),
        viewpoint: spec.viewpoint,
        tier: spec.tier,
        frames_completed: 0,
        frames_skipped: 0,
        chunks_delivered: 0,
        chunks_dropped: 0,
        bytes_delivered: 0,
        errors: Vec::new(),
    };
    let mut assembler = FrameAssembler::new();
    // Runs until every plane endpoint is dropped: the session is over.
    while let Ok(chunk) = rx.recv_chunk() {
        if let Some(p) = &mut pacer {
            // The session's own WAN, felt for real: drain no faster than the
            // modeled last mile, which backpressures only this queue.
            let delay = p.consume(chunk.stripe as usize, chunk.payload.len() as u64);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        delivery.chunks_delivered += 1;
        delivery.bytes_delivered += chunk.payload.len() as u64;
        let rank = chunk.rank;
        match assembler.accept(chunk) {
            Ok(AssemblyEvent::Complete { .. }) => delivery.frames_completed += 1,
            Ok(AssemblyEvent::Progress { .. }) => {}
            Ok(AssemblyEvent::Late { rank, frame, stripe }) => {
                delivery.errors.push(ViewerError::LateStripe { rank, frame, stripe });
            }
            Err(e) => delivery.errors.push(ViewerError::Corrupt {
                rank,
                detail: e.to_string(),
            }),
        }
    }
    // Frames the plane started but degraded (or the campaign cut off) are
    // surfaced exactly as the viewer surfaces them: typed, never silent.
    for (rank, frame, received, total) in assembler.pending_frames() {
        delivery.errors.push(ViewerError::MissingFrame {
            rank,
            frame,
            received_chunks: received,
            total_chunks: total,
        });
    }
    delivery
}

/// Run the shared-render fan-out plane over one campaign.
///
/// Deprecated facade over the plane implementation the unified pipeline
/// driver splices in (`pipeline::FanoutPlane` is the `ServicePlane`
/// capability of the real path); use [`crate::pipeline::FanoutPlane::drive`]
/// to run the plane directly, or the `pipeline::Pipeline` builder to run it
/// inside a campaign.
#[deprecated(
    since = "0.1.0",
    note = "splice the plane through the `pipeline::Pipeline` builder's service seam, or run it \
            directly with `pipeline::FanoutPlane::drive`"
)]
pub fn run_service_plane(
    broker: SessionBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
) -> ServiceRunReport {
    drive_service_plane(broker, inputs, primary, transport)
}

/// The fan-out plane implementation.
///
/// One thread per backend PE link consumes stripe chunks and (1) forwards
/// each chunk to the primary viewer's corresponding link — blocking, so the
/// paper's single-viewer backpressure semantics are preserved — and (2)
/// multicasts a zero-copy clone to every session live at the chunk's frame.
/// A full session queue degrades that session for the rest of the (rank,
/// frame) instead of stalling anything else.  Returns once the backend links
/// close and every consumer has drained.
pub(crate) fn drive_service_plane(
    broker: SessionBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
) -> ServiceRunReport {
    assert!(
        primary.is_empty() || primary.len() == inputs.len(),
        "primary forwarding needs one link per PE"
    );
    let shared = Arc::new(Mutex::new(PlaneState {
        broker,
        endpoints: Vec::new(),
        consumers: Vec::new(),
    }));
    // Frame 0 joins happen before any chunk moves.
    shared
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .observe_frame(0, transport);

    struct PeOutcome {
        /// (chunks, bytes) emitted per frame by this PE (deterministic).
        per_frame: Vec<(u64, u64)>,
        delivered: u64,
        dropped: HashMap<usize, u64>,
        skipped: HashMap<usize, u64>,
    }

    let outcomes: Vec<PeOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .into_iter()
            .zip(primary.into_iter().map(Some).chain(std::iter::repeat_with(|| None)))
            .map(|(mut rx, mut primary_tx)| {
                let shared = Arc::clone(&shared);
                let transport = transport.clone();
                scope.spawn(move || {
                    let mut outcome = PeOutcome {
                        per_frame: Vec::new(),
                        delivered: 0,
                        dropped: HashMap::new(),
                        skipped: HashMap::new(),
                    };
                    // (session, frame) pairs degraded on this PE's link.
                    let mut skips: HashSet<(usize, u32)> = HashSet::new();
                    // Endpoint snapshot, refreshed only when this thread
                    // observes a new high-water frame.  Endpoints are
                    // append-only and sessions only join at frame
                    // boundaries (admissions for frame f complete under the
                    // lock before any thread can snapshot at f), so a
                    // snapshot taken at frame f is a superset of the
                    // endpoints any chunk of frame ≤ f can belong to —
                    // `wants(frame)` does the per-chunk filtering.  This
                    // keeps the lock and the Vec clone off the per-chunk
                    // fast path.
                    let mut endpoints: Vec<Arc<SessionEndpoint>> = Vec::new();
                    let mut snapshot_frame: Option<u32> = None;
                    while let Ok(chunk) = rx.recv_chunk() {
                        let frame = chunk.frame;
                        if outcome.per_frame.len() <= frame as usize {
                            outcome.per_frame.resize(frame as usize + 1, (0, 0));
                        }
                        outcome.per_frame[frame as usize].0 += 1;
                        outcome.per_frame[frame as usize].1 += chunk.payload.len() as u64;
                        // Drive churn from the frame counter, then refresh
                        // the endpoint snapshot (Arc clones; the lock is
                        // not held across sends).
                        if snapshot_frame.map(|f| frame > f).unwrap_or(true) {
                            let mut st = shared.lock().unwrap_or_else(|e| e.into_inner());
                            st.observe_frame(frame, &transport);
                            endpoints.clone_from(&st.endpoints);
                            snapshot_frame = Some(frame);
                        }
                        if let Some(tx) = &primary_tx {
                            if tx.send_raw_chunk(chunk.clone()).is_err() {
                                // The viewer got everything it expected and
                                // hung up; keep serving the sessions.
                                primary_tx = None;
                            }
                        }
                        for ep in &endpoints {
                            // Membership is decided by the chunk's own frame
                            // (a deterministic window), not by when the chunk
                            // happened to arrive.
                            if !ep.wants(frame) {
                                continue;
                            }
                            if skips.contains(&(ep.session, frame)) {
                                *outcome.dropped.entry(ep.session).or_default() += 1;
                                continue;
                            }
                            // Zero-copy multicast: the payload Bytes clone is
                            // a refcount bump; re-stripe onto the session's
                            // own queue width.
                            let fanned = FrameChunk {
                                stripe: chunk.seq % ep.spec.stripes.max(1),
                                ..chunk.clone()
                            };
                            match ep.sender.try_send_raw_chunk(fanned) {
                                Ok(true) => outcome.delivered += 1,
                                Ok(false) => {
                                    // Queue full: degrade this session for
                                    // the rest of this (rank, frame).  It
                                    // keeps its partial composite; the farm
                                    // and every other session keep moving.
                                    skips.insert((ep.session, frame));
                                    *outcome.skipped.entry(ep.session).or_default() += 1;
                                    *outcome.dropped.entry(ep.session).or_default() += 1;
                                }
                                Err(TransportError::Closed) | Err(TransportError::Corrupt(_)) => {
                                    *outcome.dropped.entry(ep.session).or_default() += 1;
                                }
                            }
                        }
                    }
                    outcome
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("plane thread")).collect()
    });

    // Campaign over: every remaining session leaves, queues disconnect,
    // consumers drain and report.
    let mut st = match Arc::try_unwrap(shared) {
        Ok(m) => m.into_inner().unwrap_or_else(|e| e.into_inner()),
        Err(_) => unreachable!("plane threads have joined"),
    };
    st.broker.finish();
    st.endpoints.clear();
    let mut deliveries: Vec<(usize, SessionDelivery)> = st
        .consumers
        .into_iter()
        .map(|(session, handle)| (session, handle.join().expect("session consumer")))
        .collect();
    deliveries.sort_by_key(|&(session, _)| session);

    // Fold the deterministic offered load and the timing-dependent delivery
    // outcomes into the broker's stats.
    let frames = outcomes.iter().map(|o| o.per_frame.len()).max().unwrap_or(0);
    let mut per_frame = vec![(0u64, 0u64); frames];
    for o in &outcomes {
        for (f, &(chunks, bytes)) in o.per_frame.iter().enumerate() {
            per_frame[f].0 += chunks;
            per_frame[f].1 += bytes;
        }
    }
    st.broker.fold_fanout_load(&per_frame);
    let events = st.broker.events().to_vec();
    let mut stats = st.broker.stats().clone();
    for o in &outcomes {
        stats.chunks_delivered += o.delivered;
        stats.chunks_dropped += o.dropped.values().sum::<u64>();
    }
    let mut sessions = Vec::with_capacity(deliveries.len());
    for (session, mut delivery) in deliveries {
        for o in &outcomes {
            delivery.chunks_dropped += o.dropped.get(&session).copied().unwrap_or(0);
            delivery.frames_skipped += o.skipped.get(&session).copied().unwrap_or(0);
        }
        stats.frames_completed += delivery.frames_completed;
        stats.frames_skipped += delivery.frames_skipped;
        sessions.push(delivery);
    }
    ServiceRunReport {
        stats,
        sessions,
        events,
    }
}

// ---------------------------------------------------------------------------
// NetLogger emission (shared by both execution paths)
// ---------------------------------------------------------------------------

/// Emit the service-layer NetLogger telemetry (`NL.service.*` fields): one
/// lifecycle event per broker decision and a per-stage `SERVICE_STATS`
/// summary.  This is the only place the event schema lives — the real path
/// logs at the collector's clock (`at = None`), the virtual-time path replays
/// the same emitter at explicit virtual timestamps, so either log reads
/// identically by construction.
pub fn log_service_stats(logger: &NetLogger, at: Option<f64>, stats: &ServiceStats, events: &[(u32, SessionEvent)]) {
    let emit = |tag: &str, fields: Vec<(String, FieldValue)>| match at {
        Some(t) => logger.log_at(t, tag, fields),
        None => logger.log_with(tag, fields),
    };
    for &(frame, event) in events {
        emit(
            event.tag(),
            vec![
                (tags::FIELD_FRAME.to_string(), FieldValue::Int(i64::from(frame))),
                (
                    tags::FIELD_SERVICE_SESSION.to_string(),
                    FieldValue::Int(event.session() as i64),
                ),
            ],
        );
    }
    emit(
        tags::SERVICE_STATS,
        vec![
            (
                tags::FIELD_SERVICE_SESSIONS.to_string(),
                FieldValue::Int(stats.sessions_offered as i64),
            ),
            (
                tags::FIELD_SERVICE_ADMITTED.to_string(),
                FieldValue::Int(stats.sessions_admitted as i64),
            ),
            (
                tags::FIELD_SERVICE_REJECTED.to_string(),
                FieldValue::Int(stats.sessions_rejected as i64),
            ),
            (
                tags::FIELD_SERVICE_EVICTED.to_string(),
                FieldValue::Int(stats.sessions_evicted as i64),
            ),
            (
                tags::FIELD_SERVICE_RENDERS.to_string(),
                FieldValue::Int(stats.renders_performed as i64),
            ),
            (
                tags::FIELD_SERVICE_RENDER_REQUESTS.to_string(),
                FieldValue::Int(stats.render_requests as i64),
            ),
            (
                tags::FIELD_SERVICE_SHARED_HITS.to_string(),
                FieldValue::Int(stats.shared_render_hits() as i64),
            ),
            (
                tags::FIELD_BYTES.to_string(),
                FieldValue::Int(stats.fanout_bytes as i64),
            ),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sample_frame;
    use crate::transport::{drain_frames, plan_chunks, striped_link};

    fn spec(name: &str, viewpoint: u32, tier: QualityTier) -> SessionSpec {
        SessionSpec::new(name, viewpoint, tier)
    }

    fn tiny_config() -> ServiceConfig {
        ServiceConfig {
            max_sessions: 4,
            link_capacity_units: 8,
            render_slots: 2,
            queue_depth: 8,
            farm_egress_mbps: None,
        }
    }

    #[test]
    fn broker_admits_within_capacity_and_accounts_shared_renders() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard),
            spec("c", 1, QualityTier::Standard),
        ];
        let mut broker = SessionBroker::new(tiny_config(), schedule);
        broker.advance_to(3);
        broker.finish();
        let s = broker.stats();
        assert_eq!(s.sessions_admitted, 3);
        assert_eq!(s.sessions_rejected, 0);
        assert_eq!(s.peak_live_sessions, 3);
        // 4 frames x 3 live sessions, but only 2 distinct viewpoints.
        assert_eq!(s.render_requests, 12);
        assert_eq!(s.renders_performed, 8);
        assert_eq!(s.shared_render_hits(), 4);
        assert!((s.shared_render_hit_rate() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn broker_rejects_when_capacity_runs_out() {
        // Capacity: 9 units, 2 render slots.  Four standard sessions (2 units
        // each) leave 1 unit; the fifth standard is rejected for link
        // capacity, and a preview on a third viewpoint (which *would* fit the
        // last unit) is rejected for render slots.
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard),
            spec("c", 1, QualityTier::Standard),
            spec("d", 1, QualityTier::Standard),
            spec("e", 0, QualityTier::Standard),
            spec("f", 2, QualityTier::Preview),
        ];
        let config = ServiceConfig {
            max_sessions: 8,
            link_capacity_units: 9,
            render_slots: 2,
            ..tiny_config()
        };
        let mut broker = SessionBroker::new(config, schedule);
        let events = broker.advance_to(0);
        assert_eq!(broker.stats().sessions_admitted, 4);
        assert_eq!(broker.stats().sessions_rejected, 2);
        let reasons: Vec<RejectReason> = events
            .iter()
            .filter_map(|e| match e {
                SessionEvent::Rejected { reason, .. } => Some(*reason),
                _ => None,
            })
            .collect();
        assert_eq!(reasons, vec![RejectReason::LinkCapacity, RejectReason::RenderSlots]);
    }

    #[test]
    fn broker_evicts_lower_tiers_for_interactive_sessions() {
        // 8 units: four previews (1 each) + one standard (2) = 6.  The first
        // interactive join (4) evicts the two most recent previews; the
        // second cascades through the remaining previews into the standard
        // (always lowest tier first, most recent first within a tier); a
        // third interactive faces only equal-tier sessions — infeasible, so
        // it is rejected without churning anyone.
        let mut schedule = vec![
            spec("p0", 0, QualityTier::Preview),
            spec("p1", 0, QualityTier::Preview),
            spec("p2", 0, QualityTier::Preview),
            spec("p3", 0, QualityTier::Preview),
            spec("std", 1, QualityTier::Standard),
        ];
        schedule.push(spec("vip", 0, QualityTier::Interactive).with_window(1, None));
        schedule.push(spec("vip2", 1, QualityTier::Interactive).with_window(2, None));
        schedule.push(spec("vip3", 0, QualityTier::Interactive).with_window(3, None));
        let config = ServiceConfig {
            max_sessions: 8,
            ..tiny_config()
        };
        let mut broker = SessionBroker::new(config, schedule);
        broker.advance_to(0);
        assert_eq!(broker.stats().sessions_admitted, 5);
        let events = broker.advance_to(1);
        // 6 units live + 4 > 8: evicting p3 (most recent preview) then p2
        // frees 2, landing exactly at 8.
        assert_eq!(
            events,
            vec![
                SessionEvent::Evicted { session: 3 },
                SessionEvent::Evicted { session: 2 },
                SessionEvent::Admitted { session: 5 },
            ]
        );
        let events = broker.advance_to(2);
        // 8 units live + 4 > 8: the cascade takes p1, p0, then the standard.
        assert_eq!(
            events,
            vec![
                SessionEvent::Evicted { session: 1 },
                SessionEvent::Evicted { session: 0 },
                SessionEvent::Evicted { session: 4 },
                SessionEvent::Admitted { session: 6 },
            ]
        );
        let live_before: Vec<usize> = broker.live().to_vec();
        let events = broker.advance_to(3);
        // Only interactive sessions remain: nothing outranks nothing, so the
        // join is rejected and nobody is evicted.
        assert_eq!(
            events,
            vec![SessionEvent::Rejected {
                session: 7,
                reason: RejectReason::LinkCapacity
            }]
        );
        assert_eq!(broker.live(), &live_before[..]);
        assert_eq!(broker.stats().sessions_evicted, 5);
    }

    #[test]
    fn eviction_commits_only_load_bearing_victims() {
        // Two render slots held by standards on viewpoints 0 and 1, plus a
        // preview also on viewpoint 0.  An interactive joining on viewpoint
        // 2 is blocked on render slots; evicting the preview frees nothing
        // (the standard still holds viewpoint 0), so the cascade must spare
        // it and evict only the standard on viewpoint 1.
        let config = ServiceConfig {
            max_sessions: 8,
            link_capacity_units: 16,
            render_slots: 2,
            ..tiny_config()
        };
        let schedule = vec![
            spec("std-a", 0, QualityTier::Standard),
            spec("std-b", 1, QualityTier::Standard),
            spec("pre", 0, QualityTier::Preview),
            spec("vip", 2, QualityTier::Interactive).with_window(1, None),
        ];
        let mut broker = SessionBroker::new(config, schedule);
        broker.advance_to(0);
        assert_eq!(broker.stats().sessions_admitted, 3);
        let events = broker.advance_to(1);
        assert_eq!(
            events,
            vec![
                SessionEvent::Evicted { session: 1 },
                SessionEvent::Admitted { session: 3 },
            ]
        );
        assert_eq!(broker.stats().sessions_evicted, 1);
        assert!(broker.live().contains(&2), "the preview must be spared");
    }

    #[test]
    fn broker_processes_leaves_before_joins_and_replays_identically() {
        let schedule = vec![
            spec("early", 0, QualityTier::Interactive).with_window(0, Some(2)),
            spec("late", 1, QualityTier::Interactive).with_window(2, None),
        ];
        // 4-unit link: only one interactive fits, so `late` only gets in
        // because `early` leaves at the same frame.
        let config = ServiceConfig {
            link_capacity_units: 4,
            ..tiny_config()
        };
        let run = || {
            let mut b = SessionBroker::new(config.clone(), schedule.clone());
            b.advance_to(3);
            b.finish();
            (b.stats().clone(), b.events().to_vec())
        };
        let (stats, events) = run();
        assert_eq!(stats.sessions_admitted, 2);
        assert_eq!(stats.sessions_rejected, 0);
        assert_eq!(stats.peak_live_sessions, 1);
        // Bit-identical replay: the broker is a pure state machine.
        let (stats2, events2) = run();
        assert_eq!(stats, stats2);
        assert_eq!(events, events2);
    }

    #[test]
    fn fold_fanout_load_weights_chunks_by_live_sessions() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard).with_window(1, None),
        ];
        let mut broker = SessionBroker::new(tiny_config(), schedule);
        broker.advance_to(1);
        broker.fold_fanout_load(&[(10, 1000), (10, 1000)]);
        let s = broker.stats();
        // Frame 0: 1 live; frame 1: 2 live.
        assert_eq!(s.fanout_chunks, 30);
        assert_eq!(s.fanout_bytes, 3000);
    }

    #[test]
    fn flow_limited_sessions_are_counted_against_the_farm_egress() {
        let config = ServiceConfig {
            farm_egress_mbps: Some(100.0),
            ..tiny_config()
        };
        let schedule = vec![
            spec("fast", 0, QualityTier::Standard).paced_at_mbps(200.0),
            spec("slow", 0, QualityTier::Standard).paced_at_mbps(5.0),
            spec("unshaped", 0, QualityTier::Preview),
        ];
        let mut broker = SessionBroker::new(config, schedule);
        broker.advance_to(0);
        assert_eq!(broker.stats().flow_limited_sessions, 1);
    }

    fn fan_out(
        schedule: Vec<SessionSpec>,
        config: ServiceConfig,
        frames: u32,
        pes: usize,
    ) -> (ServiceRunReport, Vec<crate::protocol::FramePayload>) {
        let transport = TransportConfig::default().with_stripes(2).with_chunk_bytes(256);
        let broker = SessionBroker::new(config, schedule);
        let mut backend_txs = Vec::new();
        let mut backend_rxs = Vec::new();
        let mut primary_txs = Vec::new();
        let mut primary_rxs = Vec::new();
        for _ in 0..pes {
            let (tx, rx) = striped_link(&transport);
            backend_txs.push(tx);
            backend_rxs.push(rx);
            let (tx, rx) = striped_link(&transport);
            primary_txs.push(tx);
            primary_rxs.push(rx);
        }
        let plane = {
            let transport = transport.clone();
            std::thread::spawn(move || drive_service_plane(broker, backend_rxs, primary_txs, &transport))
        };
        let drains: Vec<_> = primary_rxs
            .into_iter()
            .map(|mut rx| std::thread::spawn(move || drain_frames(&mut rx).unwrap()))
            .collect();
        for f in 0..frames {
            for (pe, tx) in backend_txs.iter().enumerate() {
                tx.send_frame(&sample_frame(pe as u32, f, 16)).unwrap();
            }
        }
        drop(backend_txs);
        let report = plane.join().unwrap();
        let mut primary_frames = Vec::new();
        for d in drains {
            primary_frames.extend(d.join().unwrap());
        }
        (report, primary_frames)
    }

    #[test]
    fn plane_multicasts_every_frame_to_every_session_and_the_primary() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard),
            spec("c", 1, QualityTier::Standard),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let (report, primary_frames) = fan_out(schedule, config, 3, 2);
        // The primary viewer path got every frame untouched.
        assert_eq!(primary_frames.len(), 6);
        // Every session assembled every (rank, frame): 3 sessions x 2 PEs x 3.
        assert_eq!(report.sessions.len(), 3);
        for s in &report.sessions {
            assert_eq!(s.frames_completed, 6, "session {}: {:?}", s.name, s.errors);
            assert_eq!(s.frames_skipped, 0);
            assert!(s.errors.is_empty(), "{:?}", s.errors);
        }
        assert_eq!(report.stats.frames_completed, 18);
        // Offered fan-out load: every chunk x 3 live sessions, delivered in
        // full on these deep queues.
        assert_eq!(report.stats.fanout_chunks, report.stats.chunks_delivered);
        assert_eq!(report.stats.chunks_dropped, 0);
        // Shared renders: 3 frames x 3 sessions requested, 2 viewpoints each
        // frame actually rendered.
        assert_eq!(report.stats.render_requests, 9);
        assert_eq!(report.stats.renders_performed, 6);
    }

    #[test]
    fn slow_session_is_degraded_without_stalling_the_healthy_one() {
        // `slow` drains a single-stripe 16-chunk queue through a
        // dial-up-grade pacer; `healthy` has four stripes (4 x 16 = 64
        // slots, more than the whole campaign's 42 chunks, so it can never
        // overflow).  The plane must skip frames for `slow` (it keeps
        // partial composites) while `healthy` and the primary receive
        // everything.
        let mut slow = spec("slow", 0, QualityTier::Standard).paced_at_mbps(0.2);
        slow.stripes = 1;
        let schedule = vec![spec("healthy", 0, QualityTier::Standard), slow];
        let config = ServiceConfig {
            queue_depth: 16,
            ..tiny_config()
        };
        let (report, primary_frames) = fan_out(schedule, config, 6, 1);
        assert_eq!(primary_frames.len(), 6);
        let healthy = report.sessions.iter().find(|s| s.name == "healthy").unwrap();
        let slow = report.sessions.iter().find(|s| s.name == "slow").unwrap();
        assert_eq!(healthy.frames_completed, 6);
        assert!(healthy.errors.is_empty(), "{:?}", healthy.errors);
        assert!(
            slow.frames_skipped > 0,
            "the 1-chunk queue behind a 0.2 Mbps pacer must overflow: {slow:?}"
        );
        // Degraded frames surface as typed MissingFrame partials, not
        // silence.
        assert!(slow
            .errors
            .iter()
            .all(|e| matches!(e, ViewerError::MissingFrame { .. })));
        assert_eq!(
            report.stats.frames_skipped, slow.frames_skipped,
            "only the slow session was degraded"
        );
        assert!(report.stats.chunks_dropped > 0);
    }

    #[test]
    fn sessions_joining_and_leaving_mid_run_receive_only_their_window() {
        let schedule = vec![
            spec("whole", 0, QualityTier::Standard),
            spec("window", 0, QualityTier::Standard).with_window(1, Some(3)),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let (report, _) = fan_out(schedule, config, 4, 1);
        let whole = report.sessions.iter().find(|s| s.name == "whole").unwrap();
        let window = report.sessions.iter().find(|s| s.name == "window").unwrap();
        assert_eq!(whole.frames_completed, 4);
        // Frames 1 and 2 only.
        assert_eq!(window.frames_completed, 2, "{window:?}");
        // Offered load reflects the window: frames 0 and 3 fan out to one
        // session, frames 1 and 2 to two.
        let per_frame_chunks = report.stats.fanout_chunks;
        let plan = plan_chunks(
            crate::protocol::FrameSegments::encode(&sample_frame(0, 0, 16)).lens(),
            256,
            2,
        )
        .len() as u64;
        assert_eq!(per_frame_chunks, plan * (1 + 2 + 2 + 1));
    }

    #[test]
    fn multicast_is_zero_copy() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard),
            spec("c", 1, QualityTier::Standard),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let before = bytes::deep_copy_count();
        let (report, _) = fan_out(schedule, config, 2, 1);
        assert_eq!(
            bytes::deep_copy_count() - before,
            0,
            "fan-out must multicast by refcount, not memcpy"
        );
        assert_eq!(report.stats.frames_completed, 6);
    }

    #[test]
    fn service_log_emits_lifecycle_and_summary_events() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard).with_window(0, Some(1)),
        ];
        let mut broker = SessionBroker::new(tiny_config(), schedule);
        broker.advance_to(2);
        broker.finish();
        let collector = netlogger::Collector::wall();
        log_service_stats(
            &collector.logger("service", "session-broker"),
            None,
            broker.stats(),
            broker.events(),
        );
        let log = collector.finish();
        assert_eq!(log.with_tag(tags::SERVICE_JOIN).count(), 2);
        assert_eq!(log.with_tag(tags::SERVICE_LEAVE).count(), 2);
        assert_eq!(log.with_tag(tags::SERVICE_STATS).count(), 1);
    }
}
