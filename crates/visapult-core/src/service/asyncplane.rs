//! The executor-backed fan-out plane: 10k sessions for the price of memory.
//!
//! The threaded plane ([`super::fanout`]) spends one OS thread per session
//! consumer and one per backend PE link — fine on an exhibit floor, fatal for
//! the ROADMAP's "millions of users" direction.  This plane keeps the same
//! broker, the same multicast/degradation seam, and the same report assembly
//! (all shared `pub(crate)` helpers in `fanout`), but runs every unit of work
//! as a polled state-machine task on a small [`exec::Executor`] worker pool:
//!
//! * `PumpTask` — one per backend PE link.  Polls chunks off the striped
//!   link with `try_recv`, drives broker churn from the frame counter,
//!   forwards to the primary viewer (non-blocking with a carried chunk, so a
//!   full primary queue parks *this task*, not an OS thread), and multicasts
//!   zero-copy clones through the shared degradation seam.
//! * `ConsumerTask` — one per admitted session.  Drains the session's own
//!   bounded queue, paces through the session's [`netsim::StripePacer`]
//!   against the [`Clock`] (a pacing delay becomes an `Idle` poll with a
//!   deadline, not a sleeping thread), reassembles frames, and surfaces the
//!   same typed errors as the threaded consumer.
//!
//! OS thread count is therefore the worker-pool size — independent of the
//! session count — and the deterministic half of [`super::ServiceStats`]
//! is byte-identical to the threaded plane because both drive the identical
//! [`SessionBroker`] through the identical seam functions.

use super::fanout::{
    consume_chunk, empty_delivery, fold_report, multicast_chunk, session_link, surface_pending_frames, PeOutcome,
    SessionEndpoint,
};
use super::{ServiceRunReport, SessionBroker, SessionDelivery, SessionEvent};
use crate::pipeline::{Clock, WallClock};
use crate::transport::{FrameChunk, StripeReceiver, StripeSender, TransportConfig, TransportError};
use exec::{Executor, Poll, Spawner, Task, TaskHandle};
use netsim::StripePacer;
use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Chunks a task moves per poll before yielding the worker: enough to
/// amortize scheduling, small enough that thousands of tasks stay fair.
const POLL_BUDGET: usize = 32;

/// Completed-task results are handed back through shared slots (the executor
/// returns no values; a task writes its result right before `Ready`).
type Slot<T> = Arc<Mutex<Option<T>>>;

fn slot<T>() -> Slot<T> {
    Arc::new(Mutex::new(None))
}

fn fill<T>(s: &Slot<T>, value: T) {
    *s.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
}

fn take<T>(s: &Slot<T>) -> Option<T> {
    s.lock().unwrap_or_else(|e| e.into_inner()).take()
}

/// Broker + endpoints + consumer-task registry, shared by every pump.
struct AsyncState {
    broker: SessionBroker,
    endpoints: Vec<Arc<SessionEndpoint>>,
    consumers: Vec<(usize, TaskHandle, Slot<SessionDelivery>)>,
}

impl AsyncState {
    /// Advance the broker to `frame`, materializing queues and consumer
    /// *tasks* for admissions and closing the delivery window for
    /// leaves/evictions.  The mirror of the threaded plane's `observe_frame`,
    /// with `spawner.spawn` where that one spawns a thread.
    fn observe_frame(&mut self, frame: u32, transport: &TransportConfig, spawner: &Spawner, clock: &Arc<dyn Clock>) {
        if frame < self.broker.next_frame() {
            return;
        }
        let before = self.broker.events().len();
        self.broker.advance_to(frame);
        let new: Vec<(u32, SessionEvent)> = self.broker.events()[before..].to_vec();
        for (at, event) in new {
            match event {
                SessionEvent::Admitted { session } => {
                    let spec = self.broker.spec(session).clone();
                    let (tx, rx, pacer) = session_link(&spec, self.broker.config().queue_depth, transport);
                    let out = slot();
                    let handle = spawner.spawn(Box::new(ConsumerTask {
                        rx,
                        pacer,
                        clock: Arc::clone(clock),
                        ready_at: Duration::ZERO,
                        delivery: Some(empty_delivery(&spec)),
                        assembler: crate::transport::FrameAssembler::new(),
                        out: Arc::clone(&out),
                    }));
                    self.consumers.push((session, handle, out));
                    self.endpoints.push(SessionEndpoint::new(session, spec, tx));
                }
                SessionEvent::Left { session } | SessionEvent::Evicted { session } => {
                    if let Some(ep) = self.endpoints.iter().find(|e| e.session == session) {
                        ep.close_at(at);
                    }
                }
                SessionEvent::Rejected { .. } => {}
            }
        }
    }
}

/// One backend PE link as a polled task: the async twin of the threaded
/// plane's per-PE thread body, chunk for chunk.
struct PumpTask {
    rx: StripeReceiver,
    primary_tx: Option<StripeSender>,
    /// A chunk received and accounted but still owed to the primary viewer:
    /// its full queue parks this task (backpressure through `Idle`), never a
    /// worker thread.
    carry: Option<FrameChunk>,
    shared: Arc<Mutex<AsyncState>>,
    transport: TransportConfig,
    spawner: Spawner,
    clock: Arc<dyn Clock>,
    endpoints: Vec<Arc<SessionEndpoint>>,
    snapshot_frame: Option<u32>,
    skips: HashSet<(usize, u32)>,
    outcome: Option<PeOutcome>,
    out: Slot<PeOutcome>,
}

impl PumpTask {
    /// Forward `chunk` to the primary viewer if one is attached.  Returns the
    /// chunk when it still needs carrying (primary full), `Ok` when the chunk
    /// may multicast.
    fn forward_primary(&mut self, chunk: FrameChunk) -> Result<FrameChunk, FrameChunk> {
        let Some(tx) = &self.primary_tx else {
            return Ok(chunk);
        };
        match tx.try_send_raw_chunk(chunk.clone()) {
            Ok(true) => Ok(chunk),
            Ok(false) => Err(chunk),
            Err(TransportError::Closed) | Err(TransportError::Corrupt(_)) => {
                // The viewer got everything it expected and hung up; keep
                // serving the sessions.
                self.primary_tx = None;
                Ok(chunk)
            }
        }
    }
}

impl Task for PumpTask {
    fn poll(&mut self) -> Poll {
        let mut progressed = false;
        let mut budget = POLL_BUDGET;
        loop {
            // Settle the carried chunk before receiving another: primary
            // forwarding keeps the blocking plane's per-link ordering.
            if let Some(chunk) = self.carry.take() {
                match self.forward_primary(chunk) {
                    Ok(chunk) => {
                        let outcome = self.outcome.as_mut().expect("pump still running");
                        multicast_chunk(&chunk, &self.endpoints, &mut self.skips, outcome);
                        progressed = true;
                    }
                    Err(chunk) => {
                        self.carry = Some(chunk);
                        return if progressed { Poll::Progress } else { Poll::Idle };
                    }
                }
            }
            if budget == 0 {
                return Poll::Progress;
            }
            match self.rx.try_recv_chunk() {
                Some(chunk) => {
                    budget -= 1;
                    let frame = chunk.frame;
                    let outcome = self.outcome.as_mut().expect("pump still running");
                    outcome.record_offered(&chunk);
                    // Drive churn from the frame counter, then refresh the
                    // endpoint snapshot — same high-water rule and the same
                    // correctness argument as the threaded plane.
                    if self.snapshot_frame.map(|f| frame > f).unwrap_or(true) {
                        let mut st = self.shared.lock().unwrap_or_else(|e| e.into_inner());
                        st.observe_frame(frame, &self.transport, &self.spawner, &self.clock);
                        self.endpoints.clone_from(&st.endpoints);
                        self.snapshot_frame = Some(frame);
                    }
                    self.carry = Some(chunk);
                }
                None => {
                    if self.rx.is_closed() {
                        // Backend link drained and closed: this PE is done.
                        fill(&self.out, self.outcome.take().expect("pump finishes once"));
                        return Poll::Ready;
                    }
                    return if progressed { Poll::Progress } else { Poll::Idle };
                }
            }
        }
    }
}

/// One session consumer as a polled task: the async twin of
/// `run_session_consumer`, with the pacer's delay expressed as a deadline on
/// the [`Clock`] instead of a thread sleep.
struct ConsumerTask {
    rx: StripeReceiver,
    pacer: Option<StripePacer>,
    clock: Arc<dyn Clock>,
    /// Pacing deadline: polls before this instant are `Idle`.
    ready_at: Duration,
    delivery: Option<SessionDelivery>,
    assembler: crate::transport::FrameAssembler,
    out: Slot<SessionDelivery>,
}

impl Task for ConsumerTask {
    fn poll(&mut self) -> Poll {
        if self.clock.monotonic_now() < self.ready_at {
            return Poll::Idle;
        }
        let mut progressed = false;
        for _ in 0..POLL_BUDGET {
            match self.rx.try_recv_chunk() {
                Some(chunk) => {
                    progressed = true;
                    let mut pace = Duration::ZERO;
                    if let Some(p) = &mut self.pacer {
                        // The session's own WAN: drain no faster than the
                        // modeled last mile, which backpressures only this
                        // queue.
                        pace = p.consume(chunk.stripe as usize, chunk.payload.len() as u64);
                    }
                    let delivery = self.delivery.as_mut().expect("consumer still running");
                    consume_chunk(delivery, &mut self.assembler, chunk);
                    if !pace.is_zero() {
                        eprintln!("NONZERO PACE: {:?} now={:?}", pace, self.clock.monotonic_now());
                        self.ready_at = self.clock.monotonic_now() + pace;
                        return Poll::Progress;
                    }
                }
                None => {
                    if self.rx.is_closed() {
                        // Session over: every endpoint dropped, queue drained.
                        let mut delivery = self.delivery.take().expect("consumer finishes once");
                        surface_pending_frames(&self.assembler, &mut delivery);
                        fill(&self.out, delivery);
                        return Poll::Ready;
                    }
                    return if progressed { Poll::Progress } else { Poll::Idle };
                }
            }
        }
        Poll::Progress
    }
}

/// The async fan-out plane on the wall clock (the production entry).
pub(crate) fn drive_async_service_plane(
    broker: SessionBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    workers: Option<usize>,
) -> ServiceRunReport {
    drive_async_service_plane_on(
        &(Arc::new(WallClock) as Arc<dyn Clock>),
        broker,
        inputs,
        primary,
        transport,
        workers,
    )
}

/// The async fan-out plane implementation, on an explicit clock.
///
/// Blocking facade over the task pool: spawns one [`PumpTask`] per backend PE
/// link (consumers spawn as the broker admits them), waits the pumps out,
/// finishes the broker, waits the consumers out, and assembles the report
/// through the same fold as the threaded plane.  The caller blocks; the work
/// runs on `workers` pool threads (default [`exec::default_workers`]).
pub(crate) fn drive_async_service_plane_on(
    clock: &Arc<dyn Clock>,
    broker: SessionBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    workers: Option<usize>,
) -> ServiceRunReport {
    assert!(
        primary.is_empty() || primary.len() == inputs.len(),
        "primary forwarding needs one link per PE"
    );
    let executor = Executor::new(workers.unwrap_or_else(exec::default_workers));
    let spawner = executor.spawner();
    let shared = Arc::new(Mutex::new(AsyncState {
        broker,
        endpoints: Vec::new(),
        consumers: Vec::new(),
    }));
    // Frame 0 joins happen before any chunk moves.
    shared
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .observe_frame(0, transport, &spawner, clock);

    let pumps: Vec<(TaskHandle, Slot<PeOutcome>)> = inputs
        .into_iter()
        .zip(primary.into_iter().map(Some).chain(std::iter::repeat_with(|| None)))
        .map(|(rx, primary_tx)| {
            let out = slot();
            let handle = spawner.spawn(Box::new(PumpTask {
                rx,
                primary_tx,
                carry: None,
                shared: Arc::clone(&shared),
                transport: transport.clone(),
                spawner: spawner.clone(),
                clock: Arc::clone(clock),
                endpoints: Vec::new(),
                snapshot_frame: None,
                skips: HashSet::new(),
                outcome: Some(PeOutcome::new()),
                out: Arc::clone(&out),
            }));
            (handle, out)
        })
        .collect();
    for (handle, _) in &pumps {
        handle.wait();
    }
    let outcomes: Vec<PeOutcome> = pumps
        .iter()
        .map(|(_, out)| take(out).expect("pump wrote its outcome"))
        .collect();

    // Campaign over: every remaining session leaves, queues disconnect (the
    // pump tasks' endpoint snapshots died with the tasks), consumers drain
    // their queues dry and finish.  No further spawns can happen — the pumps
    // were the only spawners — so the consumer list is complete.
    let consumers = {
        let mut st = shared.lock().unwrap_or_else(|e| e.into_inner());
        st.broker.finish();
        st.endpoints.clear();
        std::mem::take(&mut st.consumers)
    };
    let deliveries: Vec<(usize, SessionDelivery)> = consumers
        .into_iter()
        .map(|(session, handle, out)| {
            handle.wait();
            (session, take(&out).expect("consumer wrote its delivery"))
        })
        .collect();
    // All tasks finished; tear the pool down before folding.
    drop(executor);
    let st = match Arc::try_unwrap(shared) {
        Ok(m) => m.into_inner().unwrap_or_else(|e| e.into_inner()),
        Err(_) => unreachable!("pump tasks have finished"),
    };
    fold_report(st.broker, &outcomes, deliveries)
}

#[cfg(test)]
mod tests {
    use super::super::fanout::tests::fan_out_with;
    use super::super::{QualityTier, ServiceConfig, SessionSpec};
    use super::*;
    use crate::pipeline::VirtualClock;
    use crate::viewer::ViewerError;

    fn spec(name: &str, viewpoint: u32, tier: QualityTier) -> SessionSpec {
        SessionSpec::new(name, viewpoint, tier)
    }

    fn tiny_config() -> ServiceConfig {
        ServiceConfig {
            max_sessions: 4,
            link_capacity_units: 8,
            render_slots: 2,
            queue_depth: 8,
            farm_egress_mbps: None,
        }
    }

    fn drive_async_2(
        broker: SessionBroker,
        inputs: Vec<StripeReceiver>,
        primary: Vec<StripeSender>,
        transport: &TransportConfig,
    ) -> ServiceRunReport {
        drive_async_service_plane(broker, inputs, primary, transport, Some(2))
    }

    #[test]
    fn async_plane_multicasts_every_frame_to_every_session_and_the_primary() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard),
            spec("c", 1, QualityTier::Standard),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let (report, primary_frames) = fan_out_with(drive_async_2, schedule, config, 3, 2);
        assert_eq!(primary_frames.len(), 6);
        assert_eq!(report.sessions.len(), 3);
        for s in &report.sessions {
            assert_eq!(s.frames_completed, 6, "session {}: {:?}", s.name, s.errors);
            assert!(s.errors.is_empty(), "{:?}", s.errors);
        }
        assert_eq!(report.stats.frames_completed, 18);
        assert_eq!(report.stats.fanout_chunks, report.stats.chunks_delivered);
        assert_eq!(report.stats.chunks_dropped, 0);
        assert_eq!(report.stats.render_requests, 9);
        assert_eq!(report.stats.renders_performed, 6);
    }

    #[test]
    fn async_plane_degrades_a_slow_session_with_typed_missing_frames() {
        // The async twin of the threaded plane's degradation test: the same
        // full-queue seam must surface the same typed MissingFrame partial
        // composites for the overflowing session only.
        let mut slow = spec("slow", 0, QualityTier::Standard).paced_at_mbps(0.2);
        slow.stripes = 1;
        let schedule = vec![spec("healthy", 0, QualityTier::Standard), slow];
        let config = ServiceConfig {
            queue_depth: 16,
            ..tiny_config()
        };
        let (report, primary_frames) = fan_out_with(drive_async_2, schedule, config, 6, 1);
        assert_eq!(primary_frames.len(), 6);
        let healthy = report.sessions.iter().find(|s| s.name == "healthy").unwrap();
        let slow = report.sessions.iter().find(|s| s.name == "slow").unwrap();
        assert_eq!(healthy.frames_completed, 6);
        assert!(healthy.errors.is_empty(), "{:?}", healthy.errors);
        assert!(
            slow.frames_skipped > 0,
            "the 1-chunk queue behind a 0.2 Mbps pacer must overflow: {slow:?}"
        );
        assert!(slow
            .errors
            .iter()
            .all(|e| matches!(e, ViewerError::MissingFrame { .. })));
        assert_eq!(report.stats.frames_skipped, slow.frames_skipped);
        assert!(report.stats.chunks_dropped > 0);
    }

    #[test]
    fn async_plane_honors_session_windows_and_mid_run_churn() {
        let schedule = vec![
            spec("whole", 0, QualityTier::Standard),
            spec("window", 0, QualityTier::Standard).with_window(1, Some(3)),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let (report, _) = fan_out_with(drive_async_2, schedule, config, 4, 1);
        let whole = report.sessions.iter().find(|s| s.name == "whole").unwrap();
        let window = report.sessions.iter().find(|s| s.name == "window").unwrap();
        assert_eq!(whole.frames_completed, 4);
        assert_eq!(window.frames_completed, 2, "{window:?}");
    }

    #[test]
    fn async_multicast_is_zero_copy() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard),
            spec("c", 1, QualityTier::Standard),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let before = bytes::deep_copy_count();
        let (report, _) = fan_out_with(drive_async_2, schedule, config, 2, 1);
        assert_eq!(
            bytes::deep_copy_count() - before,
            0,
            "the async plane must multicast by refcount, not memcpy"
        );
        assert_eq!(report.stats.frames_completed, 6);
    }

    #[test]
    fn async_paced_consumers_on_a_virtual_clock_never_sleep() {
        let mut crawl = spec("crawl", 0, QualityTier::Standard).paced_at_mbps(0.01);
        crawl.queue_depth = Some(4096);
        let schedule = vec![spec("healthy", 0, QualityTier::Standard), crawl];
        let config = ServiceConfig {
            queue_depth: 4096,
            ..tiny_config()
        };
        let virtual_clock: Arc<dyn Clock> = Arc::new(VirtualClock);
        let started = std::time::Instant::now();
        let (report, _) = fan_out_with(
            move |broker, inputs, primary, transport| {
                drive_async_service_plane_on(&virtual_clock, broker, inputs, primary, transport, Some(2))
            },
            schedule,
            config,
            4,
            1,
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "virtual-clock pacing must not sleep out the modeled delays"
        );
        for s in &report.sessions {
            assert_eq!(s.frames_completed, 4, "session {}: {:?}", s.name, s.errors);
            assert!(s.errors.is_empty(), "{:?}", s.errors);
        }
    }

    #[test]
    fn async_plane_and_threaded_plane_report_identical_deterministic_stats() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard).with_window(1, Some(3)),
            spec("c", 1, QualityTier::Interactive),
            spec("d", 2, QualityTier::Preview),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let (threaded, _) = fan_out_with(
            super::super::fanout::drive_service_plane,
            schedule.clone(),
            config.clone(),
            4,
            2,
        );
        let (async_run, _) = fan_out_with(drive_async_2, schedule, config, 4, 2);
        assert_eq!(threaded.events, async_run.events, "identical broker decisions");
        let deterministic = |r: &ServiceRunReport| {
            let s = &r.stats;
            (
                s.sessions_offered,
                s.sessions_admitted,
                s.sessions_rejected,
                s.sessions_evicted,
                s.peak_live_sessions,
                s.render_requests,
                s.renders_performed,
                s.flow_limited_sessions,
                s.fanout_chunks,
                s.fanout_bytes,
            )
        };
        assert_eq!(deterministic(&threaded), deterministic(&async_run));
    }
}
