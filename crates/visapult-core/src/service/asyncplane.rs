//! The executor-backed fan-out plane: 10k sessions for the price of memory.
//!
//! The threaded plane ([`super::fanout`]) spends one OS thread per session
//! consumer and one per backend PE link — fine on an exhibit floor, fatal for
//! the ROADMAP's "millions of users" direction.  This plane keeps the same
//! broker, the same multicast/degradation seam, and the same report assembly
//! (all shared `pub(crate)` helpers in `fanout`), but runs every unit of work
//! as a polled state-machine task on a small [`exec::Executor`] worker pool:
//!
//! * `PumpTask` — one per backend PE link.  Polls chunks off the striped
//!   link with `try_recv`, drives broker churn from the frame counter,
//!   forwards to the primary viewer (non-blocking with a carried chunk, so a
//!   full primary queue parks *this task*, not an OS thread), and multicasts
//!   zero-copy clones through the shared degradation seam.
//! * `ConsumerTask` — one per admitted session.  Drains the session's own
//!   bounded queue, paces through the session's [`netsim::StripePacer`]
//!   against the [`Clock`] (a pacing delay becomes an `Idle` poll with a
//!   deadline, not a sleeping thread), reassembles frames, and surfaces the
//!   same typed errors as the threaded consumer.
//! * `ShardPumpTask` + `ShardFanTask` — the sharded plane splits the pump in
//!   two.  The per-PE pump only accounts each chunk, forwards the primary
//!   viewer, and pushes one refcounted clone into every shard's bounded fan
//!   lane; a per-shard fan task (polling on that shard's own executor) drives
//!   that shard's broker churn and multicasts over that shard's endpoints
//!   only.  The multicast loop — the dominant cost at 10k sessions — runs
//!   shard-parallel instead of serialized on one pump.
//!
//! OS thread count is therefore the worker-pool size — independent of the
//! session count — and the deterministic half of [`super::ServiceStats`]
//! is byte-identical to the threaded plane because both drive the identical
//! [`SessionBroker`] through the identical seam functions.

use super::fanout::{
    consume_chunk, empty_delivery, fold_report, session_link, surface_pending_frames, PeOutcome, PlaneTelemetry,
    SessionEndpoint, WaveBuffer, WaveMeter,
};
use super::sharded::CountedLock;
use super::{ServiceRunReport, SessionBroker, SessionDelivery, SessionEvent, ShardedBroker};
use crate::pipeline::{Clock, WallClock};
use crate::transport::{FrameChunk, StripeReceiver, StripeSender, TransportConfig, TransportError};
use crossbeam::channel::{bounded, ReadyHook, Receiver, Sender, TryRecvError, TrySendError};
use exec::{Executor, Poll, Spawner, Task, TaskHandle, Waker};
use netsim::StripePacer;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Chunks a task moves per poll before yielding the worker: enough to
/// amortize scheduling, small enough that thousands of tasks stay fair.
const POLL_BUDGET: usize = 32;

/// Depth of each shard's fan lane (pump → shard fan task).  Chunks are
/// refcounted slices, so a lane holds windows, not payload copies; a full
/// lane parks the pump task (backpressure), never a worker thread.
const FAN_LANE_DEPTH: usize = 256;

/// Completed-task results are handed back through shared slots (the executor
/// returns no values; a task writes its result right before `Ready`).
type Slot<T> = Arc<Mutex<Option<T>>>;

fn slot<T>() -> Slot<T> {
    Arc::new(Mutex::new(None))
}

fn fill<T>(s: &Slot<T>, value: T) {
    *s.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
}

fn take<T>(s: &Slot<T>) -> Option<T> {
    s.lock().unwrap_or_else(|e| e.into_inner()).take()
}

/// A channel readiness hook that fires a task's [`Waker`] — how every task
/// below turns "my queue moved" into a targeted re-schedule instead of an
/// executor sweep finding it eventually.
fn wake_hook(waker: Waker) -> ReadyHook {
    Arc::new(move || waker.wake())
}

/// Broker + endpoints + consumer-task registry, shared by every pump.  One
/// per shard on the sharded plane (with its own lock and its own executor's
/// spawner); the classic plane is the one-shard instance.
struct AsyncState {
    broker: SessionBroker,
    endpoints: Vec<Arc<SessionEndpoint>>,
    /// Position in `endpoints` per global session index (endpoints are
    /// append-only): O(1) Left/Evicted closes instead of an O(live) scan.
    endpoint_of: HashMap<usize, usize>,
    consumers: Vec<(usize, TaskHandle, Slot<SessionDelivery>)>,
    /// Global schedule index per local broker index (empty = identity, the
    /// unsharded plane).
    globals: Vec<usize>,
    /// Decode memo shared by every consumer this shard spawns: sessions all
    /// receive the same multicast chunks, so each frame decodes once.
    decode: Arc<crate::transport::SharedDecode>,
}

impl AsyncState {
    fn global(&self, session: usize) -> usize {
        self.globals.get(session).copied().unwrap_or(session)
    }

    /// Advance the broker to `frame`, materializing queues and consumer
    /// *tasks* for admissions and closing the delivery window for
    /// leaves/evictions.  The mirror of the threaded plane's `observe_frame`,
    /// with `spawner.spawn` where that one spawns a thread.
    fn observe_frame(&mut self, frame: u32, transport: &TransportConfig, spawner: &Spawner, clock: &Arc<dyn Clock>) {
        if frame < self.broker.next_frame() {
            return;
        }
        let before = self.broker.events().len();
        self.broker.advance_to(frame);
        let new: Vec<(u32, SessionEvent)> = self.broker.events()[before..].to_vec();
        for (at, event) in new {
            match event {
                SessionEvent::Admitted { session } => {
                    let spec = self.broker.spec(session).clone();
                    let global = self.global(session);
                    let (tx, rx, pacer) = session_link(&spec, self.broker.config().queue_depth, transport);
                    let out = slot();
                    let handle = spawner.spawn(Box::new(ConsumerTask {
                        rx,
                        pacer,
                        clock: Arc::clone(clock),
                        ready_at: Duration::ZERO,
                        delivery: Some(empty_delivery(&spec)),
                        assembler: crate::transport::FrameAssembler::with_shared_decode(Arc::clone(&self.decode)),
                        out: Arc::clone(&out),
                    }));
                    self.consumers.push((global, handle, out));
                    self.endpoint_of.insert(global, self.endpoints.len());
                    self.endpoints.push(SessionEndpoint::new(global, spec, tx));
                }
                SessionEvent::Left { session } | SessionEvent::Evicted { session } => {
                    let global = self.global(session);
                    if let Some(&i) = self.endpoint_of.get(&global) {
                        self.endpoints[i].close_at(at);
                    }
                }
                SessionEvent::Rejected { .. } => {}
            }
        }
    }
}

/// One backend PE link as a polled task: the async twin of the threaded
/// plane's per-PE thread body, chunk for chunk.
struct PumpTask {
    rx: StripeReceiver,
    primary_tx: Option<StripeSender>,
    /// A chunk received and accounted but still owed to the primary viewer:
    /// its full queue parks this task (backpressure through `Idle`), never a
    /// worker thread.
    carry: Option<FrameChunk>,
    /// Every broker shard behind its own counted lock, paired with the
    /// spawner consumers of that shard spawn on (the classic plane is one
    /// shard on the pump's own executor).
    shards: Vec<(Arc<CountedLock<AsyncState>>, Spawner)>,
    transport: TransportConfig,
    clock: Arc<dyn Clock>,
    endpoints: Vec<Arc<SessionEndpoint>>,
    snapshot_frame: Option<u32>,
    skips: HashSet<(usize, u32)>,
    /// The current frame's chunks, held back so the multicast can burst each
    /// session's whole wave contiguously (one consumer wake per frame).
    wave: WaveBuffer,
    outcome: Option<PeOutcome>,
    out: Slot<PeOutcome>,
    telemetry: PlaneTelemetry,
    meter: WaveMeter,
}

/// Forward `chunk` to the primary viewer if one is attached.  Returns the
/// chunk when it still needs carrying (primary full), `Ok` when the chunk
/// may move on to multicast.
fn forward_primary_chunk(primary_tx: &mut Option<StripeSender>, chunk: FrameChunk) -> Result<FrameChunk, FrameChunk> {
    let Some(tx) = primary_tx else {
        return Ok(chunk);
    };
    match tx.try_send_raw_chunk(chunk.clone()) {
        Ok(true) => Ok(chunk),
        Ok(false) => Err(chunk),
        Err(TransportError::Closed) | Err(TransportError::Corrupt(_)) => {
            // The viewer got everything it expected and hung up; keep
            // serving the sessions.
            *primary_tx = None;
            Ok(chunk)
        }
    }
}

impl Task for PumpTask {
    fn bind(&mut self, waker: Waker) {
        // Everything this task can park on wakes it: a chunk arriving on the
        // backend link (or the link closing), and — when a full primary
        // viewer queue leaves a chunk carried — a slot freeing up there.
        let hook = wake_hook(waker);
        self.rx.set_data_hook(Arc::clone(&hook));
        if let Some(tx) = &self.primary_tx {
            tx.set_space_hook(hook);
        }
    }

    fn poll(&mut self) -> Poll {
        let mut progressed = false;
        let mut budget = POLL_BUDGET;
        loop {
            // Settle the carried chunk before receiving another: primary
            // forwarding keeps the blocking plane's per-link ordering.
            if let Some(chunk) = self.carry.take() {
                match forward_primary_chunk(&mut self.primary_tx, chunk) {
                    Ok(chunk) => {
                        let outcome = self.outcome.as_mut().expect("pump still running");
                        // Session-major wave burst: buffer until the frame's
                        // chunks are all in, then hand every session its run
                        // contiguously — one consumer wake per wave instead
                        // of one per chunk (see [`WaveBuffer`]).
                        if self.wave.push(chunk) {
                            self.meter
                                .multicast(&self.wave.take(), &self.endpoints, &mut self.skips, outcome);
                        }
                        progressed = true;
                    }
                    Err(chunk) => {
                        // Primary full: the space hook re-queues this task.
                        self.carry = Some(chunk);
                        return if progressed { Poll::Progress } else { Poll::Blocked };
                    }
                }
            }
            if budget == 0 {
                return Poll::Progress;
            }
            match self.rx.try_recv_chunk() {
                Some(chunk) => {
                    budget -= 1;
                    let frame = chunk.frame;
                    let outcome = self.outcome.as_mut().expect("pump still running");
                    outcome.record_offered(&chunk);
                    // A chunk for a new (rank, frame) closes the buffered
                    // wave: flush it against the snapshot it belongs to,
                    // *before* churn refreshes the endpoints.
                    if self.wave.must_flush_before(&chunk) {
                        self.meter
                            .multicast(&self.wave.take(), &self.endpoints, &mut self.skips, outcome);
                    }
                    // Drive churn from the frame counter, then refresh the
                    // endpoint snapshot — same high-water rule and the same
                    // correctness argument as the threaded plane; shards are
                    // locked one at a time, in shard order.
                    if self.snapshot_frame.map(|f| frame > f).unwrap_or(true) {
                        self.endpoints.clear();
                        for (shard, spawner) in &self.shards {
                            let mut st = shard.lock();
                            st.observe_frame(frame, &self.transport, spawner, &self.clock);
                            self.endpoints.extend(st.endpoints.iter().cloned());
                        }
                        self.snapshot_frame = Some(frame);
                        self.meter.observe_depths(self.endpoints.len(), self.rx.queued_chunks());
                        self.telemetry.observe_frame(frame);
                    }
                    self.carry = Some(chunk);
                }
                None => {
                    if self.rx.is_closed() {
                        // Backend link drained and closed: flush the
                        // trailing (possibly mid-frame) wave; this PE is
                        // done.
                        let outcome = self.outcome.as_mut().expect("pump still running");
                        self.meter
                            .multicast(&self.wave.take(), &self.endpoints, &mut self.skips, outcome);
                        fill(&self.out, self.outcome.take().expect("pump finishes once"));
                        return Poll::Ready;
                    }
                    // Link empty: the data hook re-queues this task on the
                    // next arrival (or on close).
                    return if progressed { Poll::Progress } else { Poll::Blocked };
                }
            }
        }
    }
}

/// The sharded plane's per-PE pump: accounts offered load, forwards the
/// primary viewer, and hands each chunk (a refcounted clone) to every shard's
/// fan lane.  It never touches a broker lock and never walks an endpoint
/// list — the multicast work happens shard-parallel in [`ShardFanTask`]s.
struct ShardPumpTask {
    rx: StripeReceiver,
    primary_tx: Option<StripeSender>,
    /// A chunk received and accounted but still owed to the primary viewer.
    carry: Option<FrameChunk>,
    /// A chunk owed to fan lanes `i..`: a full lane parks this task
    /// (backpressure through `Idle`), never a worker thread.
    fan_carry: Option<(usize, FrameChunk)>,
    lanes: Vec<Sender<FrameChunk>>,
    outcome: Option<PeOutcome>,
    out: Slot<PeOutcome>,
}

impl Task for ShardPumpTask {
    fn bind(&mut self, waker: Waker) {
        // Everything this task can park on wakes it: backend-link arrivals
        // and closure, a slot freeing in a full primary viewer queue, and a
        // slot freeing in any full fan lane.
        let hook = wake_hook(waker);
        self.rx.set_data_hook(Arc::clone(&hook));
        if let Some(tx) = &self.primary_tx {
            tx.set_space_hook(Arc::clone(&hook));
        }
        for lane in &self.lanes {
            lane.set_space_hook(Arc::clone(&hook));
        }
    }

    fn poll(&mut self) -> Poll {
        let mut progressed = false;
        let mut budget = POLL_BUDGET;
        loop {
            // Settle the carries before receiving another chunk: primary
            // first, then the remaining fan lanes, preserving the blocking
            // plane's per-link ordering.
            if let Some(chunk) = self.carry.take() {
                match forward_primary_chunk(&mut self.primary_tx, chunk) {
                    Ok(chunk) => self.fan_carry = Some((0, chunk)),
                    Err(chunk) => {
                        // Primary full: the space hook re-queues this task.
                        self.carry = Some(chunk);
                        return if progressed { Poll::Progress } else { Poll::Blocked };
                    }
                }
            }
            if let Some((start, chunk)) = self.fan_carry.take() {
                let mut lane = start;
                while lane < self.lanes.len() {
                    match self.lanes[lane].try_send(chunk.clone()) {
                        Ok(()) => lane += 1,
                        Err(TrySendError::Full(_)) => {
                            // Lane full: its space hook re-queues this task.
                            self.fan_carry = Some((lane, chunk));
                            return if progressed { Poll::Progress } else { Poll::Blocked };
                        }
                        // A dead fan task can't deliver anyway; the sessions
                        // behind it will surface missing frames.
                        Err(TrySendError::Disconnected(_)) => lane += 1,
                    }
                }
                progressed = true;
            }
            if budget == 0 {
                return Poll::Progress;
            }
            match self.rx.try_recv_chunk() {
                Some(chunk) => {
                    budget -= 1;
                    let outcome = self.outcome.as_mut().expect("pump still running");
                    outcome.record_offered(&chunk);
                    self.carry = Some(chunk);
                }
                None => {
                    if self.rx.is_closed() {
                        // Backend link drained and closed: this PE is done.
                        // Dropping the task drops its lane senders, which is
                        // what lets the fan tasks finish.
                        fill(&self.out, self.outcome.take().expect("pump finishes once"));
                        return Poll::Ready;
                    }
                    // Link empty: the data hook re-queues this task on the
                    // next arrival (or on close).
                    return if progressed { Poll::Progress } else { Poll::Blocked };
                }
            }
        }
    }
}

/// One shard's multicast worker: drains the shard's fan lane, drives *this
/// shard's* broker churn from the frame counter, and multicasts over this
/// shard's endpoints only.  Polls on the shard's own executor, so the
/// dominant per-session push loop runs on as many workers as there are
/// shards.  Its outcome carries delivery counters only (offered load is
/// accounted once, by the pump), so folding it alongside the pump outcomes
/// never double-counts.
struct ShardFanTask {
    rx: Receiver<FrameChunk>,
    shard: Arc<CountedLock<AsyncState>>,
    spawner: Spawner,
    transport: TransportConfig,
    clock: Arc<dyn Clock>,
    endpoints: Vec<Arc<SessionEndpoint>>,
    snapshot_frame: Option<u32>,
    skips: HashSet<(usize, u32)>,
    /// The current frame's chunks, held back so the multicast can burst each
    /// session's whole wave contiguously (one consumer wake per frame).
    wave: WaveBuffer,
    outcome: Option<PeOutcome>,
    out: Slot<PeOutcome>,
    telemetry: PlaneTelemetry,
    meter: WaveMeter,
}

impl Task for ShardFanTask {
    fn bind(&mut self, waker: Waker) {
        // The fan lane is this task's only input; its data hook (arrival or
        // every-pump-finished disconnect) is the only wake it needs.
        self.rx.set_data_hook(wake_hook(waker));
    }

    fn poll(&mut self) -> Poll {
        let mut progressed = false;
        for _ in 0..POLL_BUDGET {
            match self.rx.try_recv() {
                Ok(chunk) => {
                    progressed = true;
                    let frame = chunk.frame;
                    // A chunk for a new (rank, frame) closes the buffered
                    // wave: flush it against the snapshot it belongs to,
                    // *before* churn refreshes the endpoints.
                    if self.wave.must_flush_before(&chunk) {
                        let outcome = self.outcome.as_mut().expect("fan task still running");
                        self.meter
                            .multicast(&self.wave.take(), &self.endpoints, &mut self.skips, outcome);
                    }
                    // Same high-water churn rule as the pump on the classic
                    // plane, but the lock is held only to advance the broker
                    // and clone out the endpoint list — the multicast itself
                    // runs lock-free on the snapshot.
                    if self.snapshot_frame.map(|f| frame > f).unwrap_or(true) {
                        {
                            let mut st = self.shard.lock();
                            st.observe_frame(frame, &self.transport, &self.spawner, &self.clock);
                            self.endpoints.clear();
                            self.endpoints.extend(st.endpoints.iter().cloned());
                        }
                        self.snapshot_frame = Some(frame);
                        self.meter.observe_depths(self.endpoints.len(), self.rx.len());
                        self.telemetry.observe_frame(frame);
                    }
                    let outcome = self.outcome.as_mut().expect("fan task still running");
                    // Session-major wave burst (see [`WaveBuffer`]): one
                    // consumer wake per wave instead of one per chunk.
                    if self.wave.push(chunk) {
                        self.meter
                            .multicast(&self.wave.take(), &self.endpoints, &mut self.skips, outcome);
                    }
                }
                Err(TryRecvError::Empty) => {
                    // Lane empty: its data hook re-queues this task.
                    return if progressed { Poll::Progress } else { Poll::Blocked };
                }
                Err(TryRecvError::Disconnected) => {
                    // Every pump finished and the lane is dry: flush the
                    // trailing (possibly mid-frame) wave; this shard has
                    // multicast everything it will ever see.
                    let outcome = self.outcome.as_mut().expect("fan task still running");
                    self.meter
                        .multicast(&self.wave.take(), &self.endpoints, &mut self.skips, outcome);
                    fill(&self.out, self.outcome.take().expect("fan task finishes once"));
                    return Poll::Ready;
                }
            }
        }
        Poll::Progress
    }
}

/// One session consumer as a polled task: the async twin of
/// `run_session_consumer`, with the pacer's delay expressed as a deadline on
/// the [`Clock`] instead of a thread sleep.
struct ConsumerTask {
    rx: StripeReceiver,
    pacer: Option<StripePacer>,
    clock: Arc<dyn Clock>,
    /// Pacing deadline: polls before this instant are `Idle`.
    ready_at: Duration,
    delivery: Option<SessionDelivery>,
    assembler: crate::transport::FrameAssembler,
    out: Slot<SessionDelivery>,
}

impl Task for ConsumerTask {
    fn bind(&mut self, waker: Waker) {
        // The session queue is this task's only input; arrivals and the
        // endpoints-all-dropped close both fire its data hook.  A pacing
        // deadline is the one wait with no hook — those polls stay `Idle`.
        self.rx.set_data_hook(wake_hook(waker));
    }

    fn poll(&mut self) -> Poll {
        // Only paced sessions ever set a deadline; the unpaced fast path
        // (the 10k-session floor) must not pay a clock read per idle poll.
        if self.ready_at > Duration::ZERO {
            if self.clock.monotonic_now() < self.ready_at {
                return Poll::Idle;
            }
            self.ready_at = Duration::ZERO;
        }
        let mut progressed = false;
        for _ in 0..POLL_BUDGET {
            match self.rx.try_recv_chunk() {
                Some(chunk) => {
                    progressed = true;
                    let mut pace = Duration::ZERO;
                    if let Some(p) = &mut self.pacer {
                        // The session's own WAN: drain no faster than the
                        // modeled last mile, which backpressures only this
                        // queue.
                        pace = p.consume(chunk.stripe as usize, chunk.payload.len() as u64);
                    }
                    let delivery = self.delivery.as_mut().expect("consumer still running");
                    consume_chunk(delivery, &mut self.assembler, chunk);
                    if !pace.is_zero() {
                        self.ready_at = self.clock.monotonic_now() + pace;
                        return Poll::Progress;
                    }
                }
                None => {
                    if self.rx.is_closed() {
                        // Session over: every endpoint dropped, queue drained.
                        let mut delivery = self.delivery.take().expect("consumer finishes once");
                        surface_pending_frames(&self.assembler, &mut delivery);
                        fill(&self.out, delivery);
                        return Poll::Ready;
                    }
                    // Queue empty, no pacing deadline pending (a pace always
                    // returns `Progress` above): the data hook re-queues this
                    // task on the next chunk or on close.  This is the poll
                    // the 10k idle consumers used to burn sweeps on.
                    return if progressed { Poll::Progress } else { Poll::Blocked };
                }
            }
        }
        Poll::Progress
    }
}

/// The async fan-out plane on the wall clock (the production entry).
#[cfg_attr(not(test), allow(dead_code))] // production callers go through the metered twin
pub(crate) fn drive_async_service_plane(
    broker: SessionBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    workers: Option<usize>,
) -> ServiceRunReport {
    drive_async_service_plane_metered(broker, inputs, primary, transport, workers, &PlaneTelemetry::disabled())
}

/// The async plane on the wall clock with telemetry wiring — what the
/// pipeline (and the benches, through [`crate::pipeline::AsyncPlane`])
/// actually call.
pub(crate) fn drive_async_service_plane_metered(
    broker: SessionBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    workers: Option<usize>,
    telemetry: &PlaneTelemetry,
) -> ServiceRunReport {
    drive_async_service_plane_on(
        &(Arc::new(WallClock) as Arc<dyn Clock>),
        broker,
        inputs,
        primary,
        transport,
        workers,
        telemetry,
    )
}

/// Fold one executor pool's introspection counters into the metrics hub —
/// *before* the pool is dropped, which is when the worker cells die.
fn fold_exec_stats(telemetry: &PlaneTelemetry, stats: &exec::ExecutorStats) {
    let hub = &telemetry.hub;
    if !hub.is_enabled() {
        return;
    }
    hub.add("exec/polls", stats.total_polls());
    hub.add("exec/poll_ns", stats.total_poll_ns());
    hub.add("exec/parks", stats.total_parks());
    hub.add("exec/idle_sweeps", stats.total_idle_sweeps());
    hub.add("exec/wakes", stats.wakes);
    hub.add("exec/spawns", stats.spawns);
    hub.add("exec/workers", stats.workers.len() as u64);
    hub.observe_high_water("exec/run_queue_depth", stats.run_queue_high_water);
    // Per-worker mean poll duration as one histogram sample per worker:
    // enough to spot a pool whose workers see wildly uneven poll costs.
    let per_worker = hub.histogram("exec/worker_mean_poll_ns");
    for w in &stats.workers {
        if let Some(mean_ns) = w.poll_ns.checked_div(w.polls) {
            per_worker.record(mean_ns);
        }
    }
}

/// The async fan-out plane implementation, on an explicit clock.
///
/// Blocking facade over the task pool: spawns one [`PumpTask`] per backend PE
/// link (consumers spawn as the broker admits them), waits the pumps out,
/// finishes the broker, waits the consumers out, and assembles the report
/// through the same fold as the threaded plane.  The caller blocks; the work
/// runs on `workers` pool threads (default [`exec::default_workers`]).
pub(crate) fn drive_async_service_plane_on(
    clock: &Arc<dyn Clock>,
    broker: SessionBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    workers: Option<usize>,
    telemetry: &PlaneTelemetry,
) -> ServiceRunReport {
    let executor = Executor::new(workers.unwrap_or_else(exec::default_workers));
    let spawner = executor.spawner();
    let shard = Arc::new(CountedLock::new(AsyncState {
        broker,
        endpoints: Vec::new(),
        endpoint_of: HashMap::new(),
        consumers: Vec::new(),
        globals: Vec::new(),
        decode: Arc::new(crate::transport::SharedDecode::new()),
    }));
    shard.lockdep_label("async-plane-shard");
    let shards = vec![(Arc::clone(&shard), spawner.clone())];
    let outcomes = run_async_pumps(clock, &spawner, &shards, inputs, primary, transport, telemetry);
    let deliveries = wait_shard_deliveries(&shards);
    // All tasks finished; harvest the pool's introspection counters, then
    // tear it down before folding.
    fold_exec_stats(telemetry, &executor.stats());
    drop(executor);
    drop(shards);
    let st = match Arc::try_unwrap(shard) {
        Ok(lock) => lock.into_inner(),
        Err(_) => unreachable!("pump tasks have finished"),
    };
    fold_report(st.broker, &outcomes, deliveries)
}

/// The sharded async plane on the wall clock.
#[cfg_attr(not(test), allow(dead_code))] // production callers go through the metered twin
pub(crate) fn drive_sharded_async_plane(
    broker: ShardedBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    workers: Option<usize>,
) -> ServiceRunReport {
    drive_sharded_async_plane_metered(broker, inputs, primary, transport, workers, &PlaneTelemetry::disabled())
}

/// The sharded async plane on the wall clock with telemetry wiring.
pub(crate) fn drive_sharded_async_plane_metered(
    broker: ShardedBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    workers: Option<usize>,
    telemetry: &PlaneTelemetry,
) -> ServiceRunReport {
    drive_sharded_async_plane_on(
        &(Arc::new(WallClock) as Arc<dyn Clock>),
        broker,
        inputs,
        primary,
        transport,
        workers,
        telemetry,
    )
}

/// The sharded async plane: each broker shard gets its own counted lock *and
/// its own executor* — the shard's consumers, and its [`ShardFanTask`], spawn
/// and poll on its private pool (of `workers / shards` threads, at least 1),
/// so the per-executor task queue mutex, the idle sweeps over live consumers,
/// *and the multicast loop itself* shard along with the broker.  Pumps are
/// lightweight (account, forward the primary, feed the fan lanes) and spawn
/// round-robin across the shard executors — a dedicated pump pool would add
/// an OS thread that mostly idles, which on a loaded box steals cycles from
/// the real work.
pub(crate) fn drive_sharded_async_plane_on(
    clock: &Arc<dyn Clock>,
    broker: ShardedBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    workers: Option<usize>,
    telemetry: &PlaneTelemetry,
) -> ServiceRunReport {
    let total_workers = workers.unwrap_or_else(exec::default_workers);
    let (config, brokers, globals) = broker.into_parts();
    let shard_count = brokers.len();
    let executors: Vec<Executor> = (0..shard_count)
        .map(|_| Executor::new((total_workers / shard_count).max(1)))
        .collect();
    // One memo for the whole plane: shards receive the same multicast
    // frames, so a frame decodes once no matter how the floor is sharded.
    let decode = Arc::new(crate::transport::SharedDecode::new());
    let shards: Vec<(Arc<CountedLock<AsyncState>>, Spawner)> = brokers
        .into_iter()
        .zip(&globals)
        .zip(&executors)
        .enumerate()
        .map(|(i, ((broker, shard_globals), executor))| {
            let state = AsyncState {
                broker,
                endpoints: Vec::new(),
                endpoint_of: HashMap::new(),
                consumers: Vec::new(),
                globals: shard_globals.clone(),
                decode: Arc::clone(&decode),
            };
            let lock = Arc::new(CountedLock::new(state));
            lock.lockdep_label(&format!("async-shard-{i}"));
            (lock, executor.spawner())
        })
        .collect();
    let outcomes = run_sharded_async_pumps(clock, &shards, inputs, primary, transport, telemetry);
    let deliveries = wait_shard_deliveries(&shards);
    // All tasks finished; harvest every pool's introspection counters (the
    // cells die with the pools), then tear them down before folding.
    for executor in &executors {
        fold_exec_stats(telemetry, &executor.stats());
    }
    drop(executors);
    let mut shard_locks = Vec::with_capacity(shard_count);
    let mut brokers = Vec::with_capacity(shard_count);
    for (i, (shard, _spawner)) in shards.into_iter().enumerate() {
        shard_locks.push(shard.stats(i));
        let st = match Arc::try_unwrap(shard) {
            Ok(lock) => lock.into_inner(),
            Err(_) => unreachable!("pump tasks have finished"),
        };
        brokers.push(st.broker);
    }
    let mut report = fold_report(
        ShardedBroker::from_parts(config, brokers, globals),
        &outcomes,
        deliveries,
    );
    report.shard_locks = shard_locks;
    report
}

/// Spawn one [`PumpTask`] per backend PE link on `pump_spawner` and block
/// until every pump finishes (the backend links closed and every carried
/// chunk settled).
fn run_async_pumps(
    clock: &Arc<dyn Clock>,
    pump_spawner: &Spawner,
    shards: &[(Arc<CountedLock<AsyncState>>, Spawner)],
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    telemetry: &PlaneTelemetry,
) -> Vec<PeOutcome> {
    assert!(
        primary.is_empty() || primary.len() == inputs.len(),
        "primary forwarding needs one link per PE"
    );
    // Frame 0 joins happen before any chunk moves.
    for (shard, spawner) in shards {
        shard.lock().observe_frame(0, transport, spawner, clock);
    }
    let pumps: Vec<(TaskHandle, Slot<PeOutcome>)> = inputs
        .into_iter()
        .zip(primary.into_iter().map(Some).chain(std::iter::repeat_with(|| None)))
        .map(|(rx, primary_tx)| {
            let out = slot();
            let handle = pump_spawner.spawn(Box::new(PumpTask {
                rx,
                primary_tx,
                carry: None,
                shards: shards.to_vec(),
                transport: transport.clone(),
                clock: Arc::clone(clock),
                endpoints: Vec::new(),
                snapshot_frame: None,
                skips: HashSet::new(),
                wave: WaveBuffer::new(),
                outcome: Some(PeOutcome::new()),
                out: Arc::clone(&out),
                telemetry: telemetry.clone(),
                meter: telemetry.meter(),
            }));
            (handle, out)
        })
        .collect();
    for (handle, _) in &pumps {
        handle.wait();
    }
    pumps
        .iter()
        .map(|(_, out)| take(out).expect("pump wrote its outcome"))
        .collect()
}

/// The sharded plane's pump stage: one [`ShardFanTask`] per shard (on that
/// shard's executor), one [`ShardPumpTask`] per backend PE link (round-robin
/// across the shard executors), and a bounded fan lane between them.  Blocks
/// until every pump *and every fan task* finishes — the fan tasks hold
/// endpoint clones that keep session queues open, so they must drain before
/// deliveries are waited.  Returns the pump outcomes (offered load + primary)
/// followed by the fan outcomes (per-shard delivery counters);
/// `fold_report` sums them.
fn run_sharded_async_pumps(
    clock: &Arc<dyn Clock>,
    shards: &[(Arc<CountedLock<AsyncState>>, Spawner)],
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    telemetry: &PlaneTelemetry,
) -> Vec<PeOutcome> {
    assert!(
        primary.is_empty() || primary.len() == inputs.len(),
        "primary forwarding needs one link per PE"
    );
    // Frame 0 joins happen before any chunk moves.
    for (shard, spawner) in shards {
        shard.lock().observe_frame(0, transport, spawner, clock);
    }
    let mut lane_txs = Vec::with_capacity(shards.len());
    let fans: Vec<(TaskHandle, Slot<PeOutcome>)> = shards
        .iter()
        .map(|(shard, spawner)| {
            let (tx, rx) = bounded::<FrameChunk>(FAN_LANE_DEPTH);
            lane_txs.push(tx);
            let out = slot();
            let handle = spawner.spawn(Box::new(ShardFanTask {
                rx,
                shard: Arc::clone(shard),
                spawner: spawner.clone(),
                transport: transport.clone(),
                clock: Arc::clone(clock),
                endpoints: Vec::new(),
                snapshot_frame: None,
                skips: HashSet::new(),
                wave: WaveBuffer::new(),
                outcome: Some(PeOutcome::new()),
                out: Arc::clone(&out),
                telemetry: telemetry.clone(),
                meter: telemetry.meter(),
            }));
            (handle, out)
        })
        .collect();
    let pumps: Vec<(TaskHandle, Slot<PeOutcome>)> = inputs
        .into_iter()
        .zip(primary.into_iter().map(Some).chain(std::iter::repeat_with(|| None)))
        .enumerate()
        .map(|(pe, (rx, primary_tx))| {
            let out = slot();
            let (_, spawner) = &shards[pe % shards.len()];
            let handle = spawner.spawn(Box::new(ShardPumpTask {
                rx,
                primary_tx,
                carry: None,
                fan_carry: None,
                lanes: lane_txs.clone(),
                outcome: Some(PeOutcome::new()),
                out: Arc::clone(&out),
            }));
            (handle, out)
        })
        .collect();
    // Drop our lane senders: once every pump task finishes (and is dropped by
    // its worker), the fan tasks see Disconnected and wind down.
    drop(lane_txs);
    let mut outcomes: Vec<PeOutcome> = pumps
        .iter()
        .map(|(handle, out)| {
            handle.wait();
            take(out).expect("pump wrote its outcome")
        })
        .collect();
    for (handle, out) in &fans {
        handle.wait();
        outcomes.push(take(out).expect("fan task wrote its outcome"));
    }
    outcomes
}

/// Campaign over: on every shard the remaining sessions leave, queues
/// disconnect (the pump tasks' endpoint snapshots died with the tasks),
/// consumers drain their queues dry and finish.  No further spawns can
/// happen — the pumps were the only spawners — so the consumer lists are
/// complete.  Deliveries come back keyed by global schedule index.
fn wait_shard_deliveries(shards: &[(Arc<CountedLock<AsyncState>>, Spawner)]) -> Vec<(usize, SessionDelivery)> {
    let mut deliveries = Vec::new();
    for (shard, _spawner) in shards {
        let consumers = {
            let mut st = shard.lock();
            st.broker.finish();
            st.endpoints.clear();
            std::mem::take(&mut st.consumers)
        };
        for (session, handle, out) in consumers {
            handle.wait();
            deliveries.push((session, take(&out).expect("consumer wrote its delivery")));
        }
    }
    deliveries
}

#[cfg(test)]
mod tests {
    use super::super::fanout::tests::fan_out_with;
    use super::super::{QualityTier, ServiceConfig, SessionSpec};
    use super::*;
    use crate::pipeline::VirtualClock;
    use crate::viewer::ViewerError;

    fn spec(name: &str, viewpoint: u32, tier: QualityTier) -> SessionSpec {
        SessionSpec::new(name, viewpoint, tier)
    }

    fn tiny_config() -> ServiceConfig {
        ServiceConfig {
            max_sessions: 4,
            link_capacity_units: 8,
            render_slots: 2,
            queue_depth: 8,
            ..ServiceConfig::default()
        }
    }

    fn drive_async_2(
        broker: SessionBroker,
        inputs: Vec<StripeReceiver>,
        primary: Vec<StripeSender>,
        transport: &TransportConfig,
    ) -> ServiceRunReport {
        drive_async_service_plane(broker, inputs, primary, transport, Some(2))
    }

    #[test]
    fn async_plane_multicasts_every_frame_to_every_session_and_the_primary() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard),
            spec("c", 1, QualityTier::Standard),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let (report, primary_frames) = fan_out_with(drive_async_2, schedule, config, 3, 2);
        assert_eq!(primary_frames.len(), 6);
        assert_eq!(report.sessions.len(), 3);
        for s in &report.sessions {
            assert_eq!(s.frames_completed, 6, "session {}: {:?}", s.name, s.errors);
            assert!(s.errors.is_empty(), "{:?}", s.errors);
        }
        assert_eq!(report.stats.frames_completed, 18);
        assert_eq!(report.stats.fanout_chunks, report.stats.chunks_delivered);
        assert_eq!(report.stats.chunks_dropped, 0);
        assert_eq!(report.stats.render_requests, 9);
        assert_eq!(report.stats.renders_performed, 6);
    }

    #[test]
    fn async_plane_degrades_a_slow_session_with_typed_missing_frames() {
        // The async twin of the threaded plane's degradation test: the same
        // full-queue seam must surface the same typed MissingFrame partial
        // composites for the overflowing session only.
        let mut slow = spec("slow", 0, QualityTier::Standard).paced_at_mbps(0.2);
        slow.stripes = 1;
        let schedule = vec![spec("healthy", 0, QualityTier::Standard), slow];
        let config = ServiceConfig {
            queue_depth: 16,
            ..tiny_config()
        };
        let (report, primary_frames) = fan_out_with(drive_async_2, schedule, config, 6, 1);
        assert_eq!(primary_frames.len(), 6);
        let healthy = report.sessions.iter().find(|s| s.name == "healthy").unwrap();
        let slow = report.sessions.iter().find(|s| s.name == "slow").unwrap();
        assert_eq!(healthy.frames_completed, 6);
        assert!(healthy.errors.is_empty(), "{:?}", healthy.errors);
        assert!(
            slow.frames_skipped > 0,
            "the 1-chunk queue behind a 0.2 Mbps pacer must overflow: {slow:?}"
        );
        assert!(slow
            .errors
            .iter()
            .all(|e| matches!(e, ViewerError::MissingFrame { .. })));
        assert_eq!(report.stats.frames_skipped, slow.frames_skipped);
        assert!(report.stats.chunks_dropped > 0);
    }

    #[test]
    fn async_plane_honors_session_windows_and_mid_run_churn() {
        let schedule = vec![
            spec("whole", 0, QualityTier::Standard),
            spec("window", 0, QualityTier::Standard).with_window(1, Some(3)),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let (report, _) = fan_out_with(drive_async_2, schedule, config, 4, 1);
        let whole = report.sessions.iter().find(|s| s.name == "whole").unwrap();
        let window = report.sessions.iter().find(|s| s.name == "window").unwrap();
        assert_eq!(whole.frames_completed, 4);
        assert_eq!(window.frames_completed, 2, "{window:?}");
    }

    #[test]
    fn async_multicast_is_zero_copy() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard),
            spec("c", 1, QualityTier::Standard),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let before = bytes::deep_copy_count();
        let (report, _) = fan_out_with(drive_async_2, schedule, config, 2, 1);
        assert_eq!(
            bytes::deep_copy_count() - before,
            0,
            "the async plane must multicast by refcount, not memcpy"
        );
        assert_eq!(report.stats.frames_completed, 6);
    }

    #[test]
    fn async_paced_consumers_on_a_virtual_clock_never_sleep() {
        let mut crawl = spec("crawl", 0, QualityTier::Standard).paced_at_mbps(0.01);
        crawl.queue_depth = Some(4096);
        let schedule = vec![spec("healthy", 0, QualityTier::Standard), crawl];
        let config = ServiceConfig {
            queue_depth: 4096,
            ..tiny_config()
        };
        let virtual_clock: Arc<dyn Clock> = Arc::new(VirtualClock);
        let started = std::time::Instant::now();
        let (report, _) = fan_out_with(
            move |broker, inputs, primary, transport| {
                drive_async_service_plane_on(
                    &virtual_clock,
                    broker,
                    inputs,
                    primary,
                    transport,
                    Some(2),
                    &PlaneTelemetry::disabled(),
                )
            },
            schedule,
            config,
            4,
            1,
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "virtual-clock pacing must not sleep out the modeled delays"
        );
        for s in &report.sessions {
            assert_eq!(s.frames_completed, 4, "session {}: {:?}", s.name, s.errors);
            assert!(s.errors.is_empty(), "{:?}", s.errors);
        }
    }

    #[test]
    fn sharded_async_plane_matches_the_sharded_threaded_plane() {
        // Both sharded planes drive the identical ShardedBroker through the
        // identical seams, so events and the deterministic stats must agree
        // bit for bit — and each reports one lock entry per shard.
        fn shard_broker_of(broker: SessionBroker) -> ShardedBroker {
            let schedule: Vec<SessionSpec> = (0..broker.session_count()).map(|i| broker.spec(i).clone()).collect();
            ShardedBroker::new(broker.config().clone(), schedule)
        }
        let schedule: Vec<SessionSpec> = (0..6u32)
            .map(|vp| spec(&format!("s{vp}"), vp, QualityTier::Standard))
            .collect();
        let config = ServiceConfig {
            max_sessions: 8,
            link_capacity_units: 32,
            render_slots: 8,
            queue_depth: 64,
            shards: Some(2),
            ..ServiceConfig::default()
        };
        let (threaded, _) = fan_out_with(
            |broker, inputs, primary, transport| {
                super::super::fanout::drive_sharded_service_plane(shard_broker_of(broker), inputs, primary, transport)
            },
            schedule.clone(),
            config.clone(),
            4,
            2,
        );
        let (async_run, _) = fan_out_with(
            |broker, inputs, primary, transport| {
                drive_sharded_async_plane(shard_broker_of(broker), inputs, primary, transport, Some(2))
            },
            schedule,
            config,
            4,
            2,
        );
        assert_eq!(threaded.events, async_run.events, "identical broker decisions");
        let deterministic = |r: &ServiceRunReport| {
            let s = &r.stats;
            (
                s.sessions_offered,
                s.sessions_admitted,
                s.sessions_rejected,
                s.peak_live_sessions,
                s.render_requests,
                s.renders_performed,
                s.fanout_chunks,
                s.fanout_bytes,
            )
        };
        assert_eq!(deterministic(&threaded), deterministic(&async_run));
        assert_eq!(async_run.shard_locks.len(), 2);
        assert!(async_run.shard_locks.iter().all(|l| l.acquisitions > 0));
    }

    #[test]
    fn async_plane_and_threaded_plane_report_identical_deterministic_stats() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard).with_window(1, Some(3)),
            spec("c", 1, QualityTier::Interactive),
            spec("d", 2, QualityTier::Preview),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let (threaded, _) = fan_out_with(
            super::super::fanout::drive_service_plane,
            schedule.clone(),
            config.clone(),
            4,
            2,
        );
        let (async_run, _) = fan_out_with(drive_async_2, schedule, config, 4, 2);
        assert_eq!(threaded.events, async_run.events, "identical broker decisions");
        let deterministic = |r: &ServiceRunReport| {
            let s = &r.stats;
            (
                s.sessions_offered,
                s.sessions_admitted,
                s.sessions_rejected,
                s.sessions_evicted,
                s.peak_live_sessions,
                s.render_requests,
                s.renders_performed,
                s.flow_limited_sessions,
                s.fanout_chunks,
                s.fanout_bytes,
            )
        };
        assert_eq!(deterministic(&threaded), deterministic(&async_run));
    }
}
