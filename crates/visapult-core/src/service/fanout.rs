//! The thread-per-session fan-out plane, plus the plane plumbing shared with
//! [`super::asyncplane`].
//!
//! One OS thread per backend PE link consumes stripe chunks and (1) forwards
//! each chunk to the primary viewer's corresponding link — blocking, so the
//! paper's single-viewer backpressure semantics are preserved — and (2)
//! multicasts a zero-copy clone to every session live at the chunk's frame;
//! one OS thread per admitted session drains its queue through the session's
//! own pacer.  Simple and fine at exhibit scale, but threads grow with
//! sessions — the async plane exists for the 10k-session regime.
//!
//! Everything behavior-defining is factored into `pub(crate)` helpers both
//! planes call — `multicast_wave` (including the queue-full degradation
//! seam), `session_link`, `consume_chunk`, `surface_pending_frames`,
//! `fold_report` — so the two planes cannot drift apart in semantics, only
//! in scheduling.

use super::sharded::CountedLock;
use super::{ServiceRunReport, ServiceStats, SessionBroker, SessionDelivery, SessionEvent, SessionSpec, ShardedBroker};
use crate::pipeline::{Clock, WallClock};
use crate::transport::{
    striped_link, AssemblyEvent, FrameAssembler, FrameChunk, SharedDecode, StripeReceiver, StripeSender,
    TransportConfig, TransportError,
};
use crate::viewer::ViewerError;
use netlogger::metrics::{CounterHandle, HighWaterHandle, Histo, MetricsHub};
use netsim::{Bandwidth, StripePacer};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Plane telemetry plumbing (shared by both plane implementations)
// ---------------------------------------------------------------------------

/// Telemetry wiring threaded through a plane run: the metrics hub, the
/// frame-cadence snapshot knob, and the gate that makes each cadence boundary
/// snapshot exactly once no matter how many pumps observe it.
#[derive(Clone)]
pub(crate) struct PlaneTelemetry {
    pub(crate) hub: MetricsHub,
    snapshot_frames: u32,
    /// Highest frame boundary a periodic snapshot has been recorded for,
    /// shared by every pump: `fetch_max` elects exactly one snapshotter.
    snap_gate: Arc<AtomicU32>,
}

impl PlaneTelemetry {
    pub(crate) fn new(hub: MetricsHub, snapshot_frames: u32) -> PlaneTelemetry {
        PlaneTelemetry {
            hub,
            snapshot_frames,
            snap_gate: Arc::new(AtomicU32::new(0)),
        }
    }

    /// The no-op wiring for un-instrumented entry points.
    pub(crate) fn disabled() -> PlaneTelemetry {
        PlaneTelemetry::new(MetricsHub::disabled(), 0)
    }

    /// Record the `frame:<n>` time-series snapshot when `frame` crosses a
    /// cadence boundary no pump has snapshotted yet.
    pub(crate) fn observe_frame(&self, frame: u32) {
        if self.snapshot_frames == 0 || !self.hub.is_enabled() {
            return;
        }
        let boundary = frame - frame % self.snapshot_frames;
        if boundary > 0 && self.snap_gate.fetch_max(boundary, Ordering::Relaxed) < boundary {
            self.hub.record_snapshot(&format!("frame:{boundary}"));
        }
    }

    /// Pre-resolved per-pump handles for the wave fast path.
    pub(crate) fn meter(&self) -> WaveMeter {
        WaveMeter {
            live: self.hub.is_enabled(),
            wave_us: self.hub.histogram("fanout/wave_us"),
            waves: self.hub.counter("fanout/waves"),
            chunks: self.hub.counter("fanout/chunks"),
            endpoints_high: self.hub.high_water("fanout/endpoints"),
            inlet_high: self.hub.high_water("fanout/queue_depth"),
        }
    }
}

/// One pump's multicast instrumentation: when telemetry is off every record
/// is an inlined no-op and the `Instant` reads are skipped entirely, so the
/// disabled fast path is byte-for-byte the bare [`multicast_wave`] call.
pub(crate) struct WaveMeter {
    live: bool,
    wave_us: Histo,
    waves: CounterHandle,
    chunks: CounterHandle,
    endpoints_high: HighWaterHandle,
    inlet_high: HighWaterHandle,
}

impl WaveMeter {
    /// [`multicast_wave`], timed into the `fanout/wave_us` histogram when
    /// telemetry is live.
    pub(crate) fn multicast(
        &self,
        chunks: &[FrameChunk],
        endpoints: &[Arc<SessionEndpoint>],
        skips: &mut HashSet<(usize, u32)>,
        outcome: &mut PeOutcome,
    ) {
        if !self.live {
            multicast_wave(chunks, endpoints, skips, outcome);
            return;
        }
        let started = Instant::now();
        multicast_wave(chunks, endpoints, skips, outcome);
        self.wave_us.record(started.elapsed().as_micros() as u64);
        self.waves.add(1);
        self.chunks.add(chunks.len() as u64);
    }

    /// Sample the endpoint-snapshot size and a stripe-queue depth
    /// (frame-boundary cadence only — never the per-chunk path).
    pub(crate) fn observe_depths(&self, endpoints: usize, inlet_depth: usize) {
        if self.live {
            self.endpoints_high.observe(endpoints as u64);
            self.inlet_high.observe(inlet_depth as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Plumbing shared by both plane implementations
// ---------------------------------------------------------------------------

/// A session's fan-out endpoint, shared by every per-PE pump.
///
/// Endpoints are never removed mid-run: stripe interleaving means a chunk of
/// frame `f` can be observed after the broker has already processed frame
/// `f+1`, so membership is decided by the chunk's own frame against the
/// session's deterministic `[join, end)` window, not by when the chunk
/// happened to arrive.  `end_frame` is the leave or eviction frame the
/// broker decided (`u32::MAX` until then).
pub(crate) struct SessionEndpoint {
    pub(crate) session: usize,
    pub(crate) spec: SessionSpec,
    pub(crate) sender: StripeSender,
    pub(crate) end_frame: AtomicU32,
}

impl SessionEndpoint {
    pub(crate) fn new(session: usize, spec: SessionSpec, sender: StripeSender) -> Arc<SessionEndpoint> {
        Arc::new(SessionEndpoint {
            session,
            spec,
            sender,
            end_frame: AtomicU32::new(u32::MAX),
        })
    }

    pub(crate) fn wants(&self, frame: u32) -> bool {
        self.spec.live_at(frame) && frame < self.end_frame.load(Ordering::Relaxed)
    }

    /// Close the delivery window at the frame the broker decided; straggler
    /// chunks of earlier frames still belong to the session.
    pub(crate) fn close_at(&self, frame: u32) {
        self.end_frame.store(frame, Ordering::Relaxed);
    }
}

/// Build one admitted session's own bounded striped queue and pacer: its
/// stripes, the service queue depth, never paced at the queue (the pacer
/// lives in the consumer, so a slow WAN fills the queue and degrades only
/// this session).
pub(crate) fn session_link(
    spec: &SessionSpec,
    default_queue_depth: usize,
    transport: &TransportConfig,
) -> (StripeSender, StripeReceiver, Option<StripePacer>) {
    let link_config = TransportConfig {
        stripes: spec.stripes.max(1),
        chunk_bytes: transport.chunk_bytes,
        queue_depth: spec.queue_depth.unwrap_or(default_queue_depth),
        tuning: spec.tuning,
        pace_rate_mbps: None,
    };
    let (tx, rx) = striped_link(&link_config);
    let pacer = spec
        .pace_rate_mbps
        .map(|mbps| StripePacer::from_rate(Bandwidth::from_mbps(mbps), spec.stripes.max(1)));
    (tx, rx, pacer)
}

/// What one PE pump observed (whichever plane ran it).
pub(crate) struct PeOutcome {
    /// (chunks, bytes) emitted per frame by this PE (deterministic).
    pub(crate) per_frame: Vec<(u64, u64)>,
    pub(crate) delivered: u64,
    pub(crate) dropped: HashMap<usize, u64>,
    pub(crate) skipped: HashMap<usize, u64>,
}

impl PeOutcome {
    pub(crate) fn new() -> PeOutcome {
        PeOutcome {
            per_frame: Vec::new(),
            delivered: 0,
            dropped: HashMap::new(),
            skipped: HashMap::new(),
        }
    }

    /// Account one chunk of offered backend load.
    pub(crate) fn record_offered(&mut self, chunk: &FrameChunk) {
        let frame = chunk.frame as usize;
        if self.per_frame.len() <= frame {
            self.per_frame.resize(frame + 1, (0, 0));
        }
        self.per_frame[frame].0 += 1;
        self.per_frame[frame].1 += chunk.payload.len() as u64;
    }
}

/// Accumulates the chunks of one `(rank, frame)` so the multicast can hand a
/// session its whole wave contiguously.
///
/// Multicasting chunk-by-chunk makes every session consumer pay a full
/// wake → poll → park cycle *per chunk* — at 7 chunks a frame that's 7× the
/// scheduler traffic the frame needs, and on a small host it dominates the
/// fan-out cost.  Buffering a frame's chunks and bursting them per session
/// collapses that to one wake per wave: the first push fires the queue's
/// data hook, the rest land while the consumer is still scheduled.  Per
/// session the chunk sequence (and thus every stat and degradation decision)
/// is exactly what the chunk-by-chunk path produced — only cross-session
/// interleaving changes, which nothing observes.
pub(crate) struct WaveBuffer {
    key: Option<(u32, u32)>,
    chunks: Vec<FrameChunk>,
}

/// Chunks buffered before a wave flushes even if its `total` never arrives —
/// a corrupt total must not turn the buffer into an unbounded sink.
const WAVE_BUFFER_CAP: usize = 4096;

impl WaveBuffer {
    pub(crate) fn new() -> Self {
        WaveBuffer {
            key: None,
            chunks: Vec::new(),
        }
    }

    /// True when `chunk` belongs to a different `(rank, frame)` than the
    /// buffered wave — the caller must flush *before* absorbing it (and
    /// before refreshing any endpoint snapshot keyed to the new frame).
    pub(crate) fn must_flush_before(&self, chunk: &FrameChunk) -> bool {
        self.key.is_some_and(|k| k != (chunk.rank, chunk.frame))
    }

    /// Absorb one chunk; returns `true` when the wave is complete (or the
    /// safety cap is hit) and should be flushed now.
    pub(crate) fn push(&mut self, chunk: FrameChunk) -> bool {
        let total = chunk.total as usize;
        self.key = Some((chunk.rank, chunk.frame));
        self.chunks.push(chunk);
        self.chunks.len() >= total.clamp(1, WAVE_BUFFER_CAP)
    }

    /// Take whatever is buffered (possibly an incomplete trailing wave).
    pub(crate) fn take(&mut self) -> Vec<FrameChunk> {
        self.key = None;
        std::mem::take(&mut self.chunks)
    }
}

/// Multicast one buffered wave, session-major: every endpoint receives its
/// whole run of chunks back to back.
///
/// This is *the* degradation seam, shared verbatim by both planes: a full
/// session queue degrades that session for the rest of this (rank, frame) —
/// it keeps its partial composite and surfaces a typed `MissingFrame` — while
/// the farm and every other session keep moving.  Per session this performs
/// the same sends, in the same order, with the same skip/degradation
/// bookkeeping as multicasting each chunk the moment it arrived — the
/// counters are indistinguishable; only the cross-session interleaving
/// differs.
pub(crate) fn multicast_wave(
    chunks: &[FrameChunk],
    endpoints: &[Arc<SessionEndpoint>],
    skips: &mut HashSet<(usize, u32)>,
    outcome: &mut PeOutcome,
) {
    let Some(first) = chunks.first() else { return };
    let frame = first.frame;
    for ep in endpoints {
        // Membership is decided by the chunks' own frame (a deterministic
        // window), not by when the wave happened to flush.
        if !ep.wants(frame) {
            continue;
        }
        let stripes = ep.spec.stripes.max(1);
        let mut skipped = !skips.is_empty() && skips.contains(&(ep.session, frame));
        for chunk in chunks {
            if skipped {
                *outcome.dropped.entry(ep.session).or_default() += 1;
                continue;
            }
            // Zero-copy multicast: the payload Bytes clone is a refcount
            // bump; re-stripe onto the session's own queue width.
            let fanned = FrameChunk {
                stripe: chunk.seq % stripes,
                ..chunk.clone()
            };
            match ep.sender.try_send_raw_chunk(fanned) {
                Ok(true) => outcome.delivered += 1,
                Ok(false) => {
                    skips.insert((ep.session, frame));
                    *outcome.skipped.entry(ep.session).or_default() += 1;
                    *outcome.dropped.entry(ep.session).or_default() += 1;
                    skipped = true;
                }
                Err(TransportError::Closed) | Err(TransportError::Corrupt(_)) => {
                    *outcome.dropped.entry(ep.session).or_default() += 1;
                }
            }
        }
    }
}

/// Fold one delivered chunk into a session's delivery: reassemble, and record
/// every anomaly as the typed [`ViewerError`] the viewer itself would report.
pub(crate) fn consume_chunk(delivery: &mut SessionDelivery, assembler: &mut FrameAssembler, chunk: FrameChunk) {
    delivery.chunks_delivered += 1;
    delivery.bytes_delivered += chunk.payload.len() as u64;
    let rank = chunk.rank;
    match assembler.accept(chunk) {
        Ok(AssemblyEvent::Complete { .. }) => delivery.frames_completed += 1,
        Ok(AssemblyEvent::Progress { .. }) => {}
        Ok(AssemblyEvent::Late { rank, frame, stripe }) => {
            delivery.errors.push(ViewerError::LateStripe { rank, frame, stripe });
        }
        Err(e) => delivery.errors.push(ViewerError::Corrupt {
            rank,
            detail: e.to_string(),
        }),
    }
}

/// Frames the plane started but degraded (or the campaign cut off) are
/// surfaced exactly as the viewer surfaces them: typed, never silent.
pub(crate) fn surface_pending_frames(assembler: &FrameAssembler, delivery: &mut SessionDelivery) {
    for (rank, frame, received, total) in assembler.pending_frames() {
        delivery.errors.push(ViewerError::MissingFrame {
            rank,
            frame,
            received_chunks: received,
            total_chunks: total,
        });
    }
}

/// An empty delivery record for `spec`, filled in by the consumer.
pub(crate) fn empty_delivery(spec: &SessionSpec) -> SessionDelivery {
    SessionDelivery {
        name: spec.name.clone(),
        viewpoint: spec.viewpoint,
        tier: spec.tier,
        frames_completed: 0,
        frames_skipped: 0,
        chunks_delivered: 0,
        chunks_dropped: 0,
        bytes_delivered: 0,
        errors: Vec::new(),
    }
}

/// The broker shapes [`fold_report`] can finalize: the plain
/// [`SessionBroker`] and the sharded composite present identical folding
/// surfaces, so both planes (and both broker shapes) assemble reports through
/// one code path.
pub(crate) trait FoldableBroker {
    fn fold_fanout_load(&mut self, per_frame: &[(u64, u64)]);
    fn folded_stats(&self) -> ServiceStats;
    fn folded_events(&self) -> Vec<(u32, SessionEvent)>;
}

impl FoldableBroker for SessionBroker {
    fn fold_fanout_load(&mut self, per_frame: &[(u64, u64)]) {
        SessionBroker::fold_fanout_load(self, per_frame);
    }

    fn folded_stats(&self) -> ServiceStats {
        self.stats().clone()
    }

    fn folded_events(&self) -> Vec<(u32, SessionEvent)> {
        self.events().to_vec()
    }
}

impl FoldableBroker for ShardedBroker {
    fn fold_fanout_load(&mut self, per_frame: &[(u64, u64)]) {
        ShardedBroker::fold_fanout_load(self, per_frame);
    }

    fn folded_stats(&self) -> ServiceStats {
        self.stats()
    }

    fn folded_events(&self) -> Vec<(u32, SessionEvent)> {
        self.events()
    }
}

/// Fold the deterministic offered load and the timing-dependent delivery
/// outcomes into the final report.  `broker` must already be finished; both
/// planes end through this single function so their reports are assembled
/// identically.
pub(crate) fn fold_report<B: FoldableBroker>(
    mut broker: B,
    outcomes: &[PeOutcome],
    mut deliveries: Vec<(usize, SessionDelivery)>,
) -> ServiceRunReport {
    deliveries.sort_by_key(|&(session, _)| session);
    let frames = outcomes.iter().map(|o| o.per_frame.len()).max().unwrap_or(0);
    let mut per_frame = vec![(0u64, 0u64); frames];
    for o in outcomes {
        for (f, &(chunks, bytes)) in o.per_frame.iter().enumerate() {
            per_frame[f].0 += chunks;
            per_frame[f].1 += bytes;
        }
    }
    broker.fold_fanout_load(&per_frame);
    let events = broker.folded_events();
    let mut stats = broker.folded_stats();
    for o in outcomes {
        stats.chunks_delivered += o.delivered;
        stats.chunks_dropped += o.dropped.values().sum::<u64>();
    }
    let mut sessions = Vec::with_capacity(deliveries.len());
    for (session, mut delivery) in deliveries {
        for o in outcomes {
            delivery.chunks_dropped += o.dropped.get(&session).copied().unwrap_or(0);
            delivery.frames_skipped += o.skipped.get(&session).copied().unwrap_or(0);
        }
        stats.frames_completed += delivery.frames_completed;
        stats.frames_skipped += delivery.frames_skipped;
        sessions.push(delivery);
    }
    ServiceRunReport {
        stats,
        sessions,
        events,
        shard_locks: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// The threaded plane
// ---------------------------------------------------------------------------

struct PlaneState {
    broker: SessionBroker,
    endpoints: Vec<Arc<SessionEndpoint>>,
    /// Position in `endpoints` per global session index.  Endpoints are
    /// append-only, so the map only grows; it turns the Left/Evicted close
    /// into an O(1) lookup instead of an O(live) scan.
    endpoint_of: HashMap<usize, usize>,
    consumers: Vec<(usize, std::thread::JoinHandle<SessionDelivery>)>,
    /// Global schedule index per local broker index (empty = identity, the
    /// unsharded plane).  Endpoints, consumers and deliveries are keyed
    /// globally so shard outputs merge without collisions.
    globals: Vec<usize>,
    /// Decode memo shared by every consumer this shard spawns: sessions all
    /// receive the same multicast chunks, so each frame decodes once.
    decode: Arc<SharedDecode>,
}

impl PlaneState {
    fn global(&self, session: usize) -> usize {
        self.globals.get(session).copied().unwrap_or(session)
    }

    /// Advance the broker to `frame`, materializing queues and consumers for
    /// admissions and closing the delivery window for leaves/evictions.
    fn observe_frame(&mut self, frame: u32, transport: &TransportConfig, clock: &Arc<dyn Clock>) {
        if frame < self.broker.next_frame() {
            return;
        }
        let before = self.broker.events().len();
        self.broker.advance_to(frame);
        let new: Vec<(u32, SessionEvent)> = self.broker.events()[before..].to_vec();
        for (at, event) in new {
            self.apply(at, event, transport, clock);
        }
    }

    fn apply(&mut self, at: u32, event: SessionEvent, transport: &TransportConfig, clock: &Arc<dyn Clock>) {
        match event {
            SessionEvent::Admitted { session } => {
                let spec = self.broker.spec(session).clone();
                let global = self.global(session);
                let (tx, rx, pacer) = session_link(&spec, self.broker.config().queue_depth, transport);
                let consumer_spec = spec.clone();
                let consumer_clock = Arc::clone(clock);
                let consumer_decode = Arc::clone(&self.decode);
                let handle = std::thread::Builder::new()
                    .name(format!("visapult-session-{global}"))
                    .spawn(move || run_session_consumer(rx, &consumer_spec, pacer, &consumer_clock, consumer_decode))
                    .expect("spawn session consumer");
                self.consumers.push((global, handle));
                self.endpoint_of.insert(global, self.endpoints.len());
                self.endpoints.push(SessionEndpoint::new(global, spec, tx));
            }
            SessionEvent::Left { session } | SessionEvent::Evicted { session } => {
                let global = self.global(session);
                if let Some(&i) = self.endpoint_of.get(&global) {
                    self.endpoints[i].close_at(at);
                }
            }
            SessionEvent::Rejected { .. } => {}
        }
    }
}

/// Drain one session's queue: pace each chunk through the session's own
/// modeled WAN — waiting on the [`Clock`], so the same body is drivable by a
/// virtual clock without sleeping — reassemble frames, and record every
/// anomaly as a typed [`ViewerError`].
fn run_session_consumer(
    mut rx: StripeReceiver,
    spec: &SessionSpec,
    mut pacer: Option<StripePacer>,
    clock: &Arc<dyn Clock>,
    decode: Arc<SharedDecode>,
) -> SessionDelivery {
    let mut delivery = empty_delivery(spec);
    let mut assembler = FrameAssembler::with_shared_decode(decode);
    // Runs until every plane endpoint is dropped: the session is over.
    while let Ok(chunk) = rx.recv_chunk() {
        if let Some(p) = &mut pacer {
            // The session's own WAN, felt for real: drain no faster than the
            // modeled last mile, which backpressures only this queue.
            let delay = p.consume(chunk.stripe as usize, chunk.payload.len() as u64);
            if !delay.is_zero() {
                let deadline = clock.monotonic_now() + delay;
                clock.pace_until(deadline);
            }
        }
        consume_chunk(&mut delivery, &mut assembler, chunk);
    }
    surface_pending_frames(&assembler, &mut delivery);
    delivery
}

/// The threaded fan-out plane on the wall clock (the production entry).
pub(crate) fn drive_service_plane(
    broker: SessionBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
) -> ServiceRunReport {
    drive_service_plane_metered(broker, inputs, primary, transport, &PlaneTelemetry::disabled())
}

/// The threaded plane on the wall clock with telemetry wiring — what the
/// pipeline (and the benches, through [`crate::pipeline::FanoutPlane`])
/// actually call.
pub(crate) fn drive_service_plane_metered(
    broker: SessionBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    telemetry: &PlaneTelemetry,
) -> ServiceRunReport {
    drive_service_plane_on(
        &(Arc::new(WallClock) as Arc<dyn Clock>),
        broker,
        inputs,
        primary,
        transport,
        telemetry,
    )
}

/// The threaded fan-out plane implementation, on an explicit clock.
///
/// Returns once the backend links close and every consumer has drained.
pub(crate) fn drive_service_plane_on(
    clock: &Arc<dyn Clock>,
    broker: SessionBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    telemetry: &PlaneTelemetry,
) -> ServiceRunReport {
    let shard = Arc::new(CountedLock::new(PlaneState {
        broker,
        endpoints: Vec::new(),
        endpoint_of: HashMap::new(),
        consumers: Vec::new(),
        globals: Vec::new(),
        decode: Arc::new(SharedDecode::new()),
    }));
    shard.lockdep_label("fanout-plane-shard");
    let outcomes = run_plane_pumps(
        clock,
        std::slice::from_ref(&shard),
        inputs,
        primary,
        transport,
        telemetry,
    );
    // Campaign over: every remaining session leaves, queues disconnect,
    // consumers drain and report.
    let (broker, deliveries) = finish_shard(shard);
    fold_report(broker, &outcomes, deliveries)
}

/// The sharded threaded plane on the wall clock.
#[cfg_attr(not(test), allow(dead_code))] // production callers go through the metered twin
pub(crate) fn drive_sharded_service_plane(
    broker: ShardedBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
) -> ServiceRunReport {
    drive_sharded_service_plane_metered(broker, inputs, primary, transport, &PlaneTelemetry::disabled())
}

/// The sharded threaded plane on the wall clock with telemetry wiring.
pub(crate) fn drive_sharded_service_plane_metered(
    broker: ShardedBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    telemetry: &PlaneTelemetry,
) -> ServiceRunReport {
    drive_sharded_service_plane_on(
        &(Arc::new(WallClock) as Arc<dyn Clock>),
        broker,
        inputs,
        primary,
        transport,
        telemetry,
    )
}

/// The sharded threaded plane: each broker shard lives behind its own
/// [`CountedLock`], pumps advance every shard at frame boundaries and
/// multicast over the concatenated endpoint snapshots, and the shard reports
/// fold back into one [`ServiceRunReport`] (with per-shard lock counters).
pub(crate) fn drive_sharded_service_plane_on(
    clock: &Arc<dyn Clock>,
    broker: ShardedBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    telemetry: &PlaneTelemetry,
) -> ServiceRunReport {
    let (config, brokers, globals) = broker.into_parts();
    // One memo for the whole plane: shards receive the same multicast
    // frames, so a frame decodes once no matter how the floor is sharded.
    let decode = Arc::new(SharedDecode::new());
    let shards: Vec<Arc<CountedLock<PlaneState>>> = brokers
        .into_iter()
        .zip(&globals)
        .enumerate()
        .map(|(i, (broker, shard_globals))| {
            let lock = Arc::new(CountedLock::new(PlaneState {
                broker,
                endpoints: Vec::new(),
                endpoint_of: HashMap::new(),
                consumers: Vec::new(),
                globals: shard_globals.clone(),
                decode: Arc::clone(&decode),
            }));
            lock.lockdep_label(&format!("fanout-shard-{i}"));
            lock
        })
        .collect();
    let outcomes = run_plane_pumps(clock, &shards, inputs, primary, transport, telemetry);
    let mut shard_locks = Vec::with_capacity(shards.len());
    let mut brokers = Vec::with_capacity(shards.len());
    let mut deliveries = Vec::new();
    for (i, shard) in shards.into_iter().enumerate() {
        shard_locks.push(shard.stats(i));
        let (broker, shard_deliveries) = finish_shard(shard);
        brokers.push(broker);
        deliveries.extend(shard_deliveries);
    }
    let mut report = fold_report(
        ShardedBroker::from_parts(config, brokers, globals),
        &outcomes,
        deliveries,
    );
    report.shard_locks = shard_locks;
    report
}

/// Tear one shard down after every pump has exited: remaining sessions
/// leave, queues disconnect, consumers drain and report (keyed globally).
fn finish_shard(shard: Arc<CountedLock<PlaneState>>) -> (SessionBroker, Vec<(usize, SessionDelivery)>) {
    let mut st = match Arc::try_unwrap(shard) {
        Ok(lock) => lock.into_inner(),
        Err(_) => unreachable!("plane threads have joined"),
    };
    st.broker.finish();
    st.endpoints.clear();
    let deliveries = st
        .consumers
        .into_iter()
        .map(|(session, handle)| (session, handle.join().expect("session consumer")))
        .collect();
    (st.broker, deliveries)
}

/// One pump thread per backend PE link, over one *or many* broker shards:
/// frame-boundary churn advances every shard, and the multicast fast path
/// runs over the concatenated endpoint snapshot — so the unsharded plane is
/// exactly the one-shard instance of this loop.
fn run_plane_pumps(
    clock: &Arc<dyn Clock>,
    shards: &[Arc<CountedLock<PlaneState>>],
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
    telemetry: &PlaneTelemetry,
) -> Vec<PeOutcome> {
    assert!(
        primary.is_empty() || primary.len() == inputs.len(),
        "primary forwarding needs one link per PE"
    );
    // Frame 0 joins happen before any chunk moves.
    for shard in shards {
        shard.lock().observe_frame(0, transport, clock);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .into_iter()
            .zip(primary.into_iter().map(Some).chain(std::iter::repeat_with(|| None)))
            .map(|(mut rx, mut primary_tx)| {
                let shards = shards.to_vec();
                let transport = transport.clone();
                let clock = Arc::clone(clock);
                let telemetry = telemetry.clone();
                scope.spawn(move || {
                    let meter = telemetry.meter();
                    let mut outcome = PeOutcome::new();
                    // (session, frame) pairs degraded on this PE's link
                    // (session indices are global, so shard sets are
                    // disjoint).
                    let mut skips: HashSet<(usize, u32)> = HashSet::new();
                    // Endpoint snapshot, refreshed only when this thread
                    // observes a new high-water frame.  Endpoints are
                    // append-only and sessions only join at frame
                    // boundaries (admissions for frame f complete under the
                    // shard lock before any thread can snapshot at f), so a
                    // snapshot taken at frame f is a superset of the
                    // endpoints any chunk of frame ≤ f can belong to —
                    // `wants(frame)` does the per-chunk filtering.  This
                    // keeps the locks and the Vec clones off the per-chunk
                    // fast path.
                    let mut endpoints: Vec<Arc<SessionEndpoint>> = Vec::new();
                    let mut snapshot_frame: Option<u32> = None;
                    let mut wave = WaveBuffer::new();
                    while let Ok(chunk) = rx.recv_chunk() {
                        let frame = chunk.frame;
                        outcome.record_offered(&chunk);
                        // A chunk for a new (rank, frame) closes the
                        // buffered wave: flush it against the snapshot it
                        // belongs to, *before* churn refreshes endpoints.
                        if wave.must_flush_before(&chunk) {
                            meter.multicast(&wave.take(), &endpoints, &mut skips, &mut outcome);
                        }
                        // Drive churn from the frame counter, then refresh
                        // the endpoint snapshot (Arc clones; no shard lock
                        // is held across sends, and shards are locked one
                        // at a time in shard order).
                        if snapshot_frame.map(|f| frame > f).unwrap_or(true) {
                            endpoints.clear();
                            for shard in &shards {
                                let mut st = shard.lock();
                                st.observe_frame(frame, &transport, &clock);
                                endpoints.extend(st.endpoints.iter().cloned());
                            }
                            snapshot_frame = Some(frame);
                            meter.observe_depths(endpoints.len(), rx.queued_chunks());
                            telemetry.observe_frame(frame);
                        }
                        if let Some(tx) = &primary_tx {
                            if tx.send_raw_chunk(chunk.clone()).is_err() {
                                // The viewer got everything it expected and
                                // hung up; keep serving the sessions.
                                primary_tx = None;
                            }
                        }
                        if wave.push(chunk) {
                            meter.multicast(&wave.take(), &endpoints, &mut skips, &mut outcome);
                        }
                    }
                    // The link can close mid-frame; whatever the trailing
                    // wave collected still belongs to the sessions.
                    meter.multicast(&wave.take(), &endpoints, &mut skips, &mut outcome);
                    outcome
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("plane thread")).collect()
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::pipeline::VirtualClock;
    use crate::service::{QualityTier, ServiceConfig};
    use crate::test_support::sample_frame;
    use crate::transport::{drain_frames, plan_chunks};
    use std::time::Duration;

    fn spec(name: &str, viewpoint: u32, tier: QualityTier) -> SessionSpec {
        SessionSpec::new(name, viewpoint, tier)
    }

    fn tiny_config() -> ServiceConfig {
        ServiceConfig {
            max_sessions: 4,
            link_capacity_units: 8,
            render_slots: 2,
            queue_depth: 8,
            ..ServiceConfig::default()
        }
    }

    /// Drive a plane implementation end to end over a synthetic backend.
    /// Shared with the async plane's tests so both run the same campaigns.
    pub(crate) fn fan_out_with(
        drive: impl FnOnce(SessionBroker, Vec<StripeReceiver>, Vec<StripeSender>, &TransportConfig) -> ServiceRunReport
            + Send,
        schedule: Vec<SessionSpec>,
        config: ServiceConfig,
        frames: u32,
        pes: usize,
    ) -> (ServiceRunReport, Vec<crate::protocol::FramePayload>) {
        let transport = TransportConfig::default().with_stripes(2).with_chunk_bytes(256);
        let broker = SessionBroker::new(config, schedule);
        let mut backend_txs = Vec::new();
        let mut backend_rxs = Vec::new();
        let mut primary_txs = Vec::new();
        let mut primary_rxs = Vec::new();
        for _ in 0..pes {
            let (tx, rx) = striped_link(&transport);
            backend_txs.push(tx);
            backend_rxs.push(rx);
            let (tx, rx) = striped_link(&transport);
            primary_txs.push(tx);
            primary_rxs.push(rx);
        }
        let (report, primary_frames) = std::thread::scope(|scope| {
            let plane = {
                let transport = transport.clone();
                scope.spawn(move || drive(broker, backend_rxs, primary_txs, &transport))
            };
            let drains: Vec<_> = primary_rxs
                .into_iter()
                .map(|mut rx| scope.spawn(move || drain_frames(&mut rx).unwrap()))
                .collect();
            for f in 0..frames {
                for (pe, tx) in backend_txs.iter().enumerate() {
                    tx.send_frame(&sample_frame(pe as u32, f, 16)).unwrap();
                }
            }
            drop(backend_txs);
            let report = plane.join().unwrap();
            let mut primary_frames = Vec::new();
            for d in drains {
                primary_frames.extend(d.join().unwrap());
            }
            (report, primary_frames)
        });
        (report, primary_frames)
    }

    fn fan_out(
        schedule: Vec<SessionSpec>,
        config: ServiceConfig,
        frames: u32,
        pes: usize,
    ) -> (ServiceRunReport, Vec<crate::protocol::FramePayload>) {
        fan_out_with(drive_service_plane, schedule, config, frames, pes)
    }

    #[test]
    fn plane_multicasts_every_frame_to_every_session_and_the_primary() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard),
            spec("c", 1, QualityTier::Standard),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let (report, primary_frames) = fan_out(schedule, config, 3, 2);
        // The primary viewer path got every frame untouched.
        assert_eq!(primary_frames.len(), 6);
        // Every session assembled every (rank, frame): 3 sessions x 2 PEs x 3.
        assert_eq!(report.sessions.len(), 3);
        for s in &report.sessions {
            assert_eq!(s.frames_completed, 6, "session {}: {:?}", s.name, s.errors);
            assert_eq!(s.frames_skipped, 0);
            assert!(s.errors.is_empty(), "{:?}", s.errors);
        }
        assert_eq!(report.stats.frames_completed, 18);
        // Offered fan-out load: every chunk x 3 live sessions, delivered in
        // full on these deep queues.
        assert_eq!(report.stats.fanout_chunks, report.stats.chunks_delivered);
        assert_eq!(report.stats.chunks_dropped, 0);
        // Shared renders: 3 frames x 3 sessions requested, 2 viewpoints each
        // frame actually rendered.
        assert_eq!(report.stats.render_requests, 9);
        assert_eq!(report.stats.renders_performed, 6);
    }

    #[test]
    fn slow_session_is_degraded_without_stalling_the_healthy_one() {
        // `slow` drains a single-stripe 16-chunk queue through a
        // dial-up-grade pacer; `healthy` has four stripes (4 x 16 = 64
        // slots, more than the whole campaign's 42 chunks, so it can never
        // overflow).  The plane must skip frames for `slow` (it keeps
        // partial composites) while `healthy` and the primary receive
        // everything.
        let mut slow = spec("slow", 0, QualityTier::Standard).paced_at_mbps(0.2);
        slow.stripes = 1;
        let schedule = vec![spec("healthy", 0, QualityTier::Standard), slow];
        let config = ServiceConfig {
            queue_depth: 16,
            ..tiny_config()
        };
        let (report, primary_frames) = fan_out(schedule, config, 6, 1);
        assert_eq!(primary_frames.len(), 6);
        let healthy = report.sessions.iter().find(|s| s.name == "healthy").unwrap();
        let slow = report.sessions.iter().find(|s| s.name == "slow").unwrap();
        assert_eq!(healthy.frames_completed, 6);
        assert!(healthy.errors.is_empty(), "{:?}", healthy.errors);
        assert!(
            slow.frames_skipped > 0,
            "the 1-chunk queue behind a 0.2 Mbps pacer must overflow: {slow:?}"
        );
        // Degraded frames surface as typed MissingFrame partials, not
        // silence.
        assert!(slow
            .errors
            .iter()
            .all(|e| matches!(e, ViewerError::MissingFrame { .. })));
        assert_eq!(
            report.stats.frames_skipped, slow.frames_skipped,
            "only the slow session was degraded"
        );
        assert!(report.stats.chunks_dropped > 0);
    }

    #[test]
    fn sessions_joining_and_leaving_mid_run_receive_only_their_window() {
        let schedule = vec![
            spec("whole", 0, QualityTier::Standard),
            spec("window", 0, QualityTier::Standard).with_window(1, Some(3)),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let (report, _) = fan_out(schedule, config, 4, 1);
        let whole = report.sessions.iter().find(|s| s.name == "whole").unwrap();
        let window = report.sessions.iter().find(|s| s.name == "window").unwrap();
        assert_eq!(whole.frames_completed, 4);
        // Frames 1 and 2 only.
        assert_eq!(window.frames_completed, 2, "{window:?}");
        // Offered load reflects the window: frames 0 and 3 fan out to one
        // session, frames 1 and 2 to two.
        let per_frame_chunks = report.stats.fanout_chunks;
        let plan = plan_chunks(
            crate::protocol::FrameSegments::encode(&sample_frame(0, 0, 16)).lens(),
            256,
            2,
        )
        .len() as u64;
        assert_eq!(per_frame_chunks, plan * (1 + 2 + 2 + 1));
    }

    #[test]
    fn sharded_plane_serves_every_session_and_reports_per_shard_locks() {
        // Two shards over four viewpoints: capacity shares (4 sessions, 16
        // units, 4 slots per shard) hold the whole schedule even if the hash
        // lands everyone on one shard, so all four sessions assemble every
        // (rank, frame), and the deterministic halves replay bit-identically
        // against a pure ShardedBroker run.
        let schedule: Vec<SessionSpec> = (0..4u32)
            .map(|vp| spec(&format!("s{vp}"), vp, QualityTier::Standard))
            .collect();
        let config = ServiceConfig {
            max_sessions: 8,
            link_capacity_units: 32,
            render_slots: 8,
            queue_depth: 64,
            shards: Some(2),
            ..ServiceConfig::default()
        };
        let (report, primary_frames) = fan_out_with(
            |broker, inputs, primary, transport| {
                let schedule: Vec<SessionSpec> = (0..broker.session_count()).map(|i| broker.spec(i).clone()).collect();
                let sharded = ShardedBroker::new(broker.config().clone(), schedule);
                drive_sharded_service_plane(sharded, inputs, primary, transport)
            },
            schedule.clone(),
            config.clone(),
            3,
            2,
        );
        assert_eq!(primary_frames.len(), 6);
        assert_eq!(report.sessions.len(), 4);
        for s in &report.sessions {
            assert_eq!(s.frames_completed, 6, "session {}: {:?}", s.name, s.errors);
            assert!(s.errors.is_empty(), "{:?}", s.errors);
        }
        // Deliveries come back in global schedule order despite sharding.
        let names: Vec<&str> = report.sessions.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["s0", "s1", "s2", "s3"]);
        // Per-shard lock telemetry: one entry per shard, every shard locked
        // at least for the frame-0 observe.
        assert_eq!(report.shard_locks.len(), 2);
        for (i, l) in report.shard_locks.iter().enumerate() {
            assert_eq!(l.shard, i);
            assert!(l.acquisitions > 0, "{l:?}");
        }
        // The deterministic halves match a pure broker replay.
        let mut replay = ShardedBroker::new(config, schedule);
        replay.advance_to(2);
        replay.finish();
        assert_eq!(report.events, replay.events());
        let replayed = replay.stats();
        assert_eq!(report.stats.sessions_admitted, replayed.sessions_admitted);
        assert_eq!(report.stats.sessions_rejected, replayed.sessions_rejected);
        assert_eq!(report.stats.renders_performed, replayed.renders_performed);
        assert_eq!(report.stats.peak_live_sessions, replayed.peak_live_sessions);
    }

    #[test]
    fn multicast_is_zero_copy() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard),
            spec("c", 1, QualityTier::Standard),
        ];
        let config = ServiceConfig {
            queue_depth: 64,
            ..tiny_config()
        };
        let before = bytes::deep_copy_count();
        let (report, _) = fan_out(schedule, config, 2, 1);
        assert_eq!(
            bytes::deep_copy_count() - before,
            0,
            "fan-out must multicast by refcount, not memcpy"
        );
        assert_eq!(report.stats.frames_completed, 6);
    }

    #[test]
    fn paced_consumers_on_a_virtual_clock_never_sleep() {
        // A 0.01 Mbps pacer over this campaign would sleep for minutes of
        // wall time; on the virtual clock the identical consumer body must
        // finish immediately with the identical deterministic stats — pacing
        // goes through the Clock seam, not `thread::sleep`.
        let mut crawl = spec("crawl", 0, QualityTier::Standard).paced_at_mbps(0.01);
        // Deep enough that nothing overflows: delivery is deterministic.
        crawl.queue_depth = Some(4096);
        let schedule = vec![spec("healthy", 0, QualityTier::Standard), crawl];
        let config = ServiceConfig {
            queue_depth: 4096,
            ..tiny_config()
        };
        let virtual_clock: Arc<dyn Clock> = Arc::new(VirtualClock);
        let started = std::time::Instant::now();
        let (report, _) = fan_out_with(
            move |broker, inputs, primary, transport| {
                drive_service_plane_on(
                    &virtual_clock,
                    broker,
                    inputs,
                    primary,
                    transport,
                    &PlaneTelemetry::disabled(),
                )
            },
            schedule,
            config,
            4,
            1,
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "virtual-clock pacing must not sleep out the modeled delays"
        );
        for s in &report.sessions {
            assert_eq!(s.frames_completed, 4, "session {}: {:?}", s.name, s.errors);
            assert!(s.errors.is_empty(), "{:?}", s.errors);
        }
    }
}
