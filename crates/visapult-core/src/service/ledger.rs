//! The indexed admission ledger: incrementally-maintained broker state.
//!
//! The original [`super::SessionBroker`] answered every admission question by
//! scanning its `live` vector — re-summing all live tier costs and rebuilding
//! a viewpoint `HashSet` per join, and `retain`-ing the vector per eviction
//! or leave.  A frame-0 burst of N joins was therefore O(N²), which the PR 7
//! shard sweep measured as the dominant cost at 10k sessions (`contended=0`
//! everywhere: the lock was never the problem, the scan was).
//!
//! [`AdmissionLedger`] replaces the scans with indexed state kept exact on
//! every insert/remove:
//!
//! * `units_in_use` — a running accumulator of live tier costs (the
//!   link-capacity check becomes one comparison);
//! * `viewpoint_refs` — live sessions per viewpoint, so the shared-render
//!   accounting (distinct live viewpoints, and each backend's distinct
//!   charge under viewpoint-hash placement) is O(1) per join/leave;
//! * `by_seq` — the live set keyed by a monotonic admission sequence, so
//!   admission order survives O(log N) removals (the order the scan broker
//!   got for free from its vector);
//! * `by_priority` — per-tier copies of the same index, so the greedy
//!   eviction cascade walks its exact victim order (lowest tier first, most
//!   recently admitted first within a tier) without scanning `live`.
//!
//! A [`Trial`] overlays what-if removals on the ledger without mutating it,
//! which is how the cascade and its spare-the-non-load-bearing-victims
//! minimization pass replay the scan broker's decisions bit for bit: every
//! feasibility probe the old code answered by scanning a candidate vector is
//! answered here from the same numbers, maintained incrementally.  The
//! retained scan implementation (`super::oracle`, test-only) pins that
//! equivalence decision-for-decision.

use std::collections::{BTreeMap, HashMap};

/// Per-session admission facts, precomputed once so the hot path never
/// re-derives them from the spec.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SessionProfile {
    /// Link-capacity units the session consumes while live.
    pub cost: u64,
    /// Render key (shared-render refcount bucket).
    pub viewpoint: u32,
    /// Eviction priority of the session's tier (0 = first to evict).
    pub priority: u8,
    /// Owning render backend under viewpoint-hash placement (0 when the
    /// ledger is not tracking per-backend charges).
    pub backend: usize,
}

/// A read-only snapshot of admission capacity: either the live ledger itself
/// or a [`Trial`] overlay with victims hypothetically removed.  The broker's
/// constraint checks are written against this view, so the fast path and the
/// eviction cascade share one implementation.
pub(crate) trait CapacityView {
    /// Live sessions in the view.
    fn live_count(&self) -> usize;
    /// Σ tier cost over the view's live sessions.
    fn units_in_use(&self) -> u64;
    /// Distinct viewpoints held by the view's live sessions.
    fn distinct_viewpoints(&self) -> u32;
    /// True when at least one live session in the view holds `viewpoint`.
    fn holds_viewpoint(&self, viewpoint: u32) -> bool;
    /// Distinct viewpoints the view charges to render `backend`.
    fn backend_distinct(&self, backend: usize) -> u32;
}

/// The incrementally-maintained live-session index.
#[derive(Debug)]
pub(crate) struct AdmissionLedger {
    /// Precomputed admission facts per schedule index.
    profiles: Vec<SessionProfile>,
    /// Live sessions keyed by admission sequence (ascending = admission
    /// order, exactly the order the scan broker's `live` vector kept).
    by_seq: BTreeMap<u64, usize>,
    /// Admission sequence of each live session (`None` when not live).
    seq_of: Vec<Option<u64>>,
    /// Next admission sequence; monotonic across the whole run so recency
    /// comparisons never wrap or collide.
    next_seq: u64,
    /// Running Σ tier cost over the live set.
    units_in_use: u64,
    /// Live sessions per viewpoint; `len()` is the distinct-viewpoint count.
    viewpoint_refs: HashMap<u32, u32>,
    /// Distinct live viewpoints charged to each render backend.  Empty unless
    /// the config runs several backends under viewpoint-hash placement.
    per_backend: Vec<u32>,
    /// The live set bucketed by tier priority, same keys as `by_seq`: the
    /// eviction cascade's candidate index.
    by_priority: [BTreeMap<u64, usize>; 3],
}

impl AdmissionLedger {
    /// An empty ledger over `profiles`; `backends` is `Some(n)` only when
    /// per-backend render-slot charges must be tracked (several backends
    /// under viewpoint-hash placement).
    pub(crate) fn new(profiles: Vec<SessionProfile>, backends: Option<usize>) -> AdmissionLedger {
        AdmissionLedger {
            seq_of: vec![None; profiles.len()],
            by_seq: BTreeMap::new(),
            next_seq: 0,
            units_in_use: 0,
            viewpoint_refs: HashMap::new(),
            per_backend: vec![0; backends.unwrap_or(0)],
            by_priority: [BTreeMap::new(), BTreeMap::new(), BTreeMap::new()],
            profiles,
        }
    }

    /// Admission sequence of `session` while live (`None` otherwise); doubles
    /// as the liveness test and as the admission-order sort key.
    pub(crate) fn seq(&self, session: usize) -> Option<u64> {
        self.seq_of[session]
    }

    /// Live schedule indices in admission order.
    pub(crate) fn live_in_admission_order(&self) -> Vec<usize> {
        self.by_seq.values().copied().collect()
    }

    /// Admit `session`: O(log live).
    pub(crate) fn insert(&mut self, session: usize) {
        debug_assert!(self.seq_of[session].is_none(), "double admit of session {session}");
        let p = self.profiles[session];
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seq_of[session] = Some(seq);
        self.by_seq.insert(seq, session);
        self.by_priority[usize::from(p.priority)].insert(seq, session);
        self.units_in_use += p.cost;
        let refs = self.viewpoint_refs.entry(p.viewpoint).or_insert(0);
        *refs += 1;
        if *refs == 1 && !self.per_backend.is_empty() {
            self.per_backend[p.backend] += 1;
        }
    }

    /// Remove a live `session` (leave or eviction): O(log live).
    pub(crate) fn remove(&mut self, session: usize) {
        let seq = self.seq_of[session].take().expect("remove of a non-live session");
        let p = self.profiles[session];
        self.by_seq.remove(&seq);
        self.by_priority[usize::from(p.priority)].remove(&seq);
        self.units_in_use -= p.cost;
        let refs = self.viewpoint_refs.get_mut(&p.viewpoint).expect("viewpoint refcounted");
        *refs -= 1;
        if *refs == 0 {
            self.viewpoint_refs.remove(&p.viewpoint);
            if !self.per_backend.is_empty() {
                self.per_backend[p.backend] -= 1;
            }
        }
    }

    /// Drain every live session in admission order, resetting all counters
    /// (end of campaign).
    pub(crate) fn drain(&mut self) -> Vec<usize> {
        let live = self.live_in_admission_order();
        self.by_seq.clear();
        for tier in &mut self.by_priority {
            tier.clear();
        }
        for s in &live {
            self.seq_of[*s] = None;
        }
        self.units_in_use = 0;
        self.viewpoint_refs.clear();
        self.per_backend.iter_mut().for_each(|n| *n = 0);
        live
    }

    /// Eviction candidates for a newcomer of `priority`, in the exact greedy
    /// cascade order: strictly lower tiers only, lowest tier first, most
    /// recently admitted first within a tier.
    pub(crate) fn candidates_below(&self, priority: u8) -> impl Iterator<Item = usize> + '_ {
        self.by_priority[..usize::from(priority)]
            .iter()
            .flat_map(|tier| tier.values().rev().copied())
    }

    /// Start a what-if overlay that can hypothetically remove (and restore)
    /// live sessions without touching the ledger.
    pub(crate) fn trial(&self) -> Trial<'_> {
        Trial {
            ledger: self,
            removed_count: 0,
            removed_units: 0,
            vp_removed: HashMap::new(),
            freed_distinct: 0,
            freed_backend: vec![0; self.per_backend.len()],
        }
    }
}

impl CapacityView for AdmissionLedger {
    fn live_count(&self) -> usize {
        self.by_seq.len()
    }

    fn units_in_use(&self) -> u64 {
        self.units_in_use
    }

    fn distinct_viewpoints(&self) -> u32 {
        self.viewpoint_refs.len() as u32
    }

    fn holds_viewpoint(&self, viewpoint: u32) -> bool {
        self.viewpoint_refs.contains_key(&viewpoint)
    }

    fn backend_distinct(&self, backend: usize) -> u32 {
        self.per_backend[backend]
    }
}

/// A what-if overlay on the ledger: victims marked removed here subtract
/// from every [`CapacityView`] answer, at O(1) per mark, without mutating
/// the ledger.  The eviction cascade removes candidates one by one until the
/// newcomer fits; the spare pass restores each victim in turn to ask whether
/// its eviction was load-bearing.
pub(crate) struct Trial<'a> {
    ledger: &'a AdmissionLedger,
    removed_count: usize,
    removed_units: u64,
    /// Hypothetically removed sessions per viewpoint.
    vp_removed: HashMap<u32, u32>,
    /// Viewpoints whose every live holder is removed in this trial.
    freed_distinct: u32,
    /// Per-backend count of fully freed viewpoints (same indexing as the
    /// ledger's `per_backend`; empty when untracked).
    freed_backend: Vec<u32>,
}

impl Trial<'_> {
    /// Hypothetically remove a live session.
    pub(crate) fn remove(&mut self, session: usize) {
        let p = self.ledger.profiles[session];
        debug_assert!(
            self.ledger.seq_of[session].is_some(),
            "trial removal of a non-live session"
        );
        self.removed_count += 1;
        self.removed_units += p.cost;
        let removed = self.vp_removed.entry(p.viewpoint).or_insert(0);
        *removed += 1;
        if *removed == self.ledger.viewpoint_refs[&p.viewpoint] {
            self.freed_distinct += 1;
            if !self.freed_backend.is_empty() {
                self.freed_backend[p.backend] += 1;
            }
        }
    }

    /// Undo a hypothetical removal (the spare-minimization pass).
    pub(crate) fn restore(&mut self, session: usize) {
        let p = self.ledger.profiles[session];
        let removed = self
            .vp_removed
            .get_mut(&p.viewpoint)
            .expect("restore of a non-removed session");
        if *removed == self.ledger.viewpoint_refs[&p.viewpoint] {
            self.freed_distinct -= 1;
            if !self.freed_backend.is_empty() {
                self.freed_backend[p.backend] -= 1;
            }
        }
        *removed -= 1;
        if *removed == 0 {
            self.vp_removed.remove(&p.viewpoint);
        }
        self.removed_count -= 1;
        self.removed_units -= p.cost;
    }
}

impl CapacityView for Trial<'_> {
    fn live_count(&self) -> usize {
        self.ledger.live_count() - self.removed_count
    }

    fn units_in_use(&self) -> u64 {
        self.ledger.units_in_use - self.removed_units
    }

    fn distinct_viewpoints(&self) -> u32 {
        self.ledger.distinct_viewpoints() - self.freed_distinct
    }

    fn holds_viewpoint(&self, viewpoint: u32) -> bool {
        let held = self.ledger.viewpoint_refs.get(&viewpoint).copied().unwrap_or(0);
        held > self.vp_removed.get(&viewpoint).copied().unwrap_or(0)
    }

    fn backend_distinct(&self, backend: usize) -> u32 {
        self.ledger.per_backend[backend] - self.freed_backend[backend]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Vec<SessionProfile> {
        // Sessions 0..5: viewpoints 0,0,1,2,2 / costs 1,2,4,2,1 /
        // priorities 0,1,2,1,0; two backends owning {0,2} and {1}.
        [
            (0u32, 1u64, 0u8, 0usize),
            (0, 2, 1, 0),
            (1, 4, 2, 1),
            (2, 2, 1, 0),
            (2, 1, 0, 0),
        ]
        .into_iter()
        .map(|(viewpoint, cost, priority, backend)| SessionProfile {
            cost,
            viewpoint,
            priority,
            backend,
        })
        .collect()
    }

    #[test]
    fn insert_and_remove_keep_every_counter_exact() {
        let mut ledger = AdmissionLedger::new(profiles(), Some(2));
        for s in 0..5 {
            ledger.insert(s);
        }
        assert_eq!(ledger.live_count(), 5);
        assert_eq!(ledger.units_in_use(), 10);
        assert_eq!(ledger.distinct_viewpoints(), 3);
        assert_eq!(ledger.backend_distinct(0), 2);
        assert_eq!(ledger.backend_distinct(1), 1);
        assert_eq!(ledger.live_in_admission_order(), vec![0, 1, 2, 3, 4]);

        ledger.remove(1);
        assert!(ledger.holds_viewpoint(0), "session 0 still holds viewpoint 0");
        assert_eq!(ledger.units_in_use(), 8);
        ledger.remove(0);
        assert!(!ledger.holds_viewpoint(0));
        assert_eq!(ledger.distinct_viewpoints(), 2);
        assert_eq!(ledger.backend_distinct(0), 1, "viewpoint 0 freed its backend charge");
        assert_eq!(ledger.live_in_admission_order(), vec![2, 3, 4]);

        // Re-admission lands at the back of the order, like a vector push.
        ledger.insert(0);
        assert_eq!(ledger.live_in_admission_order(), vec![2, 3, 4, 0]);
        assert!(ledger.seq(0).is_some());
        assert_eq!(ledger.seq(1), None);
    }

    #[test]
    fn candidates_walk_lowest_tier_first_most_recent_first() {
        let mut ledger = AdmissionLedger::new(profiles(), None);
        for s in [2, 0, 1, 4, 3] {
            ledger.insert(s);
        }
        // Priority 0 sessions {0, 4} (4 admitted later), then priority 1
        // {1, 3} (3 admitted later); the interactive session 2 never appears.
        let order: Vec<usize> = ledger.candidates_below(2).collect();
        assert_eq!(order, vec![4, 0, 3, 1]);
        let previews_only: Vec<usize> = ledger.candidates_below(1).collect();
        assert_eq!(previews_only, vec![4, 0]);
        assert_eq!(ledger.candidates_below(0).count(), 0);
    }

    #[test]
    fn trial_overlays_removals_without_touching_the_ledger() {
        let mut ledger = AdmissionLedger::new(profiles(), Some(2));
        for s in 0..5 {
            ledger.insert(s);
        }
        let mut trial = ledger.trial();
        trial.remove(0);
        assert_eq!(trial.live_count(), 4);
        assert_eq!(trial.units_in_use(), 9);
        assert!(trial.holds_viewpoint(0), "session 1 still holds viewpoint 0");
        assert_eq!(trial.distinct_viewpoints(), 3);
        trial.remove(1);
        assert!(!trial.holds_viewpoint(0), "both holders removed");
        assert_eq!(trial.distinct_viewpoints(), 2);
        assert_eq!(trial.backend_distinct(0), 1);
        trial.restore(1);
        assert!(trial.holds_viewpoint(0));
        assert_eq!(trial.backend_distinct(0), 2);
        assert_eq!(trial.units_in_use(), 9);
        drop(trial);
        // The ledger itself never moved.
        assert_eq!(ledger.live_count(), 5);
        assert_eq!(ledger.units_in_use(), 10);
        assert_eq!(ledger.distinct_viewpoints(), 3);
    }

    #[test]
    fn drain_returns_admission_order_and_resets_everything() {
        let mut ledger = AdmissionLedger::new(profiles(), Some(2));
        for s in [3, 1, 4] {
            ledger.insert(s);
        }
        assert_eq!(ledger.drain(), vec![3, 1, 4]);
        assert_eq!(ledger.live_count(), 0);
        assert_eq!(ledger.units_in_use(), 0);
        assert_eq!(ledger.distinct_viewpoints(), 0);
        assert_eq!(ledger.backend_distinct(0), 0);
        assert_eq!(ledger.seq(3), None);
        // The ledger stays usable after a drain.
        ledger.insert(2);
        assert_eq!(ledger.live_in_admission_order(), vec![2]);
        assert_eq!(ledger.units_in_use(), 4);
    }
}
