//! The multi-session service layer: one render farm, many viewers.
//!
//! The paper's deployment (§3) decouples the parallel back end from the
//! viewer precisely so one expensive render farm can serve remote consumers
//! at their own frame rates — yet until this module the pipeline hard-wired
//! exactly one viewer per campaign.  `service` is the seam that turns the
//! pipeline into a multi-tenant system:
//!
//! * [`SessionBroker`] — a deterministic admission-control state machine.  It
//!   accepts a schedule of [`SessionSpec`]s (render viewpoint, quality tier,
//!   join/leave frame), allocates them against modeled backend render slots
//!   and link-capacity units (the allocation-under-constraints framing of
//!   *More with Less*), may evict lower-priority sessions for higher ones,
//!   and accounts shared renders: sessions subscribed to the same viewpoint
//!   share one backend render per frame, so `renders_performed` counts
//!   distinct live viewpoints while `render_requests` counts what a naive
//!   per-session farm would have paid.
//! * [`crate::pipeline::FanoutPlane`] — the real-mode shared-render
//!   fan-out.  It sits
//!   between the backend's striped links and N concurrent sessions,
//!   multicasting every stripe chunk zero-copy ([`bytes::Bytes`] clones) onto
//!   per-session bounded queues.  A slow session's full queue degrades *that
//!   session* (the rest of the frame is skipped for it, leaving a partial
//!   composite) instead of stalling the farm or the other sessions.  Two
//!   interchangeable implementations exist, selected by [`PlaneKind`]: the
//!   classic thread-per-session [`fanout`] plane and the executor-backed
//!   [`asyncplane`], which multiplexes every consumer, pump, and pacer as
//!   polled tasks over a bounded worker pool so session count buys memory,
//!   not OS threads.
//! * Per-session flow adaptation: each session drains its queue through its
//!   own [`netsim::StripePacer`] (derived from a per-session
//!   [`netsim::TcpModel`] by the scenario layer), so every session
//!   experiences its own WAN — an untuned dial-up-grade session backpressures
//!   only itself.
//!
//! The virtual-time path replays the identical broker state machine frame by
//! frame (`pipeline::ReplayPlane`), so the deterministic
//! half of [`ServiceStats`] is byte-identical between the two execution
//! paths and is covered by the campaign replay fingerprint; queue-timing
//! counters (chunks actually delivered or dropped, frames skipped) are
//! excluded, exactly as wall-clock timestamps are.

use crate::transport::{StripeReceiver, StripeSender, TcpTuning, TransportConfig};
use crate::viewer::ViewerError;
use ledger::{AdmissionLedger, CapacityView, SessionProfile};
use netlogger::{tags, FieldValue, NetLogger};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

pub mod asyncplane;
pub mod fanout;
mod ledger;
#[cfg(test)]
mod oracle;
pub mod sharded;

pub(crate) use fanout::drive_service_plane;
pub use sharded::{ShardLockStats, ShardedBroker};

// ---------------------------------------------------------------------------
// Session specifications
// ---------------------------------------------------------------------------

/// What a session is entitled to — and what it costs the shared farm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QualityTier {
    /// A driving console: full frames, partial composites, first claim on
    /// capacity (may evict lower tiers).
    Interactive,
    /// A standard remote viewer.
    Standard,
    /// A cheap thumbnail/overview consumer; first to be evicted.
    Preview,
}

impl QualityTier {
    /// Link-capacity units this tier consumes while admitted.
    pub fn cost_units(&self) -> u64 {
        match self {
            QualityTier::Interactive => 4,
            QualityTier::Standard => 2,
            QualityTier::Preview => 1,
        }
    }

    /// Eviction priority (higher evicts lower, never the reverse).
    pub fn priority(&self) -> u8 {
        match self {
            QualityTier::Interactive => 2,
            QualityTier::Standard => 1,
            QualityTier::Preview => 0,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            QualityTier::Interactive => "interactive",
            QualityTier::Standard => "standard",
            QualityTier::Preview => "preview",
        }
    }
}

/// One session the broker is asked to serve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Session name (used in reports).
    pub name: String,
    /// Render key: sessions sharing a viewpoint share one backend render.
    pub viewpoint: u32,
    /// Quality tier (capacity cost and eviction priority).
    pub tier: QualityTier,
    /// Frame at which the session asks to join.
    pub join_frame: u32,
    /// Frame *before* which the session leaves (`None` = stays to the end).
    pub leave_frame: Option<u32>,
    /// Stripes of the session's own fan-out queue.
    pub stripes: u32,
    /// Per-stripe queue depth override (`None` = the broker's
    /// [`ServiceConfig::queue_depth`]).
    pub queue_depth: Option<usize>,
    /// TCP stack the session's last mile models.
    pub tuning: TcpTuning,
    /// Modeled last-mile goodput in Mbps (`None` = unshaped; the real plane
    /// paces the session's consumer to this, the broker compares it against
    /// the farm egress to count flow-limited sessions).
    pub pace_rate_mbps: Option<f64>,
}

impl SessionSpec {
    /// A session with the laptop-scale defaults: joins at frame 0, stays to
    /// the end, four wan-tuned stripes, unshaped.
    pub fn new(name: impl Into<String>, viewpoint: u32, tier: QualityTier) -> Self {
        SessionSpec {
            name: name.into(),
            viewpoint,
            tier,
            join_frame: 0,
            leave_frame: None,
            stripes: 4,
            queue_depth: None,
            tuning: TcpTuning::WanTuned,
            pace_rate_mbps: None,
        }
    }

    /// Builder: the `[join, leave)` frame window.
    pub fn with_window(mut self, join: u32, leave: Option<u32>) -> Self {
        self.join_frame = join;
        self.leave_frame = leave;
        self
    }

    /// Builder: the session's modeled last-mile pacing rate.
    pub fn paced_at_mbps(mut self, mbps: f64) -> Self {
        self.pace_rate_mbps = Some(mbps);
        self
    }

    /// True when the session wants frame `f`.
    pub fn live_at(&self, frame: u32) -> bool {
        frame >= self.join_frame && self.leave_frame.map(|l| frame < l).unwrap_or(true)
    }
}

/// How the farm places distinct viewpoints onto render backends when the
/// service runs more than one backend ([`ServiceConfig::backends`]).
///
/// TOML spellings: `"viewpoint_hash"` and `"least_loaded"`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendPlacement {
    /// Every viewpoint hashes to one owning backend, and that backend's
    /// share of the render slots must hold it.  A static partition: a join
    /// can be rejected for render slots even while another backend still has
    /// free slots.
    #[default]
    ViewpointHash,
    /// Viewpoints go wherever slots are free.  Work-conserving best-case
    /// packing: since every viewpoint fits on any backend, admission is
    /// exactly the pooled single-backend check.
    LeastLoaded,
}

impl BackendPlacement {
    /// Short label for reports (also the TOML spelling).
    pub fn label(&self) -> &'static str {
        match self {
            BackendPlacement::ViewpointHash => "viewpoint_hash",
            BackendPlacement::LeastLoaded => "least_loaded",
        }
    }
}

/// Modeled capacity the broker admits against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Hard cap on concurrently admitted sessions.
    pub max_sessions: usize,
    /// Shared egress capacity in tier cost units (see
    /// [`QualityTier::cost_units`]).
    pub link_capacity_units: u64,
    /// Concurrent distinct render keys the backend can sustain.
    pub render_slots: u32,
    /// Bounded per-session fan-out queue depth, in chunks.
    pub queue_depth: usize,
    /// Modeled farm egress goodput in Mbps; sessions whose own last mile is
    /// slower are counted flow-limited (they will be degraded, not waited
    /// for).
    pub farm_egress_mbps: Option<f64>,
    /// Independent broker shards the service layer partitions sessions into
    /// by viewpoint hash (`None` = 1, the classic single broker).  At 1 the
    /// sharded path is byte-identical to the plain [`SessionBroker`]; above
    /// 1 each shard owns a proportional share of the capacity below.
    pub shards: Option<usize>,
    /// Render backends the farm's slots are split across (`None` = 1, the
    /// classic single backend).
    pub backends: Option<usize>,
    /// Viewpoint-to-backend placement policy when `backends > 1` (`None` =
    /// [`BackendPlacement::ViewpointHash`]).
    pub placement: Option<BackendPlacement>,
}

impl ServiceConfig {
    /// Broker shards the service layer runs (at least 1).
    pub fn shard_count(&self) -> usize {
        self.shards.unwrap_or(1).max(1)
    }

    /// Render backends the farm's slots are split across (at least 1).
    pub fn backend_count(&self) -> usize {
        self.backends.unwrap_or(1).max(1)
    }

    /// The viewpoint placement policy the farm admits against.
    pub fn backend_placement(&self) -> BackendPlacement {
        self.placement.unwrap_or_default()
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_sessions: 64,
            link_capacity_units: 256,
            render_slots: 8,
            queue_depth: 64,
            farm_egress_mbps: None,
            shards: None,
            backends: None,
            placement: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Broker state machine
// ---------------------------------------------------------------------------

/// Why the broker turned a session away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Every session slot is taken by equal-or-higher tiers.
    SessionSlots,
    /// Admitting would oversubscribe the link capacity units.
    LinkCapacity,
    /// No render slot: too many distinct viewpoints already live.
    RenderSlots,
}

impl RejectReason {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::SessionSlots => "session-slots",
            RejectReason::LinkCapacity => "link-capacity",
            RejectReason::RenderSlots => "render-slots",
        }
    }
}

/// One lifecycle transition the broker decided, tagged with the session's
/// schedule index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// The session was admitted and is now live.
    Admitted {
        /// Schedule index of the session.
        session: usize,
    },
    /// The session was turned away at its join frame.
    Rejected {
        /// Schedule index of the session.
        session: usize,
        /// Which capacity ran out.
        reason: RejectReason,
    },
    /// A live session was evicted to make room for a higher tier.
    Evicted {
        /// Schedule index of the session.
        session: usize,
    },
    /// The session reached its leave frame (or the campaign ended).
    Left {
        /// Schedule index of the session.
        session: usize,
    },
}

impl SessionEvent {
    /// The schedule index the event concerns.
    pub fn session(&self) -> usize {
        match *self {
            SessionEvent::Admitted { session }
            | SessionEvent::Rejected { session, .. }
            | SessionEvent::Evicted { session }
            | SessionEvent::Left { session } => session,
        }
    }

    /// The NetLogger tag this event emits as.
    pub fn tag(&self) -> &'static str {
        match self {
            SessionEvent::Admitted { .. } => tags::SERVICE_JOIN,
            SessionEvent::Rejected { .. } => tags::SERVICE_REJECT,
            SessionEvent::Evicted { .. } => tags::SERVICE_EVICT,
            SessionEvent::Left { .. } => tags::SERVICE_LEAVE,
        }
    }
}

/// Telemetry of the service layer over one stage (or summed over a campaign).
///
/// The session-lifecycle and shared-render counters are deterministic — pure
/// functions of the session schedule and the capacity config — and are
/// covered by replay fingerprints; the two execution paths report them
/// identically by construction because both drive the same
/// [`SessionBroker`].  `fanout_chunks`/`fanout_bytes` (offered load) are
/// deterministic per path.  The delivery counters below them depend on queue
/// timing and are excluded from fingerprints, exactly as wall-clock values
/// are.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Sessions in the schedule.
    pub sessions_offered: u64,
    /// Sessions admitted (including any later evicted).
    pub sessions_admitted: u64,
    /// Sessions turned away at their join frame.
    pub sessions_rejected: u64,
    /// Sessions evicted for higher tiers.
    pub sessions_evicted: u64,
    /// Peak concurrently live sessions.
    pub peak_live_sessions: u64,
    /// Renders a naive per-session farm would have performed (one per live
    /// session per frame).
    pub render_requests: u64,
    /// Renders the shared farm actually performed (one per distinct live
    /// viewpoint per frame).
    pub renders_performed: u64,
    /// Admitted sessions whose modeled last mile is slower than the farm
    /// egress — the ones the plane will degrade rather than wait for.
    pub flow_limited_sessions: u64,
    /// Chunk deliveries the fan-out owed (chunks per frame × sessions live at
    /// that frame).
    pub fanout_chunks: u64,
    /// Bytes the fan-out owed.
    pub fanout_bytes: u64,
    /// Chunks actually enqueued to session queues (timing-dependent).
    pub chunks_delivered: u64,
    /// Chunks dropped by degradation or departed sessions (timing-dependent).
    pub chunks_dropped: u64,
    /// Per-session (rank, frame) deliveries that fully assembled
    /// (timing-dependent).
    pub frames_completed: u64,
    /// Per-session (rank, frame) deliveries degraded to a partial composite
    /// (timing-dependent).
    pub frames_skipped: u64,
}

impl ServiceStats {
    /// Render requests served by a shared render instead of a new one.
    pub fn shared_render_hits(&self) -> u64 {
        self.render_requests.saturating_sub(self.renders_performed)
    }

    /// Fraction of render requests served by sharing.
    pub fn shared_render_hit_rate(&self) -> f64 {
        if self.render_requests == 0 {
            0.0
        } else {
            self.shared_render_hits() as f64 / self.render_requests as f64
        }
    }

    /// Backend renders as a fraction of the naive per-session count.
    pub fn render_ratio(&self) -> f64 {
        if self.render_requests == 0 {
            0.0
        } else {
            self.renders_performed as f64 / self.render_requests as f64
        }
    }

    /// Element-wise accumulate `other` into `self` (peaks take the max).
    pub fn merge(&mut self, other: &ServiceStats) {
        self.sessions_offered += other.sessions_offered;
        self.sessions_admitted += other.sessions_admitted;
        self.sessions_rejected += other.sessions_rejected;
        self.sessions_evicted += other.sessions_evicted;
        self.peak_live_sessions = self.peak_live_sessions.max(other.peak_live_sessions);
        self.render_requests += other.render_requests;
        self.renders_performed += other.renders_performed;
        self.flow_limited_sessions += other.flow_limited_sessions;
        self.fanout_chunks += other.fanout_chunks;
        self.fanout_bytes += other.fanout_bytes;
        self.chunks_delivered += other.chunks_delivered;
        self.chunks_dropped += other.chunks_dropped;
        self.frames_completed += other.frames_completed;
        self.frames_skipped += other.frames_skipped;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionState {
    Pending,
    Live,
    Rejected,
    Evicted,
    Left,
}

/// The session broker: admits a frame-indexed schedule of sessions against
/// modeled capacity, owns their lifecycle, and accounts shared renders.
///
/// The broker is a *pure state machine*: given the same config and schedule,
/// [`SessionBroker::advance_to`] makes the same decisions on every run and on
/// both execution paths.  The real fan-out plane drives it with the frame
/// numbers it observes on the wire; the virtual-time twin drives it with the
/// same frame counter — so admission, eviction, churn and shared-render
/// telemetry replay bit-identically.
///
/// Internally the broker runs on the indexed `AdmissionLedger` (`service/ledger.rs`: running
/// cost accumulator, viewpoint refcounts, tier-bucketed recency indexes), so
/// a join is O(log live) instead of the original O(live) scan and a frame-0
/// burst of N joins is O(N log N) instead of O(N²).  The decisions are
/// byte-for-byte those of the scan implementation, which survives as the
/// test-only `oracle::ScanBroker` differential twin.
#[derive(Debug)]
pub struct SessionBroker {
    config: ServiceConfig,
    schedule: Vec<SessionSpec>,
    state: Vec<SessionState>,
    /// The indexed live-session state (admission order, costs, viewpoint
    /// refcounts, eviction candidate indexes).
    ledger: AdmissionLedger,
    /// Schedule indices grouped by join frame, in schedule order.
    joins_at: HashMap<u32, Vec<usize>>,
    /// Schedule indices grouped by leave frame.
    leaves_at: HashMap<u32, Vec<usize>>,
    next_frame: u32,
    /// (live sessions, distinct viewpoints) per processed frame.
    live_per_frame: Vec<(u64, u64)>,
    events: Vec<(u32, SessionEvent)>,
    stats: ServiceStats,
}

impl SessionBroker {
    /// A broker over `schedule`, admitting against `config`.
    pub fn new(config: ServiceConfig, schedule: Vec<SessionSpec>) -> SessionBroker {
        let stats = ServiceStats {
            sessions_offered: schedule.len() as u64,
            ..ServiceStats::default()
        };
        let backends = config.backend_count();
        // Per-backend distinct-viewpoint charges only exist under
        // viewpoint-hash placement across several backends; pooled checks
        // need just the global refcount map.
        let track_backends = backends > 1 && config.backend_placement() == BackendPlacement::ViewpointHash;
        let profiles: Vec<SessionProfile> = schedule
            .iter()
            .map(|s| SessionProfile {
                cost: s.tier.cost_units(),
                viewpoint: s.viewpoint,
                priority: s.tier.priority(),
                backend: if track_backends {
                    sharded::shard_for_viewpoint(s.viewpoint, backends)
                } else {
                    0
                },
            })
            .collect();
        let mut joins_at: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut leaves_at: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, spec) in schedule.iter().enumerate() {
            joins_at.entry(spec.join_frame).or_default().push(i);
            if let Some(leave) = spec.leave_frame {
                leaves_at.entry(leave).or_default().push(i);
            }
        }
        SessionBroker {
            state: vec![SessionState::Pending; schedule.len()],
            ledger: AdmissionLedger::new(profiles, track_backends.then_some(backends)),
            joins_at,
            leaves_at,
            next_frame: 0,
            live_per_frame: Vec::new(),
            events: Vec::new(),
            stats,
            config,
            schedule,
        }
    }

    /// The capacity configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The spec at schedule index `session`.
    pub fn spec(&self, session: usize) -> &SessionSpec {
        &self.schedule[session]
    }

    /// Number of sessions in the schedule.
    pub fn session_count(&self) -> usize {
        self.schedule.len()
    }

    /// The next frame `advance_to` will process.
    pub fn next_frame(&self) -> u32 {
        self.next_frame
    }

    /// Schedule indices of the currently live sessions, in admission order.
    pub fn live(&self) -> Vec<usize> {
        self.ledger.live_in_admission_order()
    }

    /// Sessions live at an already-processed frame.
    pub fn live_count_at(&self, frame: u32) -> u64 {
        self.live_per_frame.get(frame as usize).map(|&(l, _)| l).unwrap_or(0)
    }

    /// Every lifecycle event so far, with the frame it occurred at.
    pub fn events(&self) -> &[(u32, SessionEvent)] {
        &self.events
    }

    /// Current telemetry snapshot.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    fn cost(&self, session: usize) -> u64 {
        self.schedule[session].tier.cost_units()
    }

    /// First violated constraint if `incoming` joined the live sessions of
    /// `view` — the ledger itself, or a what-if [`ledger::Trial`] with
    /// cascade victims removed.  Constraint order (session slots, link
    /// capacity, render slots) is decision-bearing: it picks the reject
    /// reason, exactly as the scan implementation's checks did.
    ///
    /// The render-slot check is O(1) against the view's refcounts.  Under
    /// viewpoint-hash placement only the incoming viewpoint's owning backend
    /// is probed: every view this is called on is a subset of an admitted
    /// (hence feasible) live set, so no *other* backend can newly
    /// oversubscribe — the scan oracle's any-backend sweep agrees on every
    /// reachable state, which the differential property tests pin.
    fn admission_block_at<V: CapacityView>(&self, view: &V, incoming: usize) -> Option<RejectReason> {
        if view.live_count() + 1 > self.config.max_sessions {
            return Some(RejectReason::SessionSlots);
        }
        if view.units_in_use() + self.cost(incoming) > self.config.link_capacity_units {
            return Some(RejectReason::LinkCapacity);
        }
        let vp = self.schedule[incoming].viewpoint;
        let backends = self.config.backend_count();
        let blocked = if backends == 1 || self.config.backend_placement() == BackendPlacement::LeastLoaded {
            // Pooled: only the distinct-viewpoint total can block.
            view.distinct_viewpoints() + u32::from(!view.holds_viewpoint(vp)) > self.config.render_slots
        } else if view.holds_viewpoint(vp) {
            // The viewpoint is already rendered; joining adds no charge.
            false
        } else {
            let b = sharded::shard_for_viewpoint(vp, backends);
            u64::from(view.backend_distinct(b)) + 1 > sharded::share(u64::from(self.config.render_slots), backends, b)
        };
        if blocked {
            return Some(RejectReason::RenderSlots);
        }
        None
    }

    fn try_admit(&mut self, frame: u32, session: usize) {
        if self.admission_block_at(&self.ledger, session).is_none() {
            self.admit(frame, session);
            return;
        }
        // Over capacity: consider evicting strictly lower-priority sessions,
        // lowest tier first, most recently admitted first within a tier —
        // the ledger's per-tier recency indexes yield exactly that order
        // without scanning the live set.
        let newcomer_priority = self.schedule[session].tier.priority();
        let mut victims: Vec<usize> = Vec::new();
        let mut feasible = false;
        {
            let mut trial = self.ledger.trial();
            for victim in self.ledger.candidates_below(newcomer_priority) {
                trial.remove(victim);
                victims.push(victim);
                if self.admission_block_at(&trial, session).is_none() {
                    feasible = true;
                    break;
                }
            }
            if feasible {
                // Minimize the victim set: the greedy cascade can pick up
                // sessions whose eviction never eased the blocking
                // constraint (e.g. a preview evicted for a render slot its
                // viewpoint does not even hold).  Restore any victim the
                // newcomer can coexist with, in eviction order, so only
                // load-bearing evictions are committed.
                let mut spared: HashSet<usize> = HashSet::new();
                for &candidate in &victims {
                    trial.restore(candidate);
                    if self.admission_block_at(&trial, session).is_none() {
                        spared.insert(candidate);
                    } else {
                        trial.remove(candidate);
                    }
                }
                victims.retain(|v| !spared.contains(v));
            }
        }
        if !feasible {
            // Rejection performs no evictions: capacity that cannot be freed
            // must not be churned.
            let reason = self
                .admission_block_at(&self.ledger, session)
                .expect("admission was blocked");
            self.state[session] = SessionState::Rejected;
            self.stats.sessions_rejected += 1;
            self.events.push((frame, SessionEvent::Rejected { session, reason }));
            return;
        }
        for victim in victims {
            self.ledger.remove(victim);
            self.state[victim] = SessionState::Evicted;
            self.stats.sessions_evicted += 1;
            self.events.push((frame, SessionEvent::Evicted { session: victim }));
        }
        self.admit(frame, session);
    }

    fn admit(&mut self, frame: u32, session: usize) {
        self.ledger.insert(session);
        self.state[session] = SessionState::Live;
        self.stats.sessions_admitted += 1;
        if let (Some(pace), Some(farm)) = (self.schedule[session].pace_rate_mbps, self.config.farm_egress_mbps) {
            if pace < farm {
                self.stats.flow_limited_sessions += 1;
            }
        }
        self.events.push((frame, SessionEvent::Admitted { session }));
    }

    /// Process every frame up to and including `frame`: leaves first (a
    /// departure frees capacity for a same-frame join), then joins in
    /// schedule order, then the frame's shared-render accounting.  Returns
    /// the lifecycle events the catch-up produced, in order.
    ///
    /// Each frame costs O(churn at that frame), not O(schedule): joiners and
    /// leavers come from frame-keyed indexes built at construction, and the
    /// shared-render accounting reads the ledger's running counters.
    pub fn advance_to(&mut self, frame: u32) -> Vec<SessionEvent> {
        let first_new = self.events.len();
        while self.next_frame <= frame {
            let f = self.next_frame;
            // Leavers emit in admission order (what the scan implementation
            // got from filtering its live vector), so sort the frame's
            // schedule-ordered group by admission sequence.
            let mut leavers: Vec<(u64, usize)> = match self.leaves_at.get(&f) {
                Some(group) => group
                    .iter()
                    .filter_map(|&s| self.ledger.seq(s).map(|q| (q, s)))
                    .collect(),
                None => Vec::new(),
            };
            leavers.sort_unstable();
            for (_, s) in leavers {
                self.ledger.remove(s);
                self.state[s] = SessionState::Left;
                self.events.push((f, SessionEvent::Left { session: s }));
            }
            let joiners: Vec<usize> = match self.joins_at.get(&f) {
                Some(group) => group
                    .iter()
                    .copied()
                    .filter(|&s| self.state[s] == SessionState::Pending)
                    .collect(),
                None => Vec::new(),
            };
            for s in joiners {
                // A session leaving before it would join never materializes.
                if !self.schedule[s].live_at(f) {
                    self.state[s] = SessionState::Left;
                    continue;
                }
                self.try_admit(f, s);
            }
            let live = self.ledger.live_count() as u64;
            let viewpoints = u64::from(self.ledger.distinct_viewpoints());
            self.live_per_frame.push((live, viewpoints));
            self.stats.render_requests += live;
            self.stats.renders_performed += viewpoints;
            self.stats.peak_live_sessions = self.stats.peak_live_sessions.max(live);
            self.next_frame += 1;
        }
        self.events[first_new..].iter().map(|&(_, e)| e).collect()
    }

    /// End of campaign: every still-live session leaves.
    pub fn finish(&mut self) -> Vec<SessionEvent> {
        let frame = self.next_frame;
        let first_new = self.events.len();
        for s in self.ledger.drain() {
            self.state[s] = SessionState::Left;
            self.events.push((frame, SessionEvent::Left { session: s }));
        }
        self.events[first_new..].iter().map(|&(_, e)| e).collect()
    }

    /// Fold the offered fan-out load into the stats: `per_frame[f]` is the
    /// `(chunks, bytes)` the farm emitted for frame `f`; each live session
    /// was owed a copy.  Pure arithmetic over the broker's frame history, so
    /// both execution paths fold identical numbers for identical plans.
    pub fn fold_fanout_load(&mut self, per_frame: &[(u64, u64)]) {
        for (f, &(chunks, bytes)) in per_frame.iter().enumerate() {
            let live = self.live_count_at(f as u32);
            self.stats.fanout_chunks += chunks * live;
            self.stats.fanout_bytes += bytes * live;
        }
    }
}

// ---------------------------------------------------------------------------
// Plane selection and run reports
// ---------------------------------------------------------------------------

/// Which real-mode plane implementation serves the sessions.
///
/// Both planes drive the identical [`SessionBroker`] state machine and share
/// the multicast/degradation logic chunk for chunk, so the deterministic half
/// of [`ServiceStats`] is byte-identical between them (and to the virtual-time
/// replay) — the choice is purely an execution-cost knob and is therefore
/// *not* folded into replay fingerprints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlaneKind {
    /// One OS thread per backend PE link plus one per session consumer
    /// ([`fanout`]).  Fine at exhibit scale; threads grow with sessions.
    #[default]
    Threaded,
    /// Session consumers, stripe pumps, and pacers as polled tasks
    /// multiplexed over a small worker pool ([`asyncplane`]).  OS threads are
    /// bounded by the pool size, so 10k sessions cost memory, not threads.
    Async,
}

impl PlaneKind {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PlaneKind::Threaded => "threaded",
            PlaneKind::Async => "async",
        }
    }
}

/// What one session actually received (real path only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionDelivery {
    /// Session name from the spec.
    pub name: String,
    /// Render key the session subscribed to.
    pub viewpoint: u32,
    /// Quality tier.
    pub tier: QualityTier,
    /// Per-PE frames fully reassembled by this session.
    pub frames_completed: u64,
    /// Per-PE frames degraded to a partial composite (queue-full skips).
    pub frames_skipped: u64,
    /// Chunks enqueued to this session.
    pub chunks_delivered: u64,
    /// Chunks withheld from this session (degradation or departure).
    pub chunks_dropped: u64,
    /// Payload bytes enqueued to this session.
    pub bytes_delivered: u64,
    /// Delivery anomalies this session observed, in arrival order.
    pub errors: Vec<ViewerError>,
}

/// Everything the real fan-out plane produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceRunReport {
    /// Deterministic broker counters with the plane's timing counters merged
    /// in.
    pub stats: ServiceStats,
    /// Per-session deliveries, in schedule order (admitted sessions only).
    pub sessions: Vec<SessionDelivery>,
    /// Every broker lifecycle decision, with the frame it occurred at.
    pub events: Vec<(u32, SessionEvent)>,
    /// Per-shard lock acquisition/contention/hold counters (timing-dependent;
    /// empty on the classic unsharded path and on replay).
    pub shard_locks: Vec<ShardLockStats>,
}

/// Run the shared-render fan-out plane over one campaign.
///
/// Deprecated facade over the plane implementation the unified pipeline
/// driver splices in (`pipeline::FanoutPlane` is the `ServicePlane`
/// capability of the real path); use [`crate::pipeline::FanoutPlane::drive`]
/// to run the plane directly, or the `pipeline::Pipeline` builder to run it
/// inside a campaign.
#[deprecated(
    since = "0.1.0",
    note = "splice the plane through the `pipeline::Pipeline` builder's service seam, or run it \
            directly with `pipeline::FanoutPlane::drive`"
)]
pub fn run_service_plane(
    broker: SessionBroker,
    inputs: Vec<StripeReceiver>,
    primary: Vec<StripeSender>,
    transport: &TransportConfig,
) -> ServiceRunReport {
    drive_service_plane(broker, inputs, primary, transport)
}

// ---------------------------------------------------------------------------
// NetLogger emission (shared by both execution paths)
// ---------------------------------------------------------------------------

/// Emit the service-layer NetLogger telemetry (`NL.service.*` fields): one
/// lifecycle event per broker decision and a per-stage `SERVICE_STATS`
/// summary.  This is the only place the event schema lives — the real path
/// logs at the collector's clock (`at = None`), the virtual-time path replays
/// the same emitter at explicit virtual timestamps, so either log reads
/// identically by construction.
/// Distinct viewpoints across a session schedule — the upper bound on how
/// many broker shards viewpoint-hash partitioning can ever populate.
pub fn distinct_viewpoints(sessions: &[SessionSpec]) -> usize {
    sessions.iter().map(|s| s.viewpoint).collect::<HashSet<_>>().len()
}

/// `Some((shards, distinct_viewpoints))` when a service plan provisions more
/// broker shards than its schedule has distinct viewpoints.  Sessions map to
/// shards by viewpoint hash, so the surplus shards are guaranteed idle: they
/// pay their lock, executor, and fan-lane overhead without ever owning a
/// session.  Advisory — an over-provisioned plan still runs correctly.
pub fn shard_overprovision(config: &ServiceConfig, sessions: &[SessionSpec]) -> Option<(usize, usize)> {
    let shards = config.shard_count();
    let viewpoints = distinct_viewpoints(sessions);
    (shards > 1 && shards > viewpoints).then_some((shards, viewpoints))
}

/// Emit the advisory `SERVICE_SHARDS_IDLE` event (see
/// [`shard_overprovision`]), once per affected stage, identically on both
/// execution paths.
pub fn log_shard_overprovision(logger: &NetLogger, at: Option<f64>, shards: usize, viewpoints: usize) {
    let fields = vec![
        (tags::FIELD_SERVICE_SHARDS.to_string(), FieldValue::Int(shards as i64)),
        (
            tags::FIELD_SERVICE_VIEWPOINTS.to_string(),
            FieldValue::Int(viewpoints as i64),
        ),
    ];
    match at {
        Some(t) => logger.log_at(t, tags::SERVICE_SHARDS_IDLE, fields),
        None => logger.log_with(tags::SERVICE_SHARDS_IDLE, fields),
    }
}

pub fn log_service_stats(logger: &NetLogger, at: Option<f64>, stats: &ServiceStats, events: &[(u32, SessionEvent)]) {
    log_service_stats_sampled(logger, at, stats, events, 1);
}

/// [`log_service_stats`] with deterministic 1-in-N lifeline sampling: only
/// sessions selected by [`netlogger::session_sampled`] emit their lifecycle
/// events.  Sampling is a pure function of the session id, so both execution
/// paths thin the log identically — at 100k sessions this is what keeps
/// lifelines NLV-plottable.  The `SERVICE_STATS` summary always emits
/// unsampled (it aggregates, it does not enumerate).
pub fn log_service_stats_sampled(
    logger: &NetLogger,
    at: Option<f64>,
    stats: &ServiceStats,
    events: &[(u32, SessionEvent)],
    sample_every: u32,
) {
    let emit = |tag: &str, fields: Vec<(String, FieldValue)>| match at {
        Some(t) => logger.log_at(t, tag, fields),
        None => logger.log_with(tag, fields),
    };
    for &(frame, event) in events {
        if !netlogger::session_sampled(event.session(), sample_every) {
            continue;
        }
        emit(
            event.tag(),
            vec![
                (tags::FIELD_FRAME.to_string(), FieldValue::Int(i64::from(frame))),
                (
                    tags::FIELD_SERVICE_SESSION.to_string(),
                    FieldValue::Int(event.session() as i64),
                ),
            ],
        );
    }
    emit(
        tags::SERVICE_STATS,
        vec![
            (
                tags::FIELD_SERVICE_SESSIONS.to_string(),
                FieldValue::Int(stats.sessions_offered as i64),
            ),
            (
                tags::FIELD_SERVICE_ADMITTED.to_string(),
                FieldValue::Int(stats.sessions_admitted as i64),
            ),
            (
                tags::FIELD_SERVICE_REJECTED.to_string(),
                FieldValue::Int(stats.sessions_rejected as i64),
            ),
            (
                tags::FIELD_SERVICE_EVICTED.to_string(),
                FieldValue::Int(stats.sessions_evicted as i64),
            ),
            (
                tags::FIELD_SERVICE_RENDERS.to_string(),
                FieldValue::Int(stats.renders_performed as i64),
            ),
            (
                tags::FIELD_SERVICE_RENDER_REQUESTS.to_string(),
                FieldValue::Int(stats.render_requests as i64),
            ),
            (
                tags::FIELD_SERVICE_SHARED_HITS.to_string(),
                FieldValue::Int(stats.shared_render_hits() as i64),
            ),
            (
                tags::FIELD_BYTES.to_string(),
                FieldValue::Int(stats.fanout_bytes as i64),
            ),
        ],
    );
}

/// Emit the per-shard `SERVICE_TELEMETRY` summary — one event per broker
/// shard with that shard's lock counters.  Both execution paths call this
/// one emitter (real with measured lock stats, virtual-time with the
/// deterministic zeros its replay has no locks to measure), so the event is
/// structurally present on either log.  Excluded from replay fingerprints:
/// hold times are wall-clock.
pub fn log_service_telemetry(logger: &NetLogger, at: Option<f64>, shard_count: usize, locks: &[ShardLockStats]) {
    for shard in 0..shard_count.max(1) {
        let stats = locks
            .iter()
            .find(|l| l.shard == shard)
            .copied()
            .unwrap_or(ShardLockStats {
                shard,
                ..ShardLockStats::default()
            });
        let fields = vec![
            (tags::FIELD_SERVICE_SHARD.to_string(), FieldValue::Int(shard as i64)),
            (
                tags::FIELD_SERVICE_LOCK_ACQUISITIONS.to_string(),
                FieldValue::Int(stats.acquisitions as i64),
            ),
            (
                tags::FIELD_SERVICE_LOCK_CONTENDED.to_string(),
                FieldValue::Int(stats.contended as i64),
            ),
            (
                tags::FIELD_SERVICE_LOCK_HOLD_NS.to_string(),
                FieldValue::Int(stats.hold_ns as i64),
            ),
        ];
        match at {
            Some(t) => logger.log_at(t, tags::SERVICE_TELEMETRY, fields),
            None => logger.log_with(tags::SERVICE_TELEMETRY, fields),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, viewpoint: u32, tier: QualityTier) -> SessionSpec {
        SessionSpec::new(name, viewpoint, tier)
    }

    fn tiny_config() -> ServiceConfig {
        ServiceConfig {
            max_sessions: 4,
            link_capacity_units: 8,
            render_slots: 2,
            queue_depth: 8,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn broker_admits_within_capacity_and_accounts_shared_renders() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard),
            spec("c", 1, QualityTier::Standard),
        ];
        let mut broker = SessionBroker::new(tiny_config(), schedule);
        broker.advance_to(3);
        broker.finish();
        let s = broker.stats();
        assert_eq!(s.sessions_admitted, 3);
        assert_eq!(s.sessions_rejected, 0);
        assert_eq!(s.peak_live_sessions, 3);
        // 4 frames x 3 live sessions, but only 2 distinct viewpoints.
        assert_eq!(s.render_requests, 12);
        assert_eq!(s.renders_performed, 8);
        assert_eq!(s.shared_render_hits(), 4);
        assert!((s.shared_render_hit_rate() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn broker_rejects_when_capacity_runs_out() {
        // Capacity: 9 units, 2 render slots.  Four standard sessions (2 units
        // each) leave 1 unit; the fifth standard is rejected for link
        // capacity, and a preview on a third viewpoint (which *would* fit the
        // last unit) is rejected for render slots.
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard),
            spec("c", 1, QualityTier::Standard),
            spec("d", 1, QualityTier::Standard),
            spec("e", 0, QualityTier::Standard),
            spec("f", 2, QualityTier::Preview),
        ];
        let config = ServiceConfig {
            max_sessions: 8,
            link_capacity_units: 9,
            render_slots: 2,
            ..tiny_config()
        };
        let mut broker = SessionBroker::new(config, schedule);
        let events = broker.advance_to(0);
        assert_eq!(broker.stats().sessions_admitted, 4);
        assert_eq!(broker.stats().sessions_rejected, 2);
        let reasons: Vec<RejectReason> = events
            .iter()
            .filter_map(|e| match e {
                SessionEvent::Rejected { reason, .. } => Some(*reason),
                _ => None,
            })
            .collect();
        assert_eq!(reasons, vec![RejectReason::LinkCapacity, RejectReason::RenderSlots]);
    }

    #[test]
    fn broker_evicts_lower_tiers_for_interactive_sessions() {
        // 8 units: four previews (1 each) + one standard (2) = 6.  The first
        // interactive join (4) evicts the two most recent previews; the
        // second cascades through the remaining previews into the standard
        // (always lowest tier first, most recent first within a tier); a
        // third interactive faces only equal-tier sessions — infeasible, so
        // it is rejected without churning anyone.
        let mut schedule = vec![
            spec("p0", 0, QualityTier::Preview),
            spec("p1", 0, QualityTier::Preview),
            spec("p2", 0, QualityTier::Preview),
            spec("p3", 0, QualityTier::Preview),
            spec("std", 1, QualityTier::Standard),
        ];
        schedule.push(spec("vip", 0, QualityTier::Interactive).with_window(1, None));
        schedule.push(spec("vip2", 1, QualityTier::Interactive).with_window(2, None));
        schedule.push(spec("vip3", 0, QualityTier::Interactive).with_window(3, None));
        let config = ServiceConfig {
            max_sessions: 8,
            ..tiny_config()
        };
        let mut broker = SessionBroker::new(config, schedule);
        broker.advance_to(0);
        assert_eq!(broker.stats().sessions_admitted, 5);
        let events = broker.advance_to(1);
        // 6 units live + 4 > 8: evicting p3 (most recent preview) then p2
        // frees 2, landing exactly at 8.
        assert_eq!(
            events,
            vec![
                SessionEvent::Evicted { session: 3 },
                SessionEvent::Evicted { session: 2 },
                SessionEvent::Admitted { session: 5 },
            ]
        );
        let events = broker.advance_to(2);
        // 8 units live + 4 > 8: the cascade takes p1, p0, then the standard.
        assert_eq!(
            events,
            vec![
                SessionEvent::Evicted { session: 1 },
                SessionEvent::Evicted { session: 0 },
                SessionEvent::Evicted { session: 4 },
                SessionEvent::Admitted { session: 6 },
            ]
        );
        let live_before: Vec<usize> = broker.live().to_vec();
        let events = broker.advance_to(3);
        // Only interactive sessions remain: nothing outranks nothing, so the
        // join is rejected and nobody is evicted.
        assert_eq!(
            events,
            vec![SessionEvent::Rejected {
                session: 7,
                reason: RejectReason::LinkCapacity
            }]
        );
        assert_eq!(broker.live(), &live_before[..]);
        assert_eq!(broker.stats().sessions_evicted, 5);
    }

    #[test]
    fn eviction_commits_only_load_bearing_victims() {
        // Two render slots held by standards on viewpoints 0 and 1, plus a
        // preview also on viewpoint 0.  An interactive joining on viewpoint
        // 2 is blocked on render slots; evicting the preview frees nothing
        // (the standard still holds viewpoint 0), so the cascade must spare
        // it and evict only the standard on viewpoint 1.
        let config = ServiceConfig {
            max_sessions: 8,
            link_capacity_units: 16,
            render_slots: 2,
            ..tiny_config()
        };
        let schedule = vec![
            spec("std-a", 0, QualityTier::Standard),
            spec("std-b", 1, QualityTier::Standard),
            spec("pre", 0, QualityTier::Preview),
            spec("vip", 2, QualityTier::Interactive).with_window(1, None),
        ];
        let mut broker = SessionBroker::new(config, schedule);
        broker.advance_to(0);
        assert_eq!(broker.stats().sessions_admitted, 3);
        let events = broker.advance_to(1);
        assert_eq!(
            events,
            vec![
                SessionEvent::Evicted { session: 1 },
                SessionEvent::Admitted { session: 3 },
            ]
        );
        assert_eq!(broker.stats().sessions_evicted, 1);
        assert!(broker.live().contains(&2), "the preview must be spared");
    }

    #[test]
    fn broker_processes_leaves_before_joins_and_replays_identically() {
        let schedule = vec![
            spec("early", 0, QualityTier::Interactive).with_window(0, Some(2)),
            spec("late", 1, QualityTier::Interactive).with_window(2, None),
        ];
        // 4-unit link: only one interactive fits, so `late` only gets in
        // because `early` leaves at the same frame.
        let config = ServiceConfig {
            link_capacity_units: 4,
            ..tiny_config()
        };
        let run = || {
            let mut b = SessionBroker::new(config.clone(), schedule.clone());
            b.advance_to(3);
            b.finish();
            (b.stats().clone(), b.events().to_vec())
        };
        let (stats, events) = run();
        assert_eq!(stats.sessions_admitted, 2);
        assert_eq!(stats.sessions_rejected, 0);
        assert_eq!(stats.peak_live_sessions, 1);
        // Bit-identical replay: the broker is a pure state machine.
        let (stats2, events2) = run();
        assert_eq!(stats, stats2);
        assert_eq!(events, events2);
    }

    #[test]
    fn fold_fanout_load_weights_chunks_by_live_sessions() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard).with_window(1, None),
        ];
        let mut broker = SessionBroker::new(tiny_config(), schedule);
        broker.advance_to(1);
        broker.fold_fanout_load(&[(10, 1000), (10, 1000)]);
        let s = broker.stats();
        // Frame 0: 1 live; frame 1: 2 live.
        assert_eq!(s.fanout_chunks, 30);
        assert_eq!(s.fanout_bytes, 3000);
    }

    #[test]
    fn flow_limited_sessions_are_counted_against_the_farm_egress() {
        let config = ServiceConfig {
            farm_egress_mbps: Some(100.0),
            ..tiny_config()
        };
        let schedule = vec![
            spec("fast", 0, QualityTier::Standard).paced_at_mbps(200.0),
            spec("slow", 0, QualityTier::Standard).paced_at_mbps(5.0),
            spec("unshaped", 0, QualityTier::Preview),
        ];
        let mut broker = SessionBroker::new(config, schedule);
        broker.advance_to(0);
        assert_eq!(broker.stats().flow_limited_sessions, 1);
    }

    #[test]
    fn plane_kind_defaults_to_threaded_and_parses_the_toml_spellings() {
        assert_eq!(PlaneKind::default(), PlaneKind::Threaded);
        assert_eq!(PlaneKind::Threaded.label(), "threaded");
        assert_eq!(PlaneKind::Async.label(), "async");
    }

    #[test]
    fn placement_defaults_to_viewpoint_hash_and_labels_match_the_toml_spellings() {
        assert_eq!(BackendPlacement::default(), BackendPlacement::ViewpointHash);
        assert_eq!(BackendPlacement::ViewpointHash.label(), "viewpoint_hash");
        assert_eq!(BackendPlacement::LeastLoaded.label(), "least_loaded");
        let config = ServiceConfig::default();
        assert_eq!(config.shard_count(), 1);
        assert_eq!(config.backend_count(), 1);
        assert_eq!(config.backend_placement(), BackendPlacement::ViewpointHash);
    }

    #[test]
    fn viewpoint_hash_placement_charges_each_backends_slot_share() {
        // 4 render slots over 2 backends = 2 slots each.  Four distinct
        // viewpoints all hashing to the same backend overflow that backend's
        // share under viewpoint-hash placement even though the pooled total
        // (4 <= 4) would fit; least-loaded packs them across both backends
        // and admits all four.
        let backend_of = |vp: u32| sharded::shard_for_viewpoint(vp, 2);
        let owner = backend_of(0);
        let colliding: Vec<u32> = (0..64).filter(|&vp| backend_of(vp) == owner).take(4).collect();
        assert_eq!(colliding.len(), 4, "viewpoint hash must collide within 64 keys");
        let schedule: Vec<SessionSpec> = colliding
            .iter()
            .map(|&vp| spec(&format!("s{vp}"), vp, QualityTier::Preview))
            .collect();
        let hashed = ServiceConfig {
            max_sessions: 8,
            link_capacity_units: 64,
            render_slots: 4,
            queue_depth: 8,
            backends: Some(2),
            placement: Some(BackendPlacement::ViewpointHash),
            ..ServiceConfig::default()
        };
        let mut broker = SessionBroker::new(hashed.clone(), schedule.clone());
        broker.advance_to(0);
        assert_eq!(broker.stats().sessions_admitted, 2);
        assert_eq!(broker.stats().sessions_rejected, 2);
        assert!(broker.events().iter().any(|&(_, e)| matches!(
            e,
            SessionEvent::Rejected {
                reason: RejectReason::RenderSlots,
                ..
            }
        )));
        let pooled = ServiceConfig {
            placement: Some(BackendPlacement::LeastLoaded),
            ..hashed
        };
        let mut broker = SessionBroker::new(pooled, schedule);
        broker.advance_to(0);
        assert_eq!(broker.stats().sessions_admitted, 4);
        assert_eq!(broker.stats().sessions_rejected, 0);
    }

    #[test]
    fn single_backend_admission_is_unchanged_by_the_backend_knobs() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 1, QualityTier::Standard),
            spec("c", 2, QualityTier::Standard),
        ];
        let run = |config: ServiceConfig| {
            let mut b = SessionBroker::new(config, schedule.clone());
            b.advance_to(1);
            b.finish();
            (b.stats().clone(), b.events().to_vec())
        };
        let classic = run(tiny_config());
        let explicit = run(ServiceConfig {
            backends: Some(1),
            placement: Some(BackendPlacement::ViewpointHash),
            shards: Some(1),
            ..tiny_config()
        });
        assert_eq!(classic, explicit);
    }

    #[test]
    fn service_log_emits_lifecycle_and_summary_events() {
        let schedule = vec![
            spec("a", 0, QualityTier::Standard),
            spec("b", 0, QualityTier::Standard).with_window(0, Some(1)),
        ];
        let mut broker = SessionBroker::new(tiny_config(), schedule);
        broker.advance_to(2);
        broker.finish();
        let collector = netlogger::Collector::wall();
        log_service_stats(
            &collector.logger("service", "session-broker"),
            None,
            broker.stats(),
            broker.events(),
        );
        let log = collector.finish();
        assert_eq!(log.with_tag(tags::SERVICE_JOIN).count(), 2);
        assert_eq!(log.with_tag(tags::SERVICE_LEAVE).count(), 2);
        assert_eq!(log.with_tag(tags::SERVICE_STATS).count(), 1);
    }
}
