//! The retained naive-scan broker: the differential oracle for the indexed
//! admission ledger (test-only).
//!
//! [`ScanBroker`] is the pre-ledger [`super::SessionBroker`] implementation,
//! kept verbatim: every admission question answered by scanning the `live`
//! vector (re-summing tier costs and rebuilding a viewpoint `HashSet` per
//! probe), every eviction and leave an O(live) `retain`, every per-frame
//! joiner found by scanning the whole schedule.  O(N²) on a frame-0 burst —
//! which is exactly why it is trustworthy as an oracle: the decision logic
//! is written directly against the constraint definitions, with no index to
//! fall out of sync.
//!
//! The differential property tests at the bottom drive both brokers over
//! randomized arrival mixes (joins, dwells, tiers, viewpoints, capacities,
//! backend placements, shard counts) and require decision-for-decision
//! equality: identical event streams (admission order, reject reasons,
//! eviction victim order including the spare-minimization pass), identical
//! per-advance returns, identical stats, identical live sets.

use super::{sharded, BackendPlacement, RejectReason, ServiceConfig, ServiceStats, SessionEvent, SessionSpec};
use std::collections::HashSet;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionState {
    Pending,
    Live,
    Rejected,
    Evicted,
    Left,
}

/// The scan-based admission state machine (see the module docs).
#[derive(Debug)]
pub(crate) struct ScanBroker {
    config: ServiceConfig,
    schedule: Vec<SessionSpec>,
    state: Vec<SessionState>,
    /// Live schedule indices, in admission order.
    live: Vec<usize>,
    next_frame: u32,
    live_per_frame: Vec<(u64, u64)>,
    events: Vec<(u32, SessionEvent)>,
    stats: ServiceStats,
}

impl ScanBroker {
    pub(crate) fn new(config: ServiceConfig, schedule: Vec<SessionSpec>) -> ScanBroker {
        let stats = ServiceStats {
            sessions_offered: schedule.len() as u64,
            ..ServiceStats::default()
        };
        ScanBroker {
            state: vec![SessionState::Pending; schedule.len()],
            live: Vec::new(),
            next_frame: 0,
            live_per_frame: Vec::new(),
            events: Vec::new(),
            stats,
            config,
            schedule,
        }
    }

    pub(crate) fn live(&self) -> &[usize] {
        &self.live
    }

    pub(crate) fn live_count_at(&self, frame: u32) -> u64 {
        self.live_per_frame.get(frame as usize).map(|&(l, _)| l).unwrap_or(0)
    }

    pub(crate) fn events(&self) -> &[(u32, SessionEvent)] {
        &self.events
    }

    pub(crate) fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    fn cost(&self, session: usize) -> u64 {
        self.schedule[session].tier.cost_units()
    }

    /// First violated constraint if `incoming` joined the sessions in `live`.
    fn admission_block(&self, live: &[usize], incoming: usize) -> Option<RejectReason> {
        if live.len() + 1 > self.config.max_sessions {
            return Some(RejectReason::SessionSlots);
        }
        let units: u64 = live.iter().map(|&s| self.cost(s)).sum::<u64>() + self.cost(incoming);
        if units > self.config.link_capacity_units {
            return Some(RejectReason::LinkCapacity);
        }
        let mut viewpoints: HashSet<u32> = live.iter().map(|&s| self.schedule[s].viewpoint).collect();
        viewpoints.insert(self.schedule[incoming].viewpoint);
        if self.render_slots_blocked(&viewpoints) {
            return Some(RejectReason::RenderSlots);
        }
        None
    }

    fn render_slots_blocked(&self, viewpoints: &HashSet<u32>) -> bool {
        let backends = self.config.backend_count();
        if backends == 1 || self.config.backend_placement() == BackendPlacement::LeastLoaded {
            return viewpoints.len() as u32 > self.config.render_slots;
        }
        let mut per_backend = vec![0u64; backends];
        for &vp in viewpoints {
            per_backend[sharded::shard_for_viewpoint(vp, backends)] += 1;
        }
        per_backend
            .iter()
            .enumerate()
            .any(|(b, &n)| n > sharded::share(u64::from(self.config.render_slots), backends, b))
    }

    fn try_admit(&mut self, frame: u32, session: usize) {
        if self.admission_block(&self.live, session).is_none() {
            self.admit(frame, session);
            return;
        }
        let newcomer_priority = self.schedule[session].tier.priority();
        let mut candidates: Vec<(usize, usize)> = self
            .live
            .iter()
            .enumerate()
            .filter(|&(_, &s)| self.schedule[s].tier.priority() < newcomer_priority)
            .map(|(pos, &s)| (pos, s))
            .collect();
        candidates.sort_by_key(|&(pos, s)| (self.schedule[s].tier.priority(), std::cmp::Reverse(pos)));
        let mut victims: Vec<usize> = Vec::new();
        let mut remaining: Vec<usize> = self.live.clone();
        let mut feasible = false;
        for &(_, victim) in &candidates {
            remaining.retain(|&s| s != victim);
            victims.push(victim);
            if self.admission_block(&remaining, session).is_none() {
                feasible = true;
                break;
            }
        }
        if !feasible {
            let reason = self
                .admission_block(&self.live, session)
                .expect("admission was blocked");
            self.state[session] = SessionState::Rejected;
            self.stats.sessions_rejected += 1;
            self.events.push((frame, SessionEvent::Rejected { session, reason }));
            return;
        }
        let mut spared: HashSet<usize> = HashSet::new();
        for &candidate in &victims {
            let trial: Vec<usize> = self
                .live
                .iter()
                .copied()
                .filter(|s| !victims.contains(s) || spared.contains(s) || *s == candidate)
                .collect();
            if self.admission_block(&trial, session).is_none() {
                spared.insert(candidate);
            }
        }
        victims.retain(|v| !spared.contains(v));
        for victim in victims {
            self.live.retain(|&s| s != victim);
            self.state[victim] = SessionState::Evicted;
            self.stats.sessions_evicted += 1;
            self.events.push((frame, SessionEvent::Evicted { session: victim }));
        }
        self.admit(frame, session);
    }

    fn admit(&mut self, frame: u32, session: usize) {
        self.live.push(session);
        self.state[session] = SessionState::Live;
        self.stats.sessions_admitted += 1;
        if let (Some(pace), Some(farm)) = (self.schedule[session].pace_rate_mbps, self.config.farm_egress_mbps) {
            if pace < farm {
                self.stats.flow_limited_sessions += 1;
            }
        }
        self.events.push((frame, SessionEvent::Admitted { session }));
    }

    pub(crate) fn advance_to(&mut self, frame: u32) -> Vec<SessionEvent> {
        let first_new = self.events.len();
        while self.next_frame <= frame {
            let f = self.next_frame;
            let leavers: Vec<usize> = self
                .live
                .iter()
                .copied()
                .filter(|&s| self.schedule[s].leave_frame == Some(f))
                .collect();
            for s in leavers {
                self.live.retain(|&l| l != s);
                self.state[s] = SessionState::Left;
                self.events.push((f, SessionEvent::Left { session: s }));
            }
            let joiners: Vec<usize> = (0..self.schedule.len())
                .filter(|&s| self.state[s] == SessionState::Pending && self.schedule[s].join_frame == f)
                .collect();
            for s in joiners {
                if !self.schedule[s].live_at(f) {
                    self.state[s] = SessionState::Left;
                    continue;
                }
                self.try_admit(f, s);
            }
            let live = self.live.len() as u64;
            let viewpoints = self
                .live
                .iter()
                .map(|&s| self.schedule[s].viewpoint)
                .collect::<HashSet<u32>>()
                .len() as u64;
            self.live_per_frame.push((live, viewpoints));
            self.stats.render_requests += live;
            self.stats.renders_performed += viewpoints;
            self.stats.peak_live_sessions = self.stats.peak_live_sessions.max(live);
            self.next_frame += 1;
        }
        self.events[first_new..].iter().map(|&(_, e)| e).collect()
    }

    pub(crate) fn finish(&mut self) -> Vec<SessionEvent> {
        let frame = self.next_frame;
        let first_new = self.events.len();
        for s in std::mem::take(&mut self.live) {
            self.state[s] = SessionState::Left;
            self.events.push((frame, SessionEvent::Left { session: s }));
        }
        self.events[first_new..].iter().map(|&(_, e)| e).collect()
    }

    pub(crate) fn fold_fanout_load(&mut self, per_frame: &[(u64, u64)]) {
        for (f, &(chunks, bytes)) in per_frame.iter().enumerate() {
            let live = self.live_count_at(f as u32);
            self.stats.fanout_chunks += chunks * live;
            self.stats.fanout_bytes += bytes * live;
        }
    }
}

#[cfg(test)]
mod differential {
    use super::super::{QualityTier, SessionBroker, ShardedBroker};
    use super::*;
    use proptest::prelude::*;

    const TIERS: [QualityTier; 3] = [QualityTier::Preview, QualityTier::Standard, QualityTier::Interactive];

    /// A randomized arrival mix: (join, dwell, viewpoint, tier) per session.
    fn arrival_mix() -> impl Strategy<Value = Vec<(u32, u32, u32, usize)>> {
        proptest::collection::vec((0u32..6, 0u32..7, 0u32..6, 0usize..3), 1..24)
    }

    fn schedule_from(mix: &[(u32, u32, u32, usize)], frames: u32) -> Vec<SessionSpec> {
        mix.iter()
            .enumerate()
            .map(|(i, &(join, dwell, viewpoint, tier))| {
                let mut spec = SessionSpec::new(format!("s{i}"), viewpoint, TIERS[tier]);
                spec.join_frame = join.min(frames.saturating_sub(1));
                // dwell == 0 leaves `leave_frame` unset (stays to the end);
                // a dwell can also expire before the join, exercising the
                // never-materializes path.
                if dwell > 0 {
                    spec.leave_frame = Some((spec.join_frame + dwell - 1).min(frames));
                }
                spec
            })
            .collect()
    }

    /// Drive both brokers frame by frame and require decision-for-decision
    /// equality: per-advance event returns, the full timestamped event
    /// stream, stats, and the live set after every frame.
    fn assert_identical(config: &ServiceConfig, schedule: &[SessionSpec], frames: u32) {
        let mut indexed = SessionBroker::new(config.clone(), schedule.to_vec());
        let mut oracle = ScanBroker::new(config.clone(), schedule.to_vec());
        for f in 0..frames {
            assert_eq!(
                indexed.advance_to(f),
                oracle.advance_to(f),
                "frame {f} decisions diverged\nconfig: {config:?}\nschedule: {schedule:?}"
            );
            assert_eq!(indexed.live(), oracle.live(), "live set diverged at frame {f}");
        }
        assert_eq!(indexed.finish(), oracle.finish(), "finish() diverged");
        let per_frame: Vec<(u64, u64)> = (0..frames)
            .map(|f| (u64::from(f) + 2, (u64::from(f) + 1) * 100))
            .collect();
        indexed.fold_fanout_load(&per_frame);
        oracle.fold_fanout_load(&per_frame);
        assert_eq!(indexed.stats(), oracle.stats(), "stats diverged");
        assert_eq!(indexed.events(), oracle.events(), "event streams diverged");
        for f in 0..frames {
            assert_eq!(indexed.live_count_at(f), oracle.live_count_at(f), "live_count_at({f})");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Pooled single-backend capacity, squeezed so bigger mixes force
        /// rejections and eviction cascades (with spared victims).
        #[test]
        fn indexed_ledger_matches_the_scan_oracle_under_churn(
            mix in arrival_mix(),
            frames in 3u32..9,
            max_sessions in 2usize..9,
            link_units in 4u64..20,
            render_slots in 1u32..5,
        ) {
            let config = ServiceConfig {
                max_sessions,
                link_capacity_units: link_units,
                render_slots,
                queue_depth: 8,
                ..ServiceConfig::default()
            };
            assert_identical(&config, &schedule_from(&mix, frames), frames);
        }

        /// Multi-backend render farms under both placement policies: the
        /// per-backend distinct-viewpoint charge must stay exact through
        /// joins, leaves, evictions and spares.
        #[test]
        fn indexed_ledger_matches_the_scan_oracle_across_backends(
            mix in arrival_mix(),
            frames in 3u32..8,
            backends in 1usize..4,
            placement in 0usize..2,
            render_slots in 1u32..7,
        ) {
            let config = ServiceConfig {
                max_sessions: 8,
                link_capacity_units: 18,
                render_slots,
                queue_depth: 8,
                backends: Some(backends),
                placement: Some([BackendPlacement::ViewpointHash, BackendPlacement::LeastLoaded][placement]),
                ..ServiceConfig::default()
            };
            assert_identical(&config, &schedule_from(&mix, frames), frames);
        }

        /// Sharded: every shard of a [`ShardedBroker`] must replay its
        /// scan-oracle twin decision for decision, over the same partition
        /// and per-shard capacity split the sharded broker computes.
        #[test]
        fn every_shard_matches_its_scan_oracle(
            mix in arrival_mix(),
            frames in 3u32..8,
            shards in 1usize..5,
        ) {
            let config = ServiceConfig {
                max_sessions: 9,
                link_capacity_units: 16,
                render_slots: 4,
                queue_depth: 8,
                shards: Some(shards),
                ..ServiceConfig::default()
            };
            let schedule = schedule_from(&mix, frames);
            let mut sharded = ShardedBroker::new(config.clone(), schedule.clone());
            let mut oracles: Vec<ScanBroker> = sharded
                .shard_configs()
                .into_iter()
                .zip(sharded.shard_schedules())
                .map(|(cfg, sched)| ScanBroker::new(cfg, sched))
                .collect();
            for f in 0..frames {
                sharded.advance_to(f);
                for o in &mut oracles {
                    o.advance_to(f);
                }
            }
            sharded.finish();
            for (i, o) in oracles.iter_mut().enumerate() {
                o.finish();
                prop_assert_eq!(
                    sharded.shard_events(i),
                    o.events(),
                    "shard {}/{} diverged from its oracle", i, shards
                );
            }
        }
    }
}
