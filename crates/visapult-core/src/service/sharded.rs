//! Sharded session brokers: the service layer partitioned by viewpoint.
//!
//! One [`SessionBroker`] behind one lock serializes every join, eviction and
//! frame decision — measurably the dominant cost of the 10k-session async
//! plane.  [`ShardedBroker`] partitions the schedule into S independent
//! brokers by viewpoint hash: sessions sharing a viewpoint (and therefore a
//! shared render) always land in the same shard, each shard owns a
//! demand-proportional share of the admission capacity (session and link
//! budgets split by its scheduled sessions, render slots by its distinct
//! viewpoints — totals conserved exactly), and each shard's state
//! machine is the *unchanged* deterministic [`SessionBroker`].  Shard
//! telemetry folds back into one [`ServiceStats`], and the merged lifecycle
//! event stream is globally indexed — at `shards = 1` everything is
//! byte-identical to the plain broker, so replay fingerprints only move when
//! a scenario actually asks for sharding.
//!
//! The plane-side shards live behind counted locks, whose
//! acquisition/contention/hold counters ([`ShardLockStats`]) are reported so
//! a shard sweep can show where the lock time went.

use super::{ServiceConfig, ServiceStats, SessionBroker, SessionEvent, SessionSpec};
use parking_lot::{Mutex, MutexGuard};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// FNV-1a shard assignment: the owning shard (or backend) of a viewpoint.
/// Shared by the broker partition and the per-backend render-slot charge so
/// "same viewpoint, same owner" holds across the whole service layer.
pub(crate) fn shard_for_viewpoint(viewpoint: u32, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    let mut h: u64 = 0xcbf29ce484222325;
    for b in viewpoint.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % shards as u64) as usize
}

/// Partition `total` capacity units across `parts` owners: owner `index`
/// gets `total / parts`, with the first `total % parts` owners absorbing the
/// remainder — so shares always sum exactly to `total` and
/// `share(t, 1, 0) == t`.
pub(crate) fn share(total: u64, parts: usize, index: usize) -> u64 {
    let parts = parts as u64;
    total / parts + u64::from((index as u64) < total % parts)
}

/// Apportion `total` capacity units across owners proportionally to
/// `weights` (largest-remainder method, ties to the lower index), summing
/// exactly to `total`.  Zero total weight falls back to the even
/// [`share`] split.  The sharded broker uses *demand* as the weight —
/// sessions map to shards by viewpoint hash, not uniformly, so an even
/// split would starve the shards the schedule actually lands on (a shard
/// holding every session of a hot viewpoint but `0` of the render slots
/// would reject all of them).
pub(crate) fn apportion(total: u64, weights: &[u64]) -> Vec<u64> {
    let sum: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if sum == 0 {
        return (0..weights.len()).map(|i| share(total, weights.len(), i)).collect();
    }
    let mut shares: Vec<u64> = weights
        .iter()
        .map(|&w| (u128::from(total) * u128::from(w) / sum) as u64)
        .collect();
    let mut leftover = total - shares.iter().sum::<u64>();
    // Hand the leftover units to the largest fractional remainders.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| {
        let rem = u128::from(total) * u128::from(weights[i]) % sum;
        (std::cmp::Reverse(rem), i)
    });
    for &i in &order {
        if leftover == 0 {
            break;
        }
        shares[i] += 1;
        leftover -= 1;
    }
    shares
}

// ---------------------------------------------------------------------------
// The sharded broker
// ---------------------------------------------------------------------------

/// S independent [`SessionBroker`]s presenting as one: the deterministic
/// scale-out seam of the service layer.
///
/// Sessions are assigned to shards by viewpoint hash, so shared renders never
/// straddle shards and `renders_performed` (distinct live viewpoints) sums
/// exactly.  Events carry *global* schedule indices; within a frame the
/// merged stream orders shard 0's decisions before shard 1's, which at
/// `shards = 1` degenerates to the plain broker's order bit for bit.
#[derive(Debug)]
pub struct ShardedBroker {
    config: ServiceConfig,
    shards: Vec<SessionBroker>,
    /// Per shard: the global schedule index of each local session.
    globals: Vec<Vec<usize>>,
}

impl ShardedBroker {
    /// Partition `schedule` into `config.shard_count()` brokers, each
    /// admitting against its demand-proportional share of the capacity:
    /// session slots and link units split by each shard's scheduled
    /// sessions (tier-weighted for the link), render slots by its distinct
    /// viewpoints.  The totals are conserved exactly (largest-remainder
    /// apportionment), so a
    /// shard sweep compares equal aggregate capacity at every S.
    pub fn new(config: ServiceConfig, schedule: Vec<SessionSpec>) -> ShardedBroker {
        let shards = config.shard_count();
        let mut schedules: Vec<Vec<SessionSpec>> = vec![Vec::new(); shards];
        let mut globals: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (global, spec) in schedule.into_iter().enumerate() {
            let shard = shard_for_viewpoint(spec.viewpoint, shards);
            schedules[shard].push(spec);
            globals[shard].push(global);
        }
        let sessions_w: Vec<u64> = schedules.iter().map(|s| s.len() as u64).collect();
        let units_w: Vec<u64> = schedules
            .iter()
            .map(|s| s.iter().map(|spec| spec.tier.cost_units()).sum())
            .collect();
        let viewpoints_w: Vec<u64> = schedules
            .iter()
            .map(|s| {
                let mut vps: Vec<u32> = s.iter().map(|spec| spec.viewpoint).collect();
                vps.sort_unstable();
                vps.dedup();
                vps.len() as u64
            })
            .collect();
        let max_sessions = apportion(config.max_sessions as u64, &sessions_w);
        let link_units = apportion(config.link_capacity_units, &units_w);
        let render_slots = apportion(u64::from(config.render_slots), &viewpoints_w);
        let brokers = schedules
            .into_iter()
            .enumerate()
            .map(|(i, shard_schedule)| {
                let shard_config = ServiceConfig {
                    max_sessions: max_sessions[i] as usize,
                    link_capacity_units: link_units[i],
                    render_slots: render_slots[i] as u32,
                    queue_depth: config.queue_depth,
                    farm_egress_mbps: config.farm_egress_mbps,
                    shards: None,
                    backends: config.backends,
                    placement: config.placement,
                };
                SessionBroker::new(shard_config, shard_schedule)
            })
            .collect();
        ShardedBroker {
            config,
            shards: brokers,
            globals,
        }
    }

    /// The global capacity configuration (before the per-shard split).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total sessions in the schedule across every shard.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.session_count()).sum()
    }

    /// Advance every shard to `frame`.  Returns the new lifecycle events in
    /// merged order (frame ascending, shard order within a frame), with
    /// global session indices.
    pub fn advance_to(&mut self, frame: u32) -> Vec<SessionEvent> {
        let starts: Vec<usize> = self.shards.iter().map(|s| s.events().len()).collect();
        for shard in &mut self.shards {
            shard.advance_to(frame);
        }
        self.merged_since(&starts).into_iter().map(|(_, e)| e).collect()
    }

    /// End of campaign: every still-live session leaves, on every shard.
    pub fn finish(&mut self) -> Vec<SessionEvent> {
        let starts: Vec<usize> = self.shards.iter().map(|s| s.events().len()).collect();
        for shard in &mut self.shards {
            shard.finish();
        }
        self.merged_since(&starts).into_iter().map(|(_, e)| e).collect()
    }

    /// Every lifecycle event so far, merged across shards with global
    /// session indices.
    pub fn events(&self) -> Vec<(u32, SessionEvent)> {
        self.merged_since(&vec![0; self.shards.len()])
    }

    /// Summed telemetry across shards.  `peak_live_sessions` is recomputed
    /// as the true global peak (the max over frames of the summed per-shard
    /// live counts), not the max of per-shard peaks.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = ServiceStats::default();
        for shard in &self.shards {
            stats.merge(shard.stats());
        }
        let frames = self.shards.iter().map(|s| s.next_frame()).max().unwrap_or(0);
        let mut peak = 0u64;
        for f in 0..frames {
            peak = peak.max(self.live_count_at(f));
        }
        stats.peak_live_sessions = peak;
        stats
    }

    /// Sessions live at an already-processed frame, summed across shards.
    pub fn live_count_at(&self, frame: u32) -> u64 {
        self.shards.iter().map(|s| s.live_count_at(frame)).sum()
    }

    /// Fold the offered fan-out load into every shard's stats (each weights
    /// the per-frame chunk counts by its own live sessions; the sum is the
    /// global weighting).
    pub fn fold_fanout_load(&mut self, per_frame: &[(u64, u64)]) {
        for shard in &mut self.shards {
            shard.fold_fanout_load(per_frame);
        }
    }

    /// Split into the per-shard brokers and their global index maps (the
    /// planes put each broker behind its own lock), keeping the config.
    pub(crate) fn into_parts(self) -> (ServiceConfig, Vec<SessionBroker>, Vec<Vec<usize>>) {
        (self.config, self.shards, self.globals)
    }

    /// Reassemble after a plane run, for the final stats/events fold.
    pub(crate) fn from_parts(
        config: ServiceConfig,
        shards: Vec<SessionBroker>,
        globals: Vec<Vec<usize>>,
    ) -> ShardedBroker {
        ShardedBroker {
            config,
            shards,
            globals,
        }
    }

    /// The per-shard capacity configs the partition computed (test-only:
    /// the differential oracle rebuilds each shard's twin from these).
    #[cfg(test)]
    pub(crate) fn shard_configs(&self) -> Vec<ServiceConfig> {
        self.shards.iter().map(|s| s.config().clone()).collect()
    }

    /// The per-shard sub-schedules, in shard-local order (test-only).
    #[cfg(test)]
    pub(crate) fn shard_schedules(&self) -> Vec<Vec<SessionSpec>> {
        self.shards
            .iter()
            .map(|s| (0..s.session_count()).map(|i| s.spec(i).clone()).collect())
            .collect()
    }

    /// One shard's raw (shard-local) event stream (test-only).
    #[cfg(test)]
    pub(crate) fn shard_events(&self, shard: usize) -> &[(u32, SessionEvent)] {
        self.shards[shard].events()
    }

    /// Merge each shard's events from `starts[shard]` onward: frame
    /// ascending, shard order within a frame, intra-shard order preserved,
    /// local indices remapped to global.
    fn merged_since(&self, starts: &[usize]) -> Vec<(u32, SessionEvent)> {
        let mut cursors = starts.to_vec();
        let mut merged = Vec::new();
        loop {
            let mut best: Option<(u32, usize)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                if let Some(&(frame, _)) = shard.events().get(cursors[i]) {
                    if best.map(|(bf, _)| frame < bf).unwrap_or(true) {
                        best = Some((frame, i));
                    }
                }
            }
            let Some((frame, i)) = best else { break };
            while let Some(&(f, event)) = self.shards[i].events().get(cursors[i]) {
                if f != frame {
                    break;
                }
                merged.push((frame, remap_event(event, &self.globals[i])));
                cursors[i] += 1;
            }
        }
        merged
    }
}

/// Rewrite an event's local schedule index to the global one.
fn remap_event(event: SessionEvent, globals: &[usize]) -> SessionEvent {
    match event {
        SessionEvent::Admitted { session } => SessionEvent::Admitted {
            session: globals[session],
        },
        SessionEvent::Rejected { session, reason } => SessionEvent::Rejected {
            session: globals[session],
            reason,
        },
        SessionEvent::Evicted { session } => SessionEvent::Evicted {
            session: globals[session],
        },
        SessionEvent::Left { session } => SessionEvent::Left {
            session: globals[session],
        },
    }
}

// ---------------------------------------------------------------------------
// Counted locks
// ---------------------------------------------------------------------------

/// Per-shard lock telemetry: where the plane's lock time went.
///
/// Timing-dependent (like the delivery counters), so never fingerprinted;
/// reported so a shard sweep can prove whether the single-lock serialization
/// actually dissolved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLockStats {
    /// Which shard this lock guarded.
    pub shard: usize,
    /// Times the lock was taken.
    pub acquisitions: u64,
    /// Acquisitions that found the lock already held (blocked).
    pub contended: u64,
    /// Total nanoseconds the lock was held.
    pub hold_ns: u64,
}

/// A mutex that counts acquisitions, contention, and hold time.
pub(crate) struct CountedLock<T> {
    inner: Mutex<T>,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    hold_ns: AtomicU64,
}

impl<T> CountedLock<T> {
    pub(crate) fn new(value: T) -> CountedLock<T> {
        CountedLock {
            inner: Mutex::new(value),
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            hold_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn lock(&self) -> CountedGuard<'_, T> {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        let probe = self.inner.try_lock();
        if probe.is_none() {
            self.contended.fetch_add(1, Ordering::Relaxed);
        }
        // Under lockdep a successful probe is re-taken through the blocking
        // path: try_lock records no ordering edges, and the shard locks are
        // exactly what the deadlock detector is here to watch.
        #[cfg(feature = "lockdep")]
        let guard = {
            drop(probe);
            self.inner.lock()
        };
        #[cfg(not(feature = "lockdep"))]
        let guard = match probe {
            Some(g) => g,
            None => self.inner.lock(),
        };
        CountedGuard {
            guard,
            held_since: Instant::now(),
            hold_ns: &self.hold_ns,
        }
    }

    /// Name this lock in lockdep cycle reports (no-op without the feature).
    pub(crate) fn lockdep_label(&self, label: &str) {
        self.inner.lockdep_label(label);
    }

    /// Snapshot the counters as this shard's report entry.
    pub(crate) fn stats(&self, shard: usize) -> ShardLockStats {
        ShardLockStats {
            shard,
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            hold_ns: self.hold_ns.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

pub(crate) struct CountedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    held_since: Instant,
    hold_ns: &'a AtomicU64,
}

impl<T> std::ops::Deref for CountedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for CountedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for CountedGuard<'_, T> {
    fn drop(&mut self) {
        let ns = self.held_since.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.hold_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::super::QualityTier;
    use super::*;

    fn spec(name: &str, viewpoint: u32, tier: QualityTier) -> SessionSpec {
        SessionSpec::new(name, viewpoint, tier)
    }

    fn mixed_schedule() -> Vec<SessionSpec> {
        (0..24)
            .map(|i| {
                let tier = match i % 3 {
                    0 => QualityTier::Interactive,
                    1 => QualityTier::Standard,
                    _ => QualityTier::Preview,
                };
                spec(&format!("s{i}"), i % 7, tier).with_window(i % 4, if i % 5 == 0 { Some(6) } else { None })
            })
            .collect()
    }

    #[test]
    fn shares_sum_to_the_total_and_are_near_even() {
        for total in [1u64, 7, 8, 64, 257] {
            for parts in [1usize, 2, 3, 8, 13] {
                let shares: Vec<u64> = (0..parts).map(|i| share(total, parts, i)).collect();
                assert_eq!(shares.iter().sum::<u64>(), total, "total {total} x {parts}");
                let (min, max) = (shares.iter().min().unwrap(), shares.iter().max().unwrap());
                assert!(max - min <= 1, "uneven split {shares:?}");
            }
        }
        assert_eq!(share(64, 1, 0), 64);
    }

    #[test]
    fn apportion_follows_demand_and_conserves_the_total() {
        // Proportional, exact total, deterministic.
        assert_eq!(apportion(10, &[1, 1]), vec![5, 5]);
        assert_eq!(apportion(8, &[3, 1]), vec![6, 2]);
        assert_eq!(
            apportion(7, &[2, 1]),
            vec![5, 2],
            "largest remainder takes the leftover"
        );
        // A shard with no demand gets nothing; a demanding shard is never
        // starved while slots outnumber the demanding shards.
        assert_eq!(apportion(4, &[0, 0, 0, 0, 1, 1, 1, 1]), vec![0, 0, 0, 0, 1, 1, 1, 1]);
        // Zero demand everywhere: fall back to the even split.
        assert_eq!(apportion(5, &[0, 0]), vec![3, 2]);
        // One shard owns everything.
        assert_eq!(apportion(64, &[17]), vec![64]);
        for total in [1u64, 7, 64, 10_000] {
            for weights in [vec![5, 0, 3, 9], vec![1, 2, 3, 4, 5], vec![0, 0, 7]] {
                assert_eq!(
                    apportion(total, &weights).iter().sum::<u64>(),
                    total,
                    "{total} x {weights:?}"
                );
            }
        }
    }

    #[test]
    fn sharding_a_hot_viewpoint_does_not_starve_its_shard() {
        // 4 viewpoints hashed into 8 shards: at most 4 shards own sessions.
        // An even split would hand render slots to empty shards and reject
        // everything; the demand split must admit every session.
        let config = ServiceConfig {
            max_sessions: 128,
            link_capacity_units: 1024,
            render_slots: 4,
            queue_depth: 8,
            shards: Some(8),
            ..ServiceConfig::default()
        };
        let schedule: Vec<SessionSpec> = (0..128)
            .map(|i| spec(&format!("s{i}"), i % 4, QualityTier::Standard))
            .collect();
        let mut sharded = ShardedBroker::new(config, schedule);
        sharded.advance_to(0);
        sharded.finish();
        let stats = sharded.stats();
        assert_eq!(stats.sessions_admitted, 128, "{stats:?}");
        assert_eq!(stats.sessions_rejected, 0, "{stats:?}");
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 8] {
            for vp in 0..256u32 {
                let s = shard_for_viewpoint(vp, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for_viewpoint(vp, shards), "stable per viewpoint");
            }
        }
    }

    #[test]
    fn one_shard_is_byte_identical_to_the_plain_broker() {
        let config = ServiceConfig {
            max_sessions: 12,
            link_capacity_units: 30,
            render_slots: 4,
            queue_depth: 8,
            shards: Some(1),
            ..ServiceConfig::default()
        };
        let mut plain = SessionBroker::new(config.clone(), mixed_schedule());
        let mut sharded = ShardedBroker::new(config, mixed_schedule());
        for frame in [0, 2, 5, 9] {
            assert_eq!(plain.advance_to(frame), sharded.advance_to(frame), "frame {frame}");
        }
        assert_eq!(plain.finish(), sharded.finish());
        plain.fold_fanout_load(&[(3, 300); 10]);
        sharded.fold_fanout_load(&[(3, 300); 10]);
        assert_eq!(plain.stats(), &sharded.stats());
        assert_eq!(plain.events(), &sharded.events()[..]);
    }

    #[test]
    fn shards_partition_the_schedule_by_viewpoint_and_conserve_the_counters() {
        let config = ServiceConfig {
            max_sessions: 24,
            link_capacity_units: 96,
            render_slots: 8,
            queue_depth: 8,
            shards: Some(4),
            ..ServiceConfig::default()
        };
        let schedule = mixed_schedule();
        let mut sharded = ShardedBroker::new(config, schedule.clone());
        assert_eq!(sharded.shard_count(), 4);
        assert_eq!(sharded.session_count(), schedule.len());
        sharded.advance_to(9);
        sharded.finish();
        let stats = sharded.stats();
        assert_eq!(stats.sessions_offered, schedule.len() as u64);
        assert_eq!(
            stats.sessions_admitted + stats.sessions_rejected,
            stats.sessions_offered,
            "every offered session is decided exactly once (none were evicted-then-recounted here): {stats:?}"
        );
        // The merged event stream uses global indices: every index in range,
        // each session admitted or rejected at most once.
        let events = sharded.events();
        let mut decided = std::collections::HashSet::new();
        for (_, e) in &events {
            assert!(e.session() < schedule.len());
            if matches!(e, SessionEvent::Admitted { .. } | SessionEvent::Rejected { .. }) {
                assert!(decided.insert(e.session()), "double decision for {}", e.session());
            }
        }
        // Frames are non-decreasing in the merged stream.
        for pair in events.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        // Determinism: a second run is bit-identical.
        let mut again = ShardedBroker::new(
            ServiceConfig {
                max_sessions: 24,
                link_capacity_units: 96,
                render_slots: 8,
                queue_depth: 8,
                shards: Some(4),
                ..ServiceConfig::default()
            },
            schedule,
        );
        again.advance_to(9);
        again.finish();
        assert_eq!(stats, again.stats());
        assert_eq!(events, again.events());
    }

    #[test]
    fn counted_lock_counts_acquisitions_and_contention() {
        let lock = std::sync::Arc::new(CountedLock::new(0u64));
        {
            let mut g = lock.lock();
            *g += 1;
        }
        let stats = lock.stats(3);
        assert_eq!(stats.shard, 3);
        assert_eq!(stats.acquisitions, 1);
        assert_eq!(stats.contended, 0);
        // Contention: a second thread acquires while the holder spins until
        // the waiter has registered contention (the counter increments before
        // blocking), so no wall-clock sleep is needed.
        let other = std::sync::Arc::clone(&lock);
        let held = lock.lock();
        let waiter = std::thread::spawn(move || {
            let mut g = other.lock();
            *g += 1;
        });
        while lock.stats(0).contended == 0 {
            std::thread::yield_now();
        }
        drop(held);
        waiter.join().unwrap();
        let stats = lock.stats(0);
        assert_eq!(stats.acquisitions, 3);
        assert!(stats.contended >= 1, "{stats:?}");
        assert!(stats.hold_ns > 0);
        let lock = std::sync::Arc::try_unwrap(lock).ok().expect("sole owner");
        assert_eq!(lock.into_inner(), 2);
    }
}
