//! Shared `#[cfg(test)]` fixtures for the in-crate unit tests.
//!
//! The transport, viewer, backend and service tests all need the same three
//! things — a deterministic `FramePayload`, a bundle of striped links, and a
//! way to drain receivers concurrently so bounded queues do not deadlock the
//! sender under test.  They used to each carry their own copy; this module is
//! the single home.

use crate::protocol::{FramePayload, HeavyPayload, LightPayload};
use crate::transport::{drain_frames, striped_link, StripeReceiver, StripeSender, TransportConfig};
use bytes::Bytes;
use std::sync::Arc;
use std::thread::JoinHandle;
use volren::RgbaImage;

/// A frame with a byte-pattern texture (`tex_size`² RGBA8) and a small fixed
/// geometry block — exact enough for round-trip equality assertions.
pub(crate) fn sample_frame(rank: u32, frame: u32, tex_size: usize) -> FramePayload {
    let texture: Bytes = (0..tex_size * tex_size * 4)
        .map(|i| (i % 251) as u8)
        .collect::<Vec<u8>>()
        .into();
    FramePayload {
        light: LightPayload {
            frame,
            rank,
            texture_width: tex_size as u32,
            texture_height: tex_size as u32,
            bytes_per_pixel: 4,
            quad_center: [1.0, 2.0, 3.0],
            quad_u: [4.0, 0.0, 0.0],
            quad_v: [0.0, 5.0, 0.0],
            geometry_segments: 3,
        },
        heavy: HeavyPayload {
            frame,
            rank,
            texture_rgba8: texture,
            geometry: Arc::new(vec![([0.0; 3], [1.0; 3]), ([2.0; 3], [3.0; 3]), ([4.0; 3], [5.0; 3])]),
        },
    }
}

/// A frame whose solid-color texture maps onto a quad stacked along Z by
/// rank — what the viewer/compositor tests render and assert coverage on.
pub(crate) fn flat_frame(rank: u32, frame: u32, size: usize) -> FramePayload {
    let mut img = RgbaImage::new(size, size);
    for y in 0..size {
        for x in 0..size {
            img.set(x, y, [1.0, 0.3, 0.1, 0.9]);
        }
    }
    FramePayload {
        light: LightPayload {
            frame,
            rank,
            texture_width: size as u32,
            texture_height: size as u32,
            bytes_per_pixel: 4,
            quad_center: [15.5, 15.5, 4.0 + rank as f32 * 8.0],
            quad_u: [16.0, 0.0, 0.0],
            quad_v: [0.0, 16.0, 0.0],
            geometry_segments: 1,
        },
        heavy: HeavyPayload {
            frame,
            rank,
            texture_rgba8: img.to_rgba8().into(),
            geometry: Arc::new(vec![([0.0; 3], [31.0, 31.0, 31.0])]),
        },
    }
}

/// One striped link per PE.
pub(crate) fn links(pes: usize, config: &TransportConfig) -> (Vec<StripeSender>, Vec<StripeReceiver>) {
    let mut senders = Vec::with_capacity(pes);
    let mut receivers = Vec::with_capacity(pes);
    for _ in 0..pes {
        let (tx, rx) = striped_link(config);
        senders.push(tx);
        receivers.push(rx);
    }
    (senders, receivers)
}

/// Drain each receiver on its own thread — the stripe queues are bounded, so
/// a sender under test would block on a full queue with no concurrent reader
/// (that is the backpressure working as designed).
pub(crate) fn spawn_drains(receivers: Vec<StripeReceiver>) -> Vec<JoinHandle<Vec<FramePayload>>> {
    receivers
        .into_iter()
        .map(|mut rx| std::thread::spawn(move || drain_frames(&mut rx).unwrap()))
        .collect()
}

/// Join the drain threads and collect every frame they saw.
pub(crate) fn join_drains(drains: Vec<JoinHandle<Vec<FramePayload>>>) -> Vec<FramePayload> {
    let mut payloads = Vec::new();
    for d in drains {
        payloads.extend(d.join().unwrap());
    }
    payloads
}
