//! The striped WAN transport: chunked, sequence-numbered, shaped frame links.
//!
//! "the Visapult viewer and back end use multiple TCP streams between each
//! back end PE and the viewer" (§3.4) — striping is what let the paper drive
//! an OC-12 at line rate when a single circa-2000 TCP window could not.  This
//! module gives the real pipeline that link for real: a [`striped_link`]
//! carries each frame as [`FrameChunk`]s fanned round-robin across N stripes,
//! each stripe a bounded in-process channel (backpressure) optionally paced
//! by a [`netsim::StripePacer`] derived from [`netsim::TcpModel`] — so the
//! real path *feels* the modeled WAN: untuned windows crawl, striping flies.
//!
//! Frames are encoded zero-copy ([`crate::protocol::FrameSegments`]): chunks
//! are O(1) [`Bytes`] slices of the payload's own buffers, and the receiving
//! [`FrameAssembler`] rejoins contiguous slices (`Bytes::try_join`) so a
//! texture crosses the link without a single memcpy.  Chunks carry global and
//! per-stripe sequence numbers; reassembly tolerates arbitrary arrival
//! interleavings and surfaces out-of-order and late-chunk telemetry.
//!
//! Both campaign paths consume the same configuration: the real pipeline runs
//! the link, the virtual-time path replays [`plan_chunks`] over the modeled
//! payload sizes, so the two report structurally identical
//! [`TransportStats`].

use crate::error::VisapultError;
use crate::protocol::{FramePayload, FrameSegments, LightPayload};
use bytes::Bytes;
use crossbeam::channel::{bounded, ReadyHook, Receiver, Sender, TryRecvError};
use netsim::{Bandwidth, StripePacer, TcpConfig, TcpModel};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Which circa-2000 TCP stack the link's stripes model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpTuning {
    /// 64 KB receiver windows: a single stream is window-limited on any WAN.
    Untuned,
    /// Large tuned buffers, as the DPSS and Visapult striped sockets used.
    WanTuned,
}

impl TcpTuning {
    /// The corresponding TCP model parameters.
    pub fn tcp_config(&self) -> TcpConfig {
        match self {
            TcpTuning::Untuned => TcpConfig::untuned(),
            TcpTuning::WanTuned => TcpConfig::wan_tuned(),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TcpTuning::Untuned => "untuned",
            TcpTuning::WanTuned => "wan-tuned",
        }
    }
}

/// Configuration of one striped back-end → viewer link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportConfig {
    /// Parallel stripes per PE link.
    pub stripes: u32,
    /// Maximum chunk payload size in bytes.
    pub chunk_bytes: usize,
    /// Bounded per-stripe queue depth, in chunks (backpressure).
    pub queue_depth: usize,
    /// TCP stack the stripes model (drives pacing and the virtual-time path).
    pub tuning: TcpTuning,
    /// Aggregate pacing rate in Mbps (`None` = unshaped, full speed).
    pub pace_rate_mbps: Option<f64>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            stripes: 4,
            chunk_bytes: 8 * 1024,
            queue_depth: 32,
            tuning: TcpTuning::WanTuned,
            pace_rate_mbps: None,
        }
    }
}

impl TransportConfig {
    /// Builder: set the stripe count.
    pub fn with_stripes(mut self, stripes: u32) -> Self {
        self.stripes = stripes.max(1);
        self
    }

    /// Builder: set the chunk size.
    pub fn with_chunk_bytes(mut self, chunk_bytes: usize) -> Self {
        self.chunk_bytes = chunk_bytes.max(1);
        self
    }

    /// Builder: pace the link to the steady-state goodput of a TCP model
    /// (its `streams` should be this config's stripe count) — the real link
    /// then experiences the modeled WAN behaviour.
    pub fn paced_by(mut self, model: &TcpModel) -> Self {
        self.pace_rate_mbps = Some(model.steady_throughput().mbps());
        self
    }

    /// True when the link is bandwidth-shaped.
    pub fn is_paced(&self) -> bool {
        self.pace_rate_mbps.is_some()
    }
}

/// Transport-layer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Every stripe of the link has disconnected.
    Closed,
    /// A chunk or reassembled frame failed validation.
    Corrupt(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "striped link closed"),
            TransportError::Corrupt(msg) => write!(f, "corrupt transport chunk: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<TransportError> for VisapultError {
    fn from(e: TransportError) -> Self {
        VisapultError::Protocol(e.to_string())
    }
}

/// One chunk of one frame, as carried by one stripe.
#[derive(Debug, Clone)]
pub struct FrameChunk {
    /// Timestep number.
    pub frame: u32,
    /// Sending PE rank.
    pub rank: u32,
    /// Global chunk index within the frame (reassembly order).
    pub seq: u32,
    /// Total chunks in the frame.
    pub total: u32,
    /// Stripe that carried this chunk.
    pub stripe: u32,
    /// Per-stripe FIFO sequence number.
    pub stripe_seq: u64,
    /// Which wire segment (0 light, 1 heavy header, 2 texture, 3 geometry)
    /// this chunk slices.
    pub segment: u8,
    /// The chunk bytes — an O(1) slice of the sender's segment buffer.
    pub payload: Bytes,
}

/// One planned chunk: where it falls in the wire segments and which stripe
/// carries it.  [`plan_chunks`] is a pure function shared by the real sender
/// and the virtual-time replay, so both paths stripe identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Global chunk index within the frame.
    pub seq: u32,
    /// Stripe assignment (round-robin by `seq`).
    pub stripe: u32,
    /// Wire segment index (0..4).
    pub segment: u8,
    /// Byte offset within the segment.
    pub start: usize,
    /// Chunk length in bytes.
    pub len: usize,
}

/// Split a frame's wire segments into chunks of at most `chunk_bytes`,
/// assigned round-robin across `stripes`.  Chunks never span a segment
/// boundary, so every chunk is a pure slice of one shared buffer.
pub fn plan_chunks(segment_lens: [usize; 4], chunk_bytes: usize, stripes: u32) -> Vec<ChunkPlan> {
    let chunk_bytes = chunk_bytes.max(1);
    let stripes = stripes.max(1);
    let mut plans = Vec::new();
    let mut seq = 0u32;
    for (segment, &len) in segment_lens.iter().enumerate() {
        let mut start = 0usize;
        while start < len {
            let take = chunk_bytes.min(len - start);
            plans.push(ChunkPlan {
                seq,
                stripe: seq % stripes,
                segment: segment as u8,
                start,
                len: take,
            });
            seq += 1;
            start += take;
        }
    }
    plans
}

/// Per-stripe counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeStats {
    /// Chunks this stripe carried.
    pub chunks: u64,
    /// Payload bytes this stripe carried.
    pub bytes: u64,
}

/// Telemetry of one striped link (or the sum of several).
///
/// `frames`, `chunks`, `bytes` and `per_stripe` are deterministic for a given
/// scenario seed (chunking and stripe assignment are pure functions of the
/// payload); `out_of_order_chunks`, `partial_updates` and `reassembly_copies`
/// depend on thread timing and are excluded from replay fingerprints, exactly
/// as wall-clock timestamps are.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Frames fully carried (sender) or reassembled (receiver).
    pub frames: u64,
    /// Total chunks.
    pub chunks: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Per-stripe breakdown, indexed by stripe.
    pub per_stripe: Vec<StripeStats>,
    /// Chunks that arrived out of global sequence order (receiver side).
    pub out_of_order_chunks: u64,
    /// Progressive scene updates emitted from incomplete frames (viewer).
    pub partial_updates: u64,
    /// Reassemblies that fell back to a gather copy because a segment's
    /// slices were not rejoinable in place (0 on the in-process link).
    pub reassembly_copies: u64,
}

impl TransportStats {
    /// Zeroed stats sized for `stripes`.
    pub fn with_stripes(stripes: usize) -> Self {
        TransportStats {
            per_stripe: vec![StripeStats::default(); stripes.max(1)],
            ..Default::default()
        }
    }

    /// Record one chunk on `stripe`.
    pub fn record_chunk(&mut self, stripe: u32, bytes: usize) {
        let idx = stripe as usize;
        if idx >= self.per_stripe.len() {
            self.per_stripe.resize(idx + 1, StripeStats::default());
        }
        self.per_stripe[idx].chunks += 1;
        self.per_stripe[idx].bytes += bytes as u64;
        self.chunks += 1;
        self.bytes += bytes as u64;
    }

    /// Number of stripes these stats cover.
    pub fn stripe_count(&self) -> usize {
        self.per_stripe.len()
    }

    /// Element-wise accumulate `other` into `self` (stripe vectors are padded
    /// to the longer of the two).
    pub fn merge(&mut self, other: &TransportStats) {
        self.frames += other.frames;
        self.chunks += other.chunks;
        self.bytes += other.bytes;
        self.out_of_order_chunks += other.out_of_order_chunks;
        self.partial_updates += other.partial_updates;
        self.reassembly_copies += other.reassembly_copies;
        if self.per_stripe.len() < other.per_stripe.len() {
            self.per_stripe.resize(other.per_stripe.len(), StripeStats::default());
        }
        for (mine, theirs) in self.per_stripe.iter_mut().zip(&other.per_stripe) {
            mine.chunks += theirs.chunks;
            mine.bytes += theirs.bytes;
        }
    }

    /// Mean payload bytes per stripe (how evenly the fan-out spread).
    pub fn mean_stripe_bytes(&self) -> f64 {
        if self.per_stripe.is_empty() {
            0.0
        } else {
            self.bytes as f64 / self.per_stripe.len() as f64
        }
    }
}

/// Cross-stripe arrival signal: every stripe's data hook bumps one shared
/// generation counter, so a receiver parked on link quiescence wakes on an
/// arrival to *any* stripe.  Parking on a single stripe's condvar — what
/// [`StripeReceiver::recv_chunk`] used to do — went blind to the other
/// stripes: chunks land round-robin (`seq % stripes`), so a receiver parked
/// on stripe 0 while a burst filled stripes 1..N ate its full timeout per
/// chunk, which is exactly the per-handoff latency cliff the threaded plane
/// showed at small session counts.
struct SignalState {
    generation: u64,
    /// Receivers currently parked in [`LinkSignal::wait_past`]; notifies are
    /// skipped while zero (the same sleeper-count gate the channels use), so
    /// a link nobody is parked on pays one uncontended lock per transition,
    /// no syscall.
    waiters: usize,
}

struct LinkSignal {
    state: Mutex<SignalState>,
    cv: Condvar,
}

impl LinkSignal {
    fn new() -> Arc<LinkSignal> {
        Arc::new(LinkSignal {
            state: Mutex::new(SignalState {
                generation: 0,
                waiters: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// Current generation; observe *before* scanning the stripes so a bump
    /// that races the scan is caught by [`LinkSignal::wait_past`].
    fn observe(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).generation
    }

    /// Record an arrival (or disconnect) and wake every parked receiver.
    fn bump(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.generation += 1;
        let wake = state.waiters > 0;
        drop(state);
        if wake {
            self.cv.notify_all();
        }
    }

    /// Park until the generation advances past `observed` or `timeout`
    /// elapses.  The timeout is a safety net, not the wakeup mechanism — the
    /// hooks fire on every empty→non-empty stripe transition and on sender
    /// disconnect, both of which are the only reasons a fully-drained scan
    /// would find something new.
    fn wait_past(&self, observed: u64, timeout: Duration) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.generation != observed {
            return;
        }
        state.waiters += 1;
        let (mut state, _) = self
            .cv
            .wait_timeout_while(state, timeout, |s| s.generation == observed)
            .unwrap_or_else(|e| e.into_inner());
        state.waiters -= 1;
    }
}

struct SenderState {
    pacer: Option<StripePacer>,
    stripe_seq: Vec<u64>,
}

/// The sending half of a striped link (one per back-end PE).
pub struct StripeSender {
    config: TransportConfig,
    txs: Vec<Sender<FrameChunk>>,
    state: Mutex<SenderState>,
    stats: Arc<Mutex<TransportStats>>,
}

impl StripeSender {
    /// The link configuration.
    pub fn config(&self) -> &TransportConfig {
        &self.config
    }

    /// Snapshot of the sender-side telemetry.
    pub fn stats(&self) -> TransportStats {
        self.stats.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// A shared handle onto the telemetry, usable after the sender has been
    /// moved into the back end.
    pub fn stats_handle(&self) -> Arc<Mutex<TransportStats>> {
        Arc::clone(&self.stats)
    }

    /// Encode `frame` zero-copy, chunk it across the stripes (pacing each
    /// chunk when the link is shaped) and return the framed wire bytes.
    /// Blocks when a stripe queue is full — that is the backpressure.
    pub fn send_frame(&self, frame: &FramePayload) -> Result<u64, TransportError> {
        let segments = FrameSegments::encode(frame);
        let plans = plan_chunks(segments.lens(), self.config.chunk_bytes, self.config.stripes);
        let seg_bufs = [
            segments.light,
            segments.heavy_header,
            segments.texture,
            segments.geometry,
        ];
        let total = plans.len() as u32;
        let mut wire = 0u64;
        for plan in &plans {
            let payload = seg_bufs[plan.segment as usize].slice(plan.start..plan.start + plan.len);
            let (stripe_seq, delay) = {
                let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                let s = state.stripe_seq[plan.stripe as usize];
                state.stripe_seq[plan.stripe as usize] += 1;
                let delay = state
                    .pacer
                    .as_mut()
                    .map(|p| p.consume(plan.stripe as usize, plan.len as u64))
                    .unwrap_or(Duration::ZERO);
                (s, delay)
            };
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            wire += plan.len as u64;
            self.txs[plan.stripe as usize]
                .send(FrameChunk {
                    frame: frame.light.frame,
                    rank: frame.light.rank,
                    seq: plan.seq,
                    total,
                    stripe: plan.stripe,
                    stripe_seq,
                    segment: plan.segment,
                    payload,
                })
                .map_err(|_| TransportError::Closed)?;
        }
        let mut stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.frames += 1;
        for plan in &plans {
            stats.record_chunk(plan.stripe, plan.len);
        }
        Ok(wire)
    }

    /// Inject a raw chunk onto its stripe, bypassing framing — the fault
    /// hook tests use to exercise duplicate, late and corrupt arrivals.
    pub fn send_raw_chunk(&self, chunk: FrameChunk) -> Result<(), TransportError> {
        let stripe = chunk.stripe as usize % self.txs.len();
        self.txs[stripe].send(chunk).map_err(|_| TransportError::Closed)
    }

    /// Non-blocking raw-chunk injection: `Ok(true)` when queued, `Ok(false)`
    /// when the stripe queue is full right now, `Err(Closed)` when the
    /// receiver is gone.  The service fan-out plane uses this to degrade a
    /// slow session (skip the rest of its frame) instead of stalling every
    /// other session behind its queue.
    pub fn try_send_raw_chunk(&self, chunk: FrameChunk) -> Result<bool, TransportError> {
        let stripe = chunk.stripe as usize % self.txs.len();
        match self.txs[stripe].try_send(chunk) {
            Ok(()) => Ok(true),
            Err(crossbeam::channel::TrySendError::Full(_)) => Ok(false),
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => Err(TransportError::Closed),
        }
    }

    /// Chunks currently queued across every stripe of this link — the
    /// instantaneous stripe-queue depth the telemetry plane samples for its
    /// high-water gauges.  Racy by nature; never used for control flow.
    pub fn queued_chunks(&self) -> usize {
        self.txs.iter().map(|tx| tx.len()).sum()
    }

    /// Register a hook fired whenever any full stripe of this link frees a
    /// slot or the receiver disconnects — the readiness edge an executor-
    /// parked producer task (one that saw [`StripeSender::try_send_raw_chunk`]
    /// report full) waits on.  Edge-triggered: retry the send once after
    /// registering before relying on it.
    pub fn set_space_hook(&self, hook: ReadyHook) {
        for tx in &self.txs {
            tx.set_space_hook(Arc::clone(&hook));
        }
    }
}

/// The receiving half of a striped link: services every stripe and hands out
/// chunks in arrival order (which is *not* sequence order — that is the
/// reassembler's problem, as it is for striped sockets).
pub struct StripeReceiver {
    rxs: Vec<Receiver<FrameChunk>>,
    open: Vec<bool>,
    rotation: usize,
    signal: Arc<LinkSignal>,
    /// Whether the stripes' data hooks feed [`StripeReceiver::signal`] yet.
    /// Armed lazily by the first [`StripeReceiver::recv_chunk`] call: links
    /// drained purely by `try_recv_chunk` (every executor-plane path) never
    /// pay the per-transition bump on their send side.
    signal_armed: bool,
}

/// Safety-net park interval for [`StripeReceiver::recv_chunk`]: the
/// [`LinkSignal`] wakes the receiver on any stripe's arrival, so this bounds
/// staleness only against a hook being missed, not normal delivery latency.
const RECV_PARK_SAFETY: Duration = Duration::from_millis(10);

impl StripeReceiver {
    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.rxs.len()
    }

    /// Next chunk from any stripe; `Err(Closed)` once every stripe has
    /// disconnected and drained.
    pub fn recv_chunk(&mut self) -> Result<FrameChunk, TransportError> {
        if !self.signal_armed {
            for rx in &self.rxs {
                let stripe_signal = Arc::clone(&self.signal);
                rx.set_data_hook(Arc::new(move || stripe_signal.bump()));
            }
            self.signal_armed = true;
        }
        let n = self.rxs.len();
        loop {
            // Observe the arrival generation *before* scanning: a chunk that
            // lands on an already-scanned stripe mid-scan bumps it, and the
            // wait below returns immediately instead of sleeping on a
            // delivery that already happened.
            let observed = self.signal.observe();
            let mut any_open = false;
            for i in 0..n {
                let idx = (self.rotation + i) % n;
                if !self.open[idx] {
                    continue;
                }
                match self.rxs[idx].try_recv() {
                    Ok(chunk) => {
                        self.rotation = (idx + 1) % n;
                        return Ok(chunk);
                    }
                    Err(TryRecvError::Empty) => any_open = true,
                    Err(TryRecvError::Disconnected) => self.open[idx] = false,
                }
            }
            if !any_open {
                return Err(TransportError::Closed);
            }
            // Every open stripe was empty: park until *any* stripe signals
            // an arrival (or disconnect), then rescan them all.
            self.signal.wait_past(observed, RECV_PARK_SAFETY);
        }
    }

    /// Register a hook fired whenever any stripe of this link transitions
    /// empty→non-empty or disconnects — the readiness edge an executor-
    /// parked consumer task waits on.  Edge-triggered: poll the stripes once
    /// after registering before relying on it.
    pub fn set_data_hook(&self, hook: ReadyHook) {
        for rx in &self.rxs {
            rx.set_data_hook(Arc::clone(&hook));
        }
    }

    /// Non-blocking poll: the next already-queued chunk, if any.  Used to
    /// drain stragglers (late stripes) after the expected frames are in.
    pub fn try_recv_chunk(&mut self) -> Option<FrameChunk> {
        let n = self.rxs.len();
        for i in 0..n {
            let idx = (self.rotation + i) % n;
            if !self.open[idx] {
                continue;
            }
            match self.rxs[idx].try_recv() {
                Ok(chunk) => {
                    self.rotation = (idx + 1) % n;
                    return Some(chunk);
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => self.open[idx] = false,
            }
        }
        None
    }

    /// True once every stripe has disconnected *and* drained:
    /// [`StripeReceiver::try_recv_chunk`] will never return another chunk.
    /// Only meaningful after a `try_recv_chunk` returned `None` (lanes are
    /// discovered closed by polling them), which makes
    /// `try_recv_chunk().is_none() && is_closed()` the non-blocking
    /// equivalent of `recv_chunk() == Err(Closed)`.
    pub fn is_closed(&self) -> bool {
        self.open.iter().all(|&open| !open)
    }

    /// Chunks currently queued across every stripe of this link — the
    /// receiver-side twin of [`StripeSender::queued_chunks`], sampled by the
    /// fan-out pumps for the backend-inlet depth gauge.
    pub fn queued_chunks(&self) -> usize {
        self.rxs.iter().map(|rx| rx.len()).sum()
    }

    /// Convenience: pump chunks through `assembler` until the next complete
    /// frame.
    pub fn recv_frame(&mut self, assembler: &mut FrameAssembler) -> Result<FramePayload, TransportError> {
        loop {
            if let AssemblyEvent::Complete { payload, .. } = assembler.accept(self.recv_chunk()?)? {
                return Ok(payload);
            }
        }
    }
}

/// Build one striped link: `stripes` bounded chunk queues between a sender
/// and a receiver, paced when the config says so.
pub fn striped_link(config: &TransportConfig) -> (StripeSender, StripeReceiver) {
    let stripes = config.stripes.max(1) as usize;
    let signal = LinkSignal::new();
    let mut txs = Vec::with_capacity(stripes);
    let mut rxs = Vec::with_capacity(stripes);
    for _ in 0..stripes {
        let (tx, rx) = bounded(config.queue_depth.max(1));
        txs.push(tx);
        rxs.push(rx);
    }
    let pacer = config
        .pace_rate_mbps
        .map(|mbps| StripePacer::from_rate(Bandwidth::from_mbps(mbps), config.stripes));
    (
        StripeSender {
            config: config.clone(),
            txs,
            state: Mutex::new(SenderState {
                pacer,
                stripe_seq: vec![0; stripes],
            }),
            stats: Arc::new(Mutex::new(TransportStats::with_stripes(stripes))),
        },
        StripeReceiver {
            rxs,
            open: vec![true; stripes],
            rotation: 0,
            signal,
            signal_armed: false,
        },
    )
}

/// What [`FrameAssembler::accept`] observed about one chunk.
#[derive(Debug)]
pub enum AssemblyEvent {
    /// Chunk stored; its frame is still incomplete.
    Progress {
        /// Sending PE rank.
        rank: u32,
        /// Timestep number.
        frame: u32,
        /// Chunks received so far for this frame.
        received: u32,
        /// Total chunks in the frame.
        total: u32,
    },
    /// The chunk completed its frame; here is the reassembled payload.
    Complete {
        /// The frame, reassembled and validated.
        payload: FramePayload,
        /// Framed bytes the frame occupied on the wire.
        wire_bytes: u64,
    },
    /// A stripe delivered a chunk for a frame that already completed.
    Late {
        /// Sending PE rank.
        rank: u32,
        /// Timestep number.
        frame: u32,
        /// Stripe the late chunk arrived on.
        stripe: u32,
    },
}

struct FrameAssembly {
    total: u32,
    received: u32,
    slots: Vec<Option<(u8, Bytes)>>,
}

/// One memoized decode: the segments that were decoded (held so their buffer
/// identity stays valid — a live `Arc` can't be recycled by the allocator)
/// and the outcome, error text preserved verbatim.
struct DecodedFrame {
    segments: FrameSegments,
    result: Result<FramePayload, String>,
}

struct SharedDecodeState {
    frames: HashMap<(u32, u32), DecodedFrame>,
    /// Insertion order of `frames` keys, for bounded eviction.
    order: std::collections::VecDeque<(u32, u32)>,
}

/// A decode memo shared by every session assembler of one fan-out plane.
///
/// On the exhibit floor every session receives the *same* chunks — O(1)
/// slices of the sender's own buffers — so each session's reassembled
/// segments view identical memory.  Decoding (geometry parse, validation)
/// that frame once and sharing the `FramePayload` turns the per-frame decode
/// cost from O(sessions) into O(1) without changing a single observable:
/// hits are proven by buffer identity ([`FrameSegments::same_regions`]), so a
/// shared decode returns bit-identical payloads, stats, and error text to a
/// private one.  Misses (a genuinely different reassembly for the same
/// `(rank, frame)`, or an evicted entry) simply decode again.
pub struct SharedDecode {
    state: Mutex<SharedDecodeState>,
}

/// Entries retained by a [`SharedDecode`] before the oldest is evicted:
/// enough for every in-flight `(rank, frame)` of a deep pipeline, small
/// enough that a plane's memo never holds more than a few frames' buffers.
const SHARED_DECODE_CAP: usize = 256;

impl SharedDecode {
    /// An empty memo.
    pub fn new() -> Self {
        SharedDecode {
            state: Mutex::new(SharedDecodeState {
                frames: HashMap::new(),
                order: std::collections::VecDeque::new(),
            }),
        }
    }

    /// Decode `segments` for `(rank, frame)`, reusing the memoized result
    /// when an identical reassembly (same buffers, same windows) was already
    /// decoded.  The error `String` is the `Display` text of the underlying
    /// decode error, identical on hit and miss.
    fn decode(&self, rank: u32, frame: u32, segments: FrameSegments) -> Result<FramePayload, String> {
        let mut st = self.state.lock().expect("shared decode lock");
        if let Some(entry) = st.frames.get(&(rank, frame)) {
            if entry.segments.same_regions(&segments) {
                return entry.result.clone();
            }
        }
        let result = segments.clone().decode().map_err(|e| e.to_string());
        if st
            .frames
            .insert(
                (rank, frame),
                DecodedFrame {
                    segments,
                    result: result.clone(),
                },
            )
            .is_none()
        {
            st.order.push_back((rank, frame));
            if st.order.len() > SHARED_DECODE_CAP {
                if let Some(old) = st.order.pop_front() {
                    st.frames.remove(&old);
                }
            }
        }
        result
    }
}

impl Default for SharedDecode {
    fn default() -> Self {
        Self::new()
    }
}

/// Reassembles out-of-order chunks into complete frames, one instance per PE
/// link.  Late and duplicate chunks are surfaced, never silently dropped.
#[derive(Default)]
pub struct FrameAssembler {
    pending: HashMap<(u32, u32), FrameAssembly>,
    completed: HashSet<(u32, u32)>,
    /// Decode memo shared with sibling assemblers, when this assembler is one
    /// of many receiving the same multicast frames.
    shared: Option<Arc<SharedDecode>>,
    /// Receiver-side telemetry (chunks/bytes by stripe, out-of-order count,
    /// reassembly fallback copies, frames completed).
    pub stats: TransportStats,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// An assembler that consults `shared` before decoding a completed frame
    /// — for session consumers that all receive the same multicast chunks.
    pub fn with_shared_decode(shared: Arc<SharedDecode>) -> Self {
        FrameAssembler {
            shared: Some(shared),
            ..Self::default()
        }
    }

    /// Feed one chunk in; returns what happened.
    pub fn accept(&mut self, chunk: FrameChunk) -> Result<AssemblyEvent, TransportError> {
        let key = (chunk.rank, chunk.frame);
        if self.completed.contains(&key) {
            return Ok(AssemblyEvent::Late {
                rank: chunk.rank,
                frame: chunk.frame,
                stripe: chunk.stripe,
            });
        }
        if chunk.total == 0 || chunk.seq >= chunk.total {
            return Err(TransportError::Corrupt(format!(
                "chunk seq {}/{} out of range (rank {}, frame {})",
                chunk.seq, chunk.total, chunk.rank, chunk.frame
            )));
        }
        let assembly = self.pending.entry(key).or_insert_with(|| FrameAssembly {
            total: chunk.total,
            received: 0,
            slots: vec![None; chunk.total as usize],
        });
        if assembly.total != chunk.total {
            return Err(TransportError::Corrupt(format!(
                "frame {} chunk totals disagree: {} vs {}",
                chunk.frame, assembly.total, chunk.total
            )));
        }
        if assembly.slots[chunk.seq as usize].is_some() {
            return Err(TransportError::Corrupt(format!(
                "duplicate chunk {} for frame {} (rank {})",
                chunk.seq, chunk.frame, chunk.rank
            )));
        }
        if chunk.seq != assembly.received {
            self.stats.out_of_order_chunks += 1;
        }
        self.stats.record_chunk(chunk.stripe, chunk.payload.len());
        assembly.slots[chunk.seq as usize] = Some((chunk.segment, chunk.payload));
        assembly.received += 1;
        if assembly.received < assembly.total {
            return Ok(AssemblyEvent::Progress {
                rank: chunk.rank,
                frame: chunk.frame,
                received: assembly.received,
                total: assembly.total,
            });
        }
        let assembly = self.pending.remove(&key).expect("assembly present");
        self.completed.insert(key);
        let (segments, copies) = assemble_segments(assembly.slots);
        self.stats.reassembly_copies += copies;
        let wire_bytes = segments.wire_bytes();
        let payload = match &self.shared {
            Some(memo) => memo.decode(key.0, key.1, segments).map_err(TransportError::Corrupt)?,
            None => segments.decode().map_err(|e| TransportError::Corrupt(e.to_string()))?,
        };
        self.stats.frames += 1;
        Ok(AssemblyEvent::Complete { payload, wire_bytes })
    }

    /// Frames currently mid-assembly, as `(rank, frame, received, total)` —
    /// what a closing link leaves behind.
    pub fn pending_frames(&self) -> Vec<(u32, u32, u32, u32)> {
        let mut v: Vec<(u32, u32, u32, u32)> = self
            .pending
            .iter()
            .map(|(&(rank, frame), a)| (rank, frame, a.received, a.total))
            .collect();
        v.sort_unstable();
        v
    }

    /// True once `(rank, frame)` has fully assembled.
    pub fn is_complete(&self, rank: u32, frame: u32) -> bool {
        self.completed.contains(&(rank, frame))
    }

    /// The light payload of a pending frame, as soon as its chunks are in —
    /// the viewer uses this to place the quad before any pixels arrive.
    pub fn partial_light(&self, rank: u32, frame: u32) -> Option<LightPayload> {
        let assembly = self.pending.get(&(rank, frame))?;
        let mut light: Option<Bytes> = None;
        for slot in &assembly.slots {
            match slot {
                Some((0, part)) => {
                    light = Some(match light {
                        None => part.clone(),
                        Some(prev) => prev.try_join(part)?,
                    });
                }
                Some((_, _)) => break, // past the light segment: it is complete
                None => break,         // gap: decode below fails if light is truncated
            }
        }
        crate::protocol::decode_light(&light?).ok()
    }

    /// The contiguous texture prefix of a pending frame: joined zero-copy
    /// from the received chunks, stopping at the first gap.  Returns the
    /// prefix bytes (empty before any texture chunk lands).
    pub fn partial_texture(&self, rank: u32, frame: u32) -> Option<Bytes> {
        let assembly = self.pending.get(&(rank, frame))?;
        let mut texture: Option<Bytes> = None;
        for slot in &assembly.slots {
            match slot {
                Some((2, part)) => {
                    texture = Some(match texture {
                        None => part.clone(),
                        Some(prev) => match prev.try_join(part) {
                            Some(joined) => joined,
                            None => return Some(prev), // non-adjacent: stop at the prefix
                        },
                    });
                }
                Some((s, _)) if *s > 2 => break,
                Some(_) => {}
                None => break, // gap: everything after is not a prefix
            }
        }
        Some(texture.unwrap_or_default())
    }
}

/// Join each segment's slices back into one buffer (zero-copy when the
/// slices are contiguous windows of one allocation, which they are on the
/// in-process link) and count any gather fallbacks.
fn assemble_segments(slots: Vec<Option<(u8, Bytes)>>) -> (FrameSegments, u64) {
    let mut copies = 0u64;
    let mut segments: [Vec<Bytes>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for slot in slots {
        let (segment, part) = slot.expect("assembly is complete");
        segments[(segment as usize).min(3)].push(part);
    }
    let mut join = |parts: Vec<Bytes>| -> Bytes {
        let mut merged: Vec<Bytes> = Vec::with_capacity(parts.len());
        for part in parts {
            match merged.last_mut() {
                Some(prev) => match prev.try_join(&part) {
                    Some(joined) => *prev = joined,
                    None => merged.push(part),
                },
                None => merged.push(part),
            }
        }
        if merged.len() > 1 {
            copies += 1;
            Bytes::gather(&merged)
        } else {
            merged.pop().unwrap_or_default()
        }
    };
    let [light, header, texture, geometry] = segments;
    let segs = FrameSegments {
        light: join(light),
        heavy_header: join(header),
        texture: join(texture),
        geometry: join(geometry),
    };
    (segs, copies)
}

/// Pump a receiver until its link closes, returning every frame completed in
/// arrival order — the whole-frame convenience the tests and benches use.
pub fn drain_frames(rx: &mut StripeReceiver) -> Result<Vec<FramePayload>, TransportError> {
    let mut assembler = FrameAssembler::new();
    let mut out = Vec::new();
    loop {
        match rx.recv_chunk() {
            Err(TransportError::Closed) => return Ok(out),
            Err(e) => return Err(e),
            Ok(chunk) => {
                if let AssemblyEvent::Complete { payload, .. } = assembler.accept(chunk)? {
                    out.push(payload);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sample_frame;
    use std::time::Instant;

    #[test]
    fn chunk_plan_covers_every_byte_round_robin() {
        let lens = [78, 21, 16_384, 76];
        let plans = plan_chunks(lens, 4096, 3);
        // Coverage: per segment the chunks tile [0, len).
        for (segment, &len) in lens.iter().enumerate() {
            let mut cursor = 0usize;
            for p in plans.iter().filter(|p| p.segment == segment as u8) {
                assert_eq!(p.start, cursor);
                assert!(p.len <= 4096 && p.len > 0);
                cursor += p.len;
            }
            assert_eq!(cursor, len, "segment {segment} fully covered");
        }
        // Sequence numbers dense, stripes round-robin.
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(p.seq as usize, i);
            assert_eq!(p.stripe, p.seq % 3);
        }
        assert_eq!(plans.iter().map(|p| p.len).sum::<usize>(), lens.iter().sum::<usize>());
    }

    #[test]
    fn striped_roundtrip_is_zero_copy() {
        let config = TransportConfig::default().with_stripes(4).with_chunk_bytes(1000);
        let (tx, mut rx) = striped_link(&config);
        let frames: Vec<FramePayload> = (0..3).map(|f| sample_frame(7, f, 16)).collect();
        let before = bytes::deep_copy_count();
        let mut wire = 0;
        for f in &frames {
            wire += tx.send_frame(f).unwrap();
        }
        let sender_stats = tx.stats();
        drop(tx);
        let got = drain_frames(&mut rx).unwrap();
        assert_eq!(bytes::deep_copy_count() - before, 0, "striping must not copy");
        assert_eq!(got.len(), 3);
        for (a, b) in got.iter().zip(&frames) {
            assert_eq!(a, b);
            assert!(
                a.heavy.texture_rgba8.ptr_eq(&b.heavy.texture_rgba8),
                "the texture must arrive as the sender's own buffer"
            );
        }
        assert_eq!(sender_stats.frames, 3);
        assert_eq!(sender_stats.bytes, wire);
        assert_eq!(sender_stats.stripe_count(), 4);
        assert!(sender_stats.per_stripe.iter().all(|s| s.chunks > 0));
    }

    #[test]
    fn chunking_is_deterministic_across_sends() {
        let config = TransportConfig::default().with_stripes(5).with_chunk_bytes(777);
        let (tx1, mut rx1) = striped_link(&config);
        let (tx2, mut rx2) = striped_link(&config);
        let f = sample_frame(1, 0, 24);
        tx1.send_frame(&f).unwrap();
        tx2.send_frame(&f).unwrap();
        assert_eq!(tx1.stats(), tx2.stats(), "same payload, same striping");
        drop(tx1);
        drop(tx2);
        drain_frames(&mut rx1).unwrap();
        drain_frames(&mut rx2).unwrap();
    }

    #[test]
    fn reassembly_survives_arbitrary_reordering() {
        // Hand-shuffle a frame's chunks (violating even per-stripe FIFO) and
        // feed them to a bare assembler: the payload must still be exact.
        let f = sample_frame(2, 4, 16);
        let segments = FrameSegments::encode(&f);
        let seg_bufs = [
            segments.light.clone(),
            segments.heavy_header.clone(),
            segments.texture.clone(),
            segments.geometry.clone(),
        ];
        let plans = plan_chunks(segments.lens(), 512, 3);
        let total = plans.len() as u32;
        assert!(total >= 4, "need several chunks to reorder");
        let mut chunks: Vec<FrameChunk> = plans
            .iter()
            .map(|p| FrameChunk {
                frame: 4,
                rank: 2,
                seq: p.seq,
                total,
                stripe: p.stripe,
                stripe_seq: 0,
                segment: p.segment,
                payload: seg_bufs[p.segment as usize].slice(p.start..p.start + p.len),
            })
            .collect();
        // Deterministic "random" permutation.
        let n = chunks.len();
        for i in 0..n {
            let j = (i * 7 + 3) % n;
            chunks.swap(i, j);
        }
        let mut asm = FrameAssembler::new();
        let mut completed = None;
        for c in chunks {
            if let AssemblyEvent::Complete { payload, .. } = asm.accept(c).unwrap() {
                completed = Some(payload);
            }
        }
        let got = completed.expect("frame completes");
        assert_eq!(got, f);
        assert!(got.heavy.texture_rgba8.ptr_eq(&f.heavy.texture_rgba8));
        assert!(asm.stats.out_of_order_chunks > 0, "the shuffle was observed");
        assert_eq!(asm.stats.reassembly_copies, 0, "rejoin is in-place");
    }

    #[test]
    fn late_and_duplicate_chunks_are_surfaced() {
        let config = TransportConfig::default().with_stripes(2).with_chunk_bytes(256);
        let (tx, mut rx) = striped_link(&config);
        let f = sample_frame(0, 0, 8);
        tx.send_frame(&f).unwrap();
        let mut asm = FrameAssembler::new();
        let payload = rx.recv_frame(&mut asm).unwrap();
        assert_eq!(payload, f);
        // A stripe delivers a stale chunk after the frame completed.
        tx.send_raw_chunk(FrameChunk {
            frame: 0,
            rank: 0,
            seq: 0,
            total: 4,
            stripe: 1,
            stripe_seq: 99,
            segment: 0,
            payload: Bytes::from(vec![0u8; 16]),
        })
        .unwrap();
        drop(tx);
        let chunk = rx.recv_chunk().unwrap();
        match asm.accept(chunk).unwrap() {
            AssemblyEvent::Late {
                frame: 0,
                rank: 0,
                stripe: 1,
            } => {}
            other => panic!("expected Late, got {other:?}"),
        }
        assert!(matches!(rx.recv_chunk(), Err(TransportError::Closed)));
        // Duplicates within a pending frame are corrupt, not silent.
        let mut asm = FrameAssembler::new();
        let chunk = FrameChunk {
            frame: 9,
            rank: 0,
            seq: 0,
            total: 2,
            stripe: 0,
            stripe_seq: 0,
            segment: 0,
            payload: Bytes::from(vec![1u8; 4]),
        };
        asm.accept(chunk.clone()).unwrap();
        assert!(matches!(asm.accept(chunk), Err(TransportError::Corrupt(_))));
    }

    #[test]
    fn partial_light_and_texture_grow_with_chunks() {
        let f = sample_frame(3, 1, 16);
        let segments = FrameSegments::encode(&f);
        let seg_bufs = [
            segments.light.clone(),
            segments.heavy_header.clone(),
            segments.texture.clone(),
            segments.geometry.clone(),
        ];
        let plans = plan_chunks(segments.lens(), 256, 2);
        let total = plans.len() as u32;
        let mut asm = FrameAssembler::new();
        assert!(asm.partial_light(3, 1).is_none());
        let mut seen_partial_texture = false;
        for p in &plans[..plans.len() - 1] {
            asm.accept(FrameChunk {
                frame: 1,
                rank: 3,
                seq: p.seq,
                total,
                stripe: p.stripe,
                stripe_seq: 0,
                segment: p.segment,
                payload: seg_bufs[p.segment as usize].slice(p.start..p.start + p.len),
            })
            .unwrap();
            if p.segment == 0 {
                let light = asm.partial_light(3, 1).expect("light decodes as soon as it lands");
                assert_eq!(light, f.light);
            }
            if p.segment == 2 {
                let prefix = asm.partial_texture(3, 1).unwrap();
                assert_eq!(prefix.len(), p.start + p.len);
                assert_eq!(&prefix[..], &f.heavy.texture_rgba8[..prefix.len()]);
                seen_partial_texture = true;
            }
        }
        assert!(seen_partial_texture);
        assert_eq!(asm.pending_frames(), vec![(3, 1, total - 1, total)]);
    }

    #[test]
    fn pacing_throttles_the_link() {
        // 1 MB of texture over a 8 Mbps (1 MB/s) paced link must take close
        // to a second; unpaced it is effectively instant.
        let unpaced = TransportConfig::default().with_stripes(4).with_chunk_bytes(64 * 1024);
        let mut paced = unpaced.clone();
        paced.pace_rate_mbps = Some(8.0);
        let f = sample_frame(0, 0, 512); // 512*512*4 = 1 MB texture
        for (config, min_s, max_s) in [(&unpaced, 0.0, 0.4), (&paced, 0.6, 30.0)] {
            let (tx, mut rx) = striped_link(config);
            let drain = std::thread::spawn(move || drain_frames(&mut rx).unwrap().len());
            let t = Instant::now();
            tx.send_frame(&f).unwrap();
            drop(tx);
            assert_eq!(drain.join().unwrap(), 1);
            let elapsed = t.elapsed().as_secs_f64();
            assert!(
                elapsed >= min_s && elapsed <= max_s,
                "paced={} took {elapsed}s",
                config.is_paced()
            );
        }
    }

    /// Chunk `frame` the way a fan-out endpoint does: one set of `Bytes`
    /// slices of the sender's buffers, cloneable to any number of sessions.
    fn multicast_chunks(frame: &FramePayload) -> Vec<FrameChunk> {
        let segments = FrameSegments::encode(frame);
        let bufs = [
            segments.light.clone(),
            segments.heavy_header.clone(),
            segments.texture.clone(),
            segments.geometry.clone(),
        ];
        let plans = plan_chunks(segments.lens(), 1000, 3);
        let total = plans.len() as u32;
        plans
            .iter()
            .map(|p| FrameChunk {
                frame: frame.light.frame,
                rank: frame.light.rank,
                seq: p.seq,
                total,
                stripe: p.stripe,
                stripe_seq: 0,
                segment: p.segment,
                payload: bufs[p.segment as usize].slice(p.start..p.start + p.len),
            })
            .collect()
    }

    fn feed(assembler: &mut FrameAssembler, chunks: &[FrameChunk]) -> Result<Option<FramePayload>, TransportError> {
        let mut out = None;
        for c in chunks {
            if let AssemblyEvent::Complete { payload, .. } = assembler.accept(c.clone())? {
                out = Some(payload);
            }
        }
        Ok(out)
    }

    #[test]
    fn shared_decode_matches_private_decode_bit_for_bit() {
        let frames: Vec<FramePayload> = (0..3).map(|f| sample_frame(2, f, 16)).collect();
        let waves: Vec<Vec<FrameChunk>> = frames.iter().map(multicast_chunks).collect();

        let memo = Arc::new(SharedDecode::new());
        let mut private = FrameAssembler::new();
        let mut shared: Vec<FrameAssembler> = (0..3)
            .map(|_| FrameAssembler::with_shared_decode(Arc::clone(&memo)))
            .collect();
        for (wave, expect) in waves.iter().zip(&frames) {
            let base = feed(&mut private, wave).unwrap().expect("frame completes");
            assert_eq!(&base, expect);
            let decoded: Vec<FramePayload> = shared
                .iter_mut()
                .map(|a| feed(a, wave).unwrap().expect("frame completes"))
                .collect();
            for d in &decoded {
                assert_eq!(d, &base, "shared decode must be observationally identical");
            }
            // And it really is one decode: every session holds the same
            // geometry allocation, not a private re-parse.
            assert!(Arc::ptr_eq(&decoded[0].heavy.geometry, &decoded[1].heavy.geometry));
            assert!(Arc::ptr_eq(&decoded[1].heavy.geometry, &decoded[2].heavy.geometry));
            assert!(!Arc::ptr_eq(&base.heavy.geometry, &decoded[0].heavy.geometry));
        }
        for a in &shared {
            assert_eq!(a.stats.frames, private.stats.frames);
            assert_eq!(a.stats.chunks, private.stats.chunks);
            assert_eq!(a.stats.bytes, private.stats.bytes);
            assert_eq!(a.stats.reassembly_copies, private.stats.reassembly_copies);
        }
    }

    #[test]
    fn shared_decode_preserves_error_text_and_rejects_stale_hits() {
        // A frame whose light metadata lies about the geometry: decode fails
        // with the same error through the memo as without it.
        let mut bad = sample_frame(2, 0, 16);
        bad.light.geometry_segments += 1;
        let bad_wave = multicast_chunks(&bad);
        let private_err = feed(&mut FrameAssembler::new(), &bad_wave).unwrap_err();
        let memo = Arc::new(SharedDecode::new());
        for _ in 0..2 {
            let shared_err = feed(&mut FrameAssembler::with_shared_decode(Arc::clone(&memo)), &bad_wave).unwrap_err();
            assert_eq!(shared_err.to_string(), private_err.to_string());
        }

        // Different content under the same (rank, frame) key — a re-encoded
        // frame views fresh buffers, so the memo must decode it, not serve
        // the stale entry.
        let good = sample_frame(2, 0, 16);
        let good_wave = multicast_chunks(&good);
        let decoded = feed(&mut FrameAssembler::with_shared_decode(Arc::clone(&memo)), &good_wave)
            .unwrap()
            .expect("frame completes");
        assert_eq!(decoded, good);
    }

    #[test]
    fn stats_merge_pads_stripe_vectors() {
        let mut a = TransportStats::with_stripes(2);
        a.record_chunk(0, 10);
        a.frames = 1;
        let mut b = TransportStats::with_stripes(4);
        b.record_chunk(3, 40);
        b.out_of_order_chunks = 2;
        a.merge(&b);
        assert_eq!(a.stripe_count(), 4);
        assert_eq!(a.frames, 1);
        assert_eq!(a.chunks, 2);
        assert_eq!(a.bytes, 50);
        assert_eq!(a.per_stripe[3].bytes, 40);
        assert_eq!(a.out_of_order_chunks, 2);
    }
}
