//! The Visapult viewer: multi-threaded payload receipt decoupled from rendering.
//!
//! "the viewer itself is a multi-threaded application, with one thread
//! dedicated to interactive rendering, and other threads dedicated to
//! receiving data from the Visapult back end visualization processes over
//! multiple simultaneous network connections" (§3.4).
//!
//! [`Viewer::run`] spawns one I/O thread per back-end PE link.  Each thread
//! receives light + heavy payloads, converts them into textured-quad (and
//! line) scene-graph nodes, and updates the shared [`SceneGraph`].  The
//! render thread snapshots the graph and rasterizes the IBRAVR composite at
//! its own rate for as long as the pipeline runs — its frame rate depends on
//! local compositing cost, not on the WAN.

use crate::protocol::FramePayload;
use crossbeam::channel::Receiver;
use netlogger::{tags, NetLogger};
use scenegraph::{NodeId, Quad3, RasterSettings, Rasterizer, SceneGraph, SceneGraphStats, SceneNode};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use volren::{RgbaImage, ViewOrientation};

/// Viewer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewerConfig {
    /// Dimensions of the source volume (for framing the composite).
    pub volume_dims: (usize, usize, usize),
    /// Output framebuffer size.
    pub image_size: (usize, usize),
    /// The (fixed) view orientation used while the pipeline runs.
    pub view: ViewOrientation,
    /// Number of timesteps each PE link is expected to deliver.
    pub expected_frames: usize,
}

impl ViewerConfig {
    /// A viewer framing the given volume at a default window size.
    pub fn new(volume_dims: (usize, usize, usize), expected_frames: usize) -> Self {
        ViewerConfig {
            volume_dims,
            image_size: (256, 256),
            view: ViewOrientation::new(8.0, 4.0),
            expected_frames,
        }
    }
}

/// What the viewer observed during a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ViewerReport {
    /// Total frame payloads received across all PE links.
    pub frames_received: usize,
    /// Number of composites the render thread produced while the pipeline ran.
    pub renders_performed: u64,
    /// Bytes received over all PE links.
    pub received_wire_bytes: u64,
    /// Scene-graph activity counters.
    pub scene_stats: SceneGraphStats,
    /// The final composited image.
    pub final_image: RgbaImage,
}

/// The viewer application.
pub struct Viewer {
    config: ViewerConfig,
    scene: SceneGraph,
}

impl Viewer {
    /// A viewer with an empty scene graph.
    pub fn new(config: ViewerConfig) -> Self {
        Viewer {
            config,
            scene: SceneGraph::new(),
        }
    }

    /// The shared scene graph (for inspection in tests).
    pub fn scene(&self) -> &SceneGraph {
        &self.scene
    }

    /// Receive payloads from one back-end link until it delivers
    /// `expected_frames` frames or closes; update the scene graph for each.
    #[allow(clippy::too_many_arguments)]
    fn io_thread(
        scene: &SceneGraph,
        rx: &Receiver<FramePayload>,
        texture_node: NodeId,
        grid_node: NodeId,
        expected_frames: usize,
        log: Option<&NetLogger>,
        frames_received: &AtomicU64,
        bytes_received: &AtomicU64,
    ) {
        for _ in 0..expected_frames {
            let payload = match rx.recv() {
                Ok(p) => p,
                Err(_) => break, // back end went away
            };
            let frame = payload.light.frame as u64;
            if let Some(l) = log {
                l.log_with(tags::V_FRAME_START, [(tags::FIELD_FRAME, frame)]);
                l.log_with(tags::V_LIGHTPAYLOAD_START, [(tags::FIELD_FRAME, frame)]);
                l.log_with(tags::V_LIGHTPAYLOAD_END, [(tags::FIELD_FRAME, frame)]);
                l.log_with(
                    tags::V_HEAVYPAYLOAD_START,
                    [
                        (tags::FIELD_FRAME, frame),
                        (tags::FIELD_BYTES, payload.heavy.payload_bytes()),
                    ],
                );
            }
            let image = RgbaImage::from_rgba8(
                payload.light.texture_width as usize,
                payload.light.texture_height as usize,
                &payload.heavy.texture_rgba8,
            );
            let quad = Quad3 {
                center: payload.light.quad_center,
                u: payload.light.quad_u,
                v: payload.light.quad_v,
            };
            scene.update(texture_node, SceneNode::TextureQuad { image, quad });
            scene.update(
                grid_node,
                SceneNode::Lines {
                    // Refcount bump, not a copy: the scene graph shares the
                    // payload's segment list.
                    segments: Arc::clone(&payload.heavy.geometry),
                    color: [0.4, 0.9, 0.4, 0.8],
                },
            );
            bytes_received.fetch_add(payload.wire_bytes(), Ordering::Relaxed);
            frames_received.fetch_add(1, Ordering::Relaxed);
            if let Some(l) = log {
                l.log_with(tags::V_HEAVYPAYLOAD_END, [(tags::FIELD_FRAME, frame)]);
                l.log_with(tags::V_FRAME_END, [(tags::FIELD_FRAME, frame)]);
            }
        }
    }

    /// Run the viewer against one receiver per back-end PE.  Blocks until
    /// every link has delivered its expected frames (or closed), then returns
    /// the report with the final composite.
    pub fn run(self, links: Vec<Receiver<FramePayload>>, logger: Option<NetLogger>) -> ViewerReport {
        let frames_received = AtomicU64::new(0);
        let bytes_received = AtomicU64::new(0);
        let renders = AtomicU64::new(0);
        let done = Arc::new(AtomicBool::new(false));
        let raster_settings = RasterSettings::framing_volume(
            self.config.volume_dims,
            self.config.image_size.0,
            self.config.image_size.1,
        );
        let rasterizer = Rasterizer::new(&self.config.view, raster_settings);

        // Pre-create the per-PE nodes so I/O threads only ever update.
        let node_ids: Vec<(NodeId, NodeId)> = (0..links.len())
            .map(|_| {
                (
                    self.scene.insert(SceneNode::Text {
                        position: [0.0; 3],
                        content: "awaiting texture".to_string(),
                    }),
                    self.scene.insert(SceneNode::Text {
                        position: [0.0; 3],
                        content: "awaiting grid".to_string(),
                    }),
                )
            })
            .collect();

        std::thread::scope(|scope| {
            // I/O service threads, one per back-end PE.
            let io_handles: Vec<_> = links
                .iter()
                .enumerate()
                .map(|(pe, rx)| {
                    let scene = &self.scene;
                    let (texture_node, grid_node) = node_ids[pe];
                    let log = logger.as_ref().map(|l| l.for_program(format!("viewer-worker-{pe}")));
                    let frames_received = &frames_received;
                    let bytes_received = &bytes_received;
                    let expected = self.config.expected_frames;
                    scope.spawn(move || {
                        Self::io_thread(
                            scene,
                            rx,
                            texture_node,
                            grid_node,
                            expected,
                            log.as_ref(),
                            frames_received,
                            bytes_received,
                        );
                    })
                })
                .collect();
            // The render thread: composites snapshots at its own rate until
            // the I/O threads are done.
            let scene = &self.scene;
            let renders = &renders;
            let done_flag = Arc::clone(&done);
            let raster_ref = &rasterizer;
            scope.spawn(move || {
                let mut last_generation = u64::MAX;
                while !done_flag.load(Ordering::Relaxed) {
                    let generation = scene.generation();
                    if generation != last_generation {
                        let snapshot_nodes: Vec<SceneNode> = scene.snapshot().into_iter().map(|(_, n)| n).collect();
                        let _ = raster_ref.render(&snapshot_nodes);
                        renders.fetch_add(1, Ordering::Relaxed);
                        last_generation = generation;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
            // Join the I/O threads (they exit once every expected frame has
            // arrived or their sender hangs up), then stop the render thread.
            for handle in io_handles {
                let _ = handle.join();
            }
            done.store(true, Ordering::Relaxed);
        });

        // Final composite of whatever arrived.
        let snapshot_nodes: Vec<SceneNode> = self.scene.snapshot().into_iter().map(|(_, n)| n).collect();
        let final_image = rasterizer.render(&snapshot_nodes);
        ViewerReport {
            frames_received: frames_received.load(Ordering::Relaxed) as usize,
            renders_performed: renders.load(Ordering::Relaxed),
            received_wire_bytes: bytes_received.load(Ordering::Relaxed),
            scene_stats: self.scene.stats(),
            final_image,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{HeavyPayload, LightPayload};
    use crossbeam::channel::unbounded;

    fn payload(rank: u32, frame: u32, size: usize) -> FramePayload {
        let mut img = RgbaImage::new(size, size);
        for y in 0..size {
            for x in 0..size {
                img.set(x, y, [1.0, 0.3, 0.1, 0.9]);
            }
        }
        FramePayload {
            light: LightPayload {
                frame,
                rank,
                texture_width: size as u32,
                texture_height: size as u32,
                bytes_per_pixel: 4,
                quad_center: [15.5, 15.5, 4.0 + rank as f32 * 8.0],
                quad_u: [16.0, 0.0, 0.0],
                quad_v: [0.0, 16.0, 0.0],
                geometry_segments: 1,
            },
            heavy: HeavyPayload {
                frame,
                rank,
                texture_rgba8: img.to_rgba8().into(),
                geometry: Arc::new(vec![([0.0; 3], [31.0, 31.0, 31.0])]),
            },
        }
    }

    #[test]
    fn viewer_receives_frames_and_composites() {
        let pes = 3;
        let frames = 4;
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..pes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let viewer = Viewer::new(ViewerConfig::new((32, 32, 32), frames));
        let producer = std::thread::spawn(move || {
            for f in 0..frames {
                for (r, tx) in senders.iter().enumerate() {
                    tx.send(payload(r as u32, f as u32, 16)).unwrap();
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        let report = viewer.run(receivers, None);
        producer.join().unwrap();
        assert_eq!(report.frames_received, pes * frames);
        assert!(report.renders_performed >= 1);
        assert!(report.received_wire_bytes > 0);
        assert!(
            report.final_image.coverage() > 0.05,
            "final image should show the slabs"
        );
        // Scene graph saw one texture + one grid update per payload plus the
        // initial placeholder inserts.
        assert!(report.scene_stats.updates >= (pes * frames * 2) as u64);
    }

    #[test]
    fn viewer_handles_early_disconnect() {
        let (tx, rx) = unbounded();
        let viewer = Viewer::new(ViewerConfig::new((32, 32, 32), 10));
        tx.send(payload(0, 0, 8)).unwrap();
        drop(tx); // back end dies after one frame
        let report = viewer.run(vec![rx], None);
        assert_eq!(report.frames_received, 1);
    }

    #[test]
    fn viewer_logs_receipt_events() {
        let (tx, rx) = unbounded();
        let collector = netlogger::Collector::wall();
        let logger = collector.logger("desktop", "viewer-master");
        let viewer = Viewer::new(ViewerConfig::new((32, 32, 32), 2));
        tx.send(payload(0, 0, 8)).unwrap();
        tx.send(payload(0, 1, 8)).unwrap();
        drop(tx);
        let report = viewer.run(vec![rx], Some(logger));
        assert_eq!(report.frames_received, 2);
        let log = collector.finish();
        assert_eq!(log.with_tag(tags::V_FRAME_START).count(), 2);
        assert_eq!(log.with_tag(tags::V_HEAVYPAYLOAD_END).count(), 2);
    }

    #[test]
    fn render_rate_is_independent_of_slow_payload_arrival() {
        // Send payloads slowly; the render thread should still have run at
        // least once per scene change without waiting on the network.
        let (tx, rx) = unbounded();
        let viewer = Viewer::new(ViewerConfig::new((32, 32, 32), 3));
        let producer = std::thread::spawn(move || {
            for f in 0..3 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                tx.send(payload(0, f, 8)).unwrap();
            }
        });
        let report = viewer.run(vec![rx], None);
        producer.join().unwrap();
        assert_eq!(report.frames_received, 3);
        assert!(report.scene_stats.snapshots >= 3);
    }
}
