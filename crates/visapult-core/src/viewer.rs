//! The Visapult viewer: a progressive stripe compositor.
//!
//! "the viewer itself is a multi-threaded application, with one thread
//! dedicated to interactive rendering, and other threads dedicated to
//! receiving data from the Visapult back end visualization processes over
//! multiple simultaneous network connections" (§3.4).
//!
//! [`Viewer::run`] spawns one I/O thread per back-end PE link.  Each thread
//! services every stripe of its [`StripeReceiver`], reassembling
//! sequence-numbered chunks as they arrive — and it does not wait for whole
//! frames: as soon as a frame's light payload lands the quad is placed in the
//! scene graph, and every contiguous texture prefix that arrives updates it
//! in place, so the render thread composites *partial* frames while the rest
//! of the stripes are still in flight (the paper's key UX property: the
//! display is never blocked on the WAN).  Out-of-order completions, late
//! stripes after a frame's final composite, and frames lost to a dying link
//! are surfaced as typed [`ViewerError`]s, never silently dropped.

use crate::pipeline::{Clock, WallClock};
use crate::transport::{AssemblyEvent, FrameAssembler, StripeReceiver, TransportStats};
use netlogger::{tags, NetLogger};
use scenegraph::{NodeId, Quad3, RasterSettings, Rasterizer, SceneGraph, SceneGraphStats, SceneNode};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use volren::{RgbaImage, ViewOrientation};

/// Viewer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewerConfig {
    /// Dimensions of the source volume (for framing the composite).
    pub volume_dims: (usize, usize, usize),
    /// Output framebuffer size.
    pub image_size: (usize, usize),
    /// The (fixed) view orientation used while the pipeline runs.
    pub view: ViewOrientation,
    /// Number of timesteps each PE link is expected to deliver.
    pub expected_frames: usize,
}

impl ViewerConfig {
    /// A viewer framing the given volume at a default window size.
    pub fn new(volume_dims: (usize, usize, usize), expected_frames: usize) -> Self {
        ViewerConfig {
            volume_dims,
            image_size: (256, 256),
            view: ViewOrientation::new(8.0, 4.0),
            expected_frames,
        }
    }
}

/// A delivery anomaly the viewer observed and handled.  These are reported,
/// not panicked on: a WAN viewer must keep compositing through them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ViewerError {
    /// A stripe delivered a chunk for a frame whose final composite was
    /// already integrated.
    LateStripe {
        /// Sending PE rank.
        rank: u32,
        /// The completed frame the chunk belonged to.
        frame: u32,
        /// Stripe the straggler arrived on.
        stripe: u32,
    },
    /// A frame completed after a newer frame from the same PE had already
    /// been composited; its texture was not allowed to roll the scene back.
    StaleFrame {
        /// Sending PE rank.
        rank: u32,
        /// The out-of-order frame.
        frame: u32,
        /// The newest frame already shown for this PE.
        newest: u32,
    },
    /// The link closed before this frame fully arrived.
    MissingFrame {
        /// Sending PE rank.
        rank: u32,
        /// The frame that never completed.
        frame: u32,
        /// Chunks that did arrive (0 when the frame was never seen at all).
        received_chunks: u32,
        /// Total chunks the frame announced (0 when never seen).
        total_chunks: u32,
    },
    /// A chunk or reassembled frame failed validation.
    Corrupt {
        /// Sending PE rank.
        rank: u32,
        /// What failed.
        detail: String,
    },
}

/// What the viewer observed during a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ViewerReport {
    /// Complete frame payloads received across all PE links.
    pub frames_received: usize,
    /// Number of composites the render thread produced while the pipeline ran.
    pub renders_performed: u64,
    /// Framed bytes received over all PE links.
    pub received_wire_bytes: u64,
    /// Scene-graph updates made from *incomplete* frames — placed quads and
    /// partial textures integrated while stripes were still in flight.
    pub partial_updates: u64,
    /// Receiver-side transport telemetry summed over every PE link.
    pub transport: TransportStats,
    /// Every delivery anomaly observed, in arrival order per link.
    pub errors: Vec<ViewerError>,
    /// Scene-graph activity counters.
    pub scene_stats: SceneGraphStats,
    /// The final composited image.
    pub final_image: RgbaImage,
}

/// The viewer application.
pub struct Viewer {
    config: ViewerConfig,
    scene: SceneGraph,
}

impl Viewer {
    /// A viewer with an empty scene graph.
    pub fn new(config: ViewerConfig) -> Self {
        Viewer {
            config,
            scene: SceneGraph::new(),
        }
    }

    /// The shared scene graph (for inspection in tests).
    pub fn scene(&self) -> &SceneGraph {
        &self.scene
    }

    /// Service one back-end PE link chunk-by-chunk until it delivers
    /// `expected_frames` frames or closes, integrating partial and complete
    /// frames into the scene graph.  Returns the link's receiver-side
    /// transport stats and every anomaly observed.
    #[allow(clippy::too_many_arguments)]
    fn io_thread(
        scene: &SceneGraph,
        mut rx: StripeReceiver,
        pe: usize,
        texture_node: NodeId,
        grid_node: NodeId,
        expected_frames: usize,
        log: Option<&NetLogger>,
        frames_received: &AtomicU64,
        bytes_received: &AtomicU64,
        partial_updates: &AtomicU64,
    ) -> (TransportStats, Vec<ViewerError>) {
        let rank = pe as u32;
        let mut assembler = FrameAssembler::new();
        let mut errors = Vec::new();
        let mut completed = 0usize;
        let mut newest_shown: Option<u32> = None;
        let mut started: HashSet<u32> = HashSet::new();
        let mut light_logged: HashSet<u32> = HashSet::new();
        let mut partial_shown: HashMap<u32, usize> = HashMap::new();
        let mut partials = 0u64;

        while completed < expected_frames {
            let chunk = match rx.recv_chunk() {
                Ok(c) => c,
                Err(_) => break, // back end went away
            };
            let frame = chunk.frame;
            if let Some(l) = log {
                if started.insert(frame) {
                    l.log_with(tags::V_FRAME_START, [(tags::FIELD_FRAME, u64::from(frame))]);
                    l.log_with(tags::V_LIGHTPAYLOAD_START, [(tags::FIELD_FRAME, u64::from(frame))]);
                }
            }
            match assembler.accept(chunk) {
                Err(e) => errors.push(ViewerError::Corrupt {
                    rank,
                    detail: e.to_string(),
                }),
                Ok(AssemblyEvent::Late { rank, frame, stripe }) => {
                    errors.push(ViewerError::LateStripe { rank, frame, stripe });
                }
                Ok(AssemblyEvent::Progress { rank, frame, .. }) => {
                    let Some(light) = assembler.partial_light(rank, frame) else {
                        continue;
                    };
                    if let Some(l) = log {
                        if light_logged.insert(frame) {
                            let promised = u64::from(light.texture_width)
                                * u64::from(light.texture_height)
                                * u64::from(light.bytes_per_pixel)
                                + u64::from(light.geometry_segments) * 24;
                            l.log_with(tags::V_LIGHTPAYLOAD_END, [(tags::FIELD_FRAME, u64::from(frame))]);
                            l.log_with(
                                tags::V_HEAVYPAYLOAD_START,
                                [(tags::FIELD_FRAME, u64::from(frame)), (tags::FIELD_BYTES, promised)],
                            );
                        }
                    }
                    // Progressive integration: never roll back past a newer
                    // frame.  Rebuild the partial texture when the quad first
                    // appears (light landed) and thereafter only when the
                    // contiguous prefix grew by at least a quarter of the
                    // texture — bounding scene rebuilds per frame regardless
                    // of how finely the link chunked it.
                    if newest_shown.map(|n| frame >= n).unwrap_or(true) {
                        let width = light.texture_width as usize;
                        let height = light.texture_height as usize;
                        let full = width * height * light.bytes_per_pixel as usize;
                        let prefix = assembler.partial_texture(rank, frame).unwrap_or_default();
                        let shown = partial_shown.get(&frame).copied();
                        let grown = prefix.len().saturating_sub(shown.unwrap_or(0));
                        if shown.is_none() || grown * 4 >= full.max(1) {
                            let mut buf = Vec::with_capacity(full);
                            buf.extend_from_slice(&prefix);
                            buf.resize(full, 0);
                            let image = RgbaImage::from_rgba8(width, height, &buf);
                            let quad = Quad3 {
                                center: light.quad_center,
                                u: light.quad_u,
                                v: light.quad_v,
                            };
                            scene.update(texture_node, SceneNode::TextureQuad { image, quad });
                            partial_shown.insert(frame, prefix.len());
                            partials += 1;
                        }
                    }
                }
                Ok(AssemblyEvent::Complete { payload, wire_bytes }) => {
                    completed += 1;
                    let frame = payload.light.frame;
                    bytes_received.fetch_add(wire_bytes, Ordering::Relaxed);
                    frames_received.fetch_add(1, Ordering::Relaxed);
                    if let Some(l) = log {
                        if light_logged.insert(frame) {
                            l.log_with(tags::V_LIGHTPAYLOAD_END, [(tags::FIELD_FRAME, u64::from(frame))]);
                            l.log_with(
                                tags::V_HEAVYPAYLOAD_START,
                                [
                                    (tags::FIELD_FRAME, u64::from(frame)),
                                    (tags::FIELD_BYTES, payload.heavy.payload_bytes()),
                                ],
                            );
                        }
                    }
                    match newest_shown {
                        Some(newest) if frame < newest => {
                            errors.push(ViewerError::StaleFrame { rank, frame, newest });
                        }
                        _ => {
                            let image = RgbaImage::from_rgba8(
                                payload.light.texture_width as usize,
                                payload.light.texture_height as usize,
                                &payload.heavy.texture_rgba8,
                            );
                            let quad = Quad3 {
                                center: payload.light.quad_center,
                                u: payload.light.quad_u,
                                v: payload.light.quad_v,
                            };
                            scene.update(texture_node, SceneNode::TextureQuad { image, quad });
                            scene.update(
                                grid_node,
                                SceneNode::Lines {
                                    // Refcount bump, not a copy: the scene graph
                                    // shares the payload's segment list.
                                    segments: Arc::clone(&payload.heavy.geometry),
                                    color: [0.4, 0.9, 0.4, 0.8],
                                },
                            );
                            newest_shown = Some(frame);
                        }
                    }
                    partial_shown.remove(&frame);
                    if let Some(l) = log {
                        l.log_with(tags::V_HEAVYPAYLOAD_END, [(tags::FIELD_FRAME, u64::from(frame))]);
                        l.log_with(tags::V_FRAME_END, [(tags::FIELD_FRAME, u64::from(frame))]);
                    }
                }
            }
        }

        // Every expected frame is in (or the link died): drain stragglers so
        // late stripes are observed rather than abandoned in the queues.
        while let Some(chunk) = rx.try_recv_chunk() {
            let stripe = chunk.stripe;
            match assembler.accept(chunk) {
                Ok(AssemblyEvent::Late { rank, frame, stripe }) => {
                    errors.push(ViewerError::LateStripe { rank, frame, stripe })
                }
                Ok(_) => {}
                Err(e) => errors.push(ViewerError::Corrupt {
                    rank,
                    detail: format!("straggler on stripe {stripe}: {e}"),
                }),
            }
        }

        // Surface what never finished: partially-assembled frames first, then
        // frames this link never saw at all.
        for (rank, frame, received, total) in assembler.pending_frames() {
            errors.push(ViewerError::MissingFrame {
                rank,
                frame,
                received_chunks: received,
                total_chunks: total,
            });
        }
        if completed < expected_frames {
            let pending: HashSet<u32> = assembler.pending_frames().iter().map(|&(_, f, _, _)| f).collect();
            for frame in 0..expected_frames as u32 {
                if !assembler.is_complete(rank, frame) && !pending.contains(&frame) {
                    errors.push(ViewerError::MissingFrame {
                        rank,
                        frame,
                        received_chunks: 0,
                        total_chunks: 0,
                    });
                }
            }
        }
        partial_updates.fetch_add(partials, Ordering::Relaxed);
        let mut stats = assembler.stats.clone();
        stats.partial_updates = partials;
        (stats, errors)
    }

    /// Run the viewer against one striped receiver per back-end PE.  Blocks
    /// until every link has delivered its expected frames (or closed), then
    /// returns the report with the final composite.  Render-thread pacing
    /// rides the wall clock — the real path's natural time base.
    pub fn run(self, links: Vec<StripeReceiver>, logger: Option<NetLogger>) -> ViewerReport {
        self.run_on(&WallClock, links, logger)
    }

    /// [`Viewer::run`] with an explicit [`Clock`]: the render thread's poll
    /// interval waits through [`Clock::pace_until`], not a raw sleep, so a
    /// virtual-clock viewer never blocks on wall time.
    pub fn run_on(self, clock: &dyn Clock, links: Vec<StripeReceiver>, logger: Option<NetLogger>) -> ViewerReport {
        let frames_received = AtomicU64::new(0);
        let bytes_received = AtomicU64::new(0);
        let partial_updates = AtomicU64::new(0);
        let renders = AtomicU64::new(0);
        let done = Arc::new(AtomicBool::new(false));
        let raster_settings = RasterSettings::framing_volume(
            self.config.volume_dims,
            self.config.image_size.0,
            self.config.image_size.1,
        );
        let rasterizer = Rasterizer::new(&self.config.view, raster_settings);

        // Pre-create the per-PE nodes so I/O threads only ever update.
        let node_ids: Vec<(NodeId, NodeId)> = (0..links.len())
            .map(|_| {
                (
                    self.scene.insert(SceneNode::Text {
                        position: [0.0; 3],
                        content: "awaiting texture".to_string(),
                    }),
                    self.scene.insert(SceneNode::Text {
                        position: [0.0; 3],
                        content: "awaiting grid".to_string(),
                    }),
                )
            })
            .collect();

        let mut transport = TransportStats::default();
        let mut errors = Vec::new();
        std::thread::scope(|scope| {
            // I/O service threads, one per back-end PE link.
            let io_handles: Vec<_> = links
                .into_iter()
                .enumerate()
                .map(|(pe, rx)| {
                    let scene = &self.scene;
                    let (texture_node, grid_node) = node_ids[pe];
                    let log = logger.as_ref().map(|l| l.for_program(format!("viewer-worker-{pe}")));
                    let frames_received = &frames_received;
                    let bytes_received = &bytes_received;
                    let partial_updates = &partial_updates;
                    let expected = self.config.expected_frames;
                    scope.spawn(move || {
                        Self::io_thread(
                            scene,
                            rx,
                            pe,
                            texture_node,
                            grid_node,
                            expected,
                            log.as_ref(),
                            frames_received,
                            bytes_received,
                            partial_updates,
                        )
                    })
                })
                .collect();
            // The render thread: composites snapshots at its own rate until
            // the I/O threads are done.
            let scene = &self.scene;
            let renders = &renders;
            let done_flag = Arc::clone(&done);
            let raster_ref = &rasterizer;
            scope.spawn(move || {
                let mut last_generation = u64::MAX;
                while !done_flag.load(Ordering::Relaxed) {
                    let generation = scene.generation();
                    if generation != last_generation {
                        let snapshot_nodes: Vec<SceneNode> = scene.snapshot().into_iter().map(|(_, n)| n).collect();
                        let _ = raster_ref.render(&snapshot_nodes);
                        renders.fetch_add(1, Ordering::Relaxed);
                        last_generation = generation;
                    }
                    // Poll cadence through the Clock seam: the wall clock
                    // waits out the interval, a virtual clock never blocks.
                    clock.pace_until(clock.monotonic_now() + std::time::Duration::from_millis(2));
                }
            });
            // Join the I/O threads (they exit once every expected frame has
            // arrived or their sender hangs up), then stop the render thread.
            for handle in io_handles {
                if let Ok((stats, errs)) = handle.join() {
                    transport.merge(&stats);
                    errors.extend(errs);
                }
            }
            done.store(true, Ordering::Relaxed);
        });

        // Final composite of whatever arrived.
        let snapshot_nodes: Vec<SceneNode> = self.scene.snapshot().into_iter().map(|(_, n)| n).collect();
        let final_image = rasterizer.render(&snapshot_nodes);
        ViewerReport {
            frames_received: frames_received.load(Ordering::Relaxed) as usize,
            renders_performed: renders.load(Ordering::Relaxed),
            received_wire_bytes: bytes_received.load(Ordering::Relaxed),
            partial_updates: partial_updates.load(Ordering::Relaxed),
            transport,
            errors,
            scene_stats: self.scene.stats(),
            final_image,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{flat_frame as payload, links as support_links};
    use crate::transport::{striped_link, FrameChunk, StripeSender, TransportConfig};
    use bytes::Bytes;

    fn links(pes: usize) -> (Vec<StripeSender>, Vec<StripeReceiver>) {
        support_links(pes, &TransportConfig::default().with_chunk_bytes(512))
    }

    #[test]
    fn viewer_receives_frames_and_composites() {
        let pes = 3;
        let frames = 4;
        let (senders, receivers) = links(pes);
        let viewer = Viewer::new(ViewerConfig::new((32, 32, 32), frames));
        let producer = std::thread::spawn(move || {
            for f in 0..frames {
                for (r, tx) in senders.iter().enumerate() {
                    tx.send_frame(&payload(r as u32, f as u32, 16)).unwrap();
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        let report = viewer.run(receivers, None);
        producer.join().unwrap();
        assert_eq!(report.frames_received, pes * frames);
        assert!(report.renders_performed >= 1);
        assert!(report.received_wire_bytes > 0);
        assert!(report.errors.is_empty(), "clean run: {:?}", report.errors);
        assert_eq!(report.transport.frames, (pes * frames) as u64);
        assert!(
            report.final_image.coverage() > 0.05,
            "final image should show the slabs"
        );
        // Scene graph saw one texture + one grid update per payload plus the
        // initial placeholder inserts (and any progressive partials on top).
        assert!(report.scene_stats.updates >= (pes * frames * 2) as u64);
    }

    #[test]
    fn viewer_integrates_partial_frames_before_completion() {
        // 16×16×4 = 1 KB textures over 128-byte chunks: each frame arrives as
        // many chunks, so the quad must be placed and partially textured
        // before the frame completes.
        let config = TransportConfig::default().with_stripes(4).with_chunk_bytes(128);
        let (tx, rx) = striped_link(&config);
        let viewer = Viewer::new(ViewerConfig::new((32, 32, 32), 2));
        let producer = std::thread::spawn(move || {
            for f in 0..2 {
                tx.send_frame(&payload(0, f, 16)).unwrap();
            }
        });
        let report = viewer.run(vec![rx], None);
        producer.join().unwrap();
        assert_eq!(report.frames_received, 2);
        assert!(
            report.partial_updates >= 1,
            "progressive compositor must integrate stripes before the frame completes"
        );
        assert_eq!(report.transport.partial_updates, report.partial_updates);
        assert!(report.errors.is_empty());
    }

    #[test]
    fn viewer_handles_early_disconnect_with_typed_missing_frames() {
        let (senders, mut receivers) = links(1);
        let viewer = Viewer::new(ViewerConfig::new((32, 32, 32), 10));
        let tx = senders.into_iter().next().unwrap();
        tx.send_frame(&payload(0, 0, 8)).unwrap();
        drop(tx); // back end dies after one frame
        let report = viewer.run(vec![receivers.remove(0)], None);
        assert_eq!(report.frames_received, 1);
        // Frames 1..10 never arrived: nine typed MissingFrame errors.
        let missing: Vec<_> = report
            .errors
            .iter()
            .filter(|e| matches!(e, ViewerError::MissingFrame { .. }))
            .collect();
        assert_eq!(missing.len(), 9, "{:?}", report.errors);
        assert!(matches!(
            missing[0],
            ViewerError::MissingFrame {
                rank: 0,
                frame: 1,
                received_chunks: 0,
                total_chunks: 0
            }
        ));
    }

    #[test]
    fn late_stripes_after_the_final_composite_are_reported() {
        let config = TransportConfig::default().with_stripes(2).with_chunk_bytes(512);
        let (tx, rx) = striped_link(&config);
        tx.send_frame(&payload(0, 0, 8)).unwrap();
        tx.send_frame(&payload(0, 1, 8)).unwrap();
        // A stripe delivers one more chunk of frame 1 *after* its final
        // composite went out.
        tx.send_raw_chunk(FrameChunk {
            frame: 1,
            rank: 0,
            seq: 0,
            total: 4,
            stripe: 1,
            stripe_seq: 999,
            segment: 0,
            payload: Bytes::from(vec![0u8; 32]),
        })
        .unwrap();
        drop(tx);
        let viewer = Viewer::new(ViewerConfig::new((32, 32, 32), 2));
        let report = viewer.run(vec![rx], None);
        assert_eq!(report.frames_received, 2);
        assert_eq!(
            report.errors,
            vec![ViewerError::LateStripe {
                rank: 0,
                frame: 1,
                stripe: 1
            }],
            "the straggler must be surfaced, not silently dropped"
        );
    }

    #[test]
    fn out_of_order_frame_completion_does_not_roll_the_scene_back() {
        // Frame 1 completes before frame 0 (the sender emits it first); the
        // viewer must keep frame 1 on screen and report frame 0 as stale.
        let (senders, mut receivers) = links(1);
        let tx = senders.into_iter().next().unwrap();
        tx.send_frame(&payload(0, 1, 8)).unwrap();
        tx.send_frame(&payload(0, 0, 8)).unwrap();
        drop(tx);
        let viewer = Viewer::new(ViewerConfig::new((32, 32, 32), 2));
        let report = viewer.run(vec![receivers.remove(0)], None);
        assert_eq!(report.frames_received, 2, "stale frames still count as received");
        assert_eq!(
            report.errors,
            vec![ViewerError::StaleFrame {
                rank: 0,
                frame: 0,
                newest: 1
            }]
        );
    }

    #[test]
    fn viewer_logs_receipt_events() {
        let (senders, mut receivers) = links(1);
        let collector = netlogger::Collector::wall();
        let logger = collector.logger("desktop", "viewer-master");
        let viewer = Viewer::new(ViewerConfig::new((32, 32, 32), 2));
        let tx = senders.into_iter().next().unwrap();
        tx.send_frame(&payload(0, 0, 8)).unwrap();
        tx.send_frame(&payload(0, 1, 8)).unwrap();
        drop(tx);
        let report = viewer.run(vec![receivers.remove(0)], Some(logger));
        assert_eq!(report.frames_received, 2);
        let log = collector.finish();
        assert_eq!(log.with_tag(tags::V_FRAME_START).count(), 2);
        assert_eq!(log.with_tag(tags::V_LIGHTPAYLOAD_END).count(), 2);
        assert_eq!(log.with_tag(tags::V_HEAVYPAYLOAD_END).count(), 2);
    }

    #[test]
    fn render_rate_is_independent_of_slow_payload_arrival() {
        // Send payloads slowly; the render thread should still have run at
        // least once per scene change without waiting on the network.
        let (senders, mut receivers) = links(1);
        let viewer = Viewer::new(ViewerConfig::new((32, 32, 32), 3));
        let tx = senders.into_iter().next().unwrap();
        let producer = std::thread::spawn(move || {
            for f in 0..3 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                tx.send_frame(&payload(0, f, 8)).unwrap();
            }
        });
        let report = viewer.run(vec![receivers.remove(0)], None);
        producer.join().unwrap();
        assert_eq!(report.frames_received, 3);
        assert!(report.scene_stats.snapshots >= 3);
    }

    #[test]
    fn virtual_clock_viewer_never_sleeps_the_render_poll() {
        // The render thread's poll interval goes through Clock::pace_until;
        // under VirtualClock every deadline is already due, so a run whose
        // frames are all pre-delivered must finish without blocking on wall
        // time (the 2 ms x N polls would otherwise dominate).
        use crate::pipeline::VirtualClock;
        let frames = 3;
        let (senders, receivers) = links(1);
        let viewer = Viewer::new(ViewerConfig::new((32, 32, 32), frames));
        let tx = senders.into_iter().next().unwrap();
        for f in 0..frames {
            tx.send_frame(&payload(0, f as u32, 8)).unwrap();
        }
        drop(tx);
        let started = std::time::Instant::now();
        let report = viewer.run_on(&VirtualClock, receivers, None);
        assert_eq!(report.frames_received, frames);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "virtual-clock viewer must not pace on wall time"
        );
    }
}
