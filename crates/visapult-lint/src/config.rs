//! `lint.toml`: rule configuration and the justification-bearing allowlist.

use serde::Deserialize;
use std::fmt;

/// The rule identifiers `vlint` knows.  `lint.toml` entries must name one.
pub const RULES: [&str; 5] = [
    "determinism",
    "fingerprint-order",
    "relaxed-atomics",
    "unsafe-hygiene",
    "output-hygiene",
];

/// A configuration problem in `lint.toml` (reported before any scanning).
#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

// Raw deserialization targets (every field optional so a sparse lint.toml
// still parses; `LintConfig::from_toml` applies defaults and validates).

#[derive(Debug, Deserialize)]
struct RawDoc {
    lint: Option<RawLint>,
    rules: Option<RawRules>,
    allow: Option<Vec<RawAllow>>,
}

#[derive(Debug, Deserialize)]
struct RawLint {
    roots: Option<Vec<String>>,
    skip: Option<Vec<String>>,
}

#[derive(Debug, Deserialize)]
struct RawRules {
    determinism: Option<RawDeterminism>,
    fingerprint: Option<RawFingerprint>,
    output: Option<RawOutput>,
}

#[derive(Debug, Deserialize)]
struct RawDeterminism {
    clock_impls: Option<Vec<String>>,
    skip: Option<Vec<String>>,
}

#[derive(Debug, Deserialize)]
struct RawFingerprint {
    files: Option<Vec<String>>,
}

#[derive(Debug, Deserialize)]
struct RawOutput {
    crates: Option<Vec<String>>,
    deprecated: Option<Vec<String>>,
    facade_files: Option<Vec<String>>,
}

#[derive(Debug, Deserialize)]
struct RawAllow {
    rule: Option<String>,
    file: Option<String>,
    pattern: Option<String>,
    scope: Option<String>,
    justification: Option<String>,
}

/// One `[[allow]]` entry: a deliberate, justified suppression.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Which rule the entry suppresses.
    pub rule: String,
    /// Workspace-relative file, or a directory prefix ending in `/`.
    pub file: String,
    /// When present, the flagged code line must contain this substring.
    pub pattern: Option<String>,
    /// `"test"` restricts the entry to findings inside test/harness code;
    /// `"any"` (the default) suppresses regardless of scope.
    pub scope: Scope,
    /// The required one-line why.  Never empty.
    pub justification: String,
}

/// Where an allowlist entry applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Production and test code alike.
    Any,
    /// Only findings inside `#[cfg(test)]` regions or harness files
    /// (tests/, benches/, examples/, src/bin/).
    Test,
}

/// Parsed and validated `lint.toml`.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Directories (workspace-relative) to walk for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes excluded from every rule (fixtures, generated code).
    pub skip: Vec<String>,
    /// Files *implementing* the Clock seam: the only place wall-clock
    /// primitives may live without an allowlist entry.
    pub clock_impls: Vec<String>,
    /// Path prefixes the determinism rule skips wholesale (the bench harness
    /// measures wall time by design).
    pub determinism_skip: Vec<String>,
    /// Fingerprint-covered modules: unordered hash iteration is banned here.
    pub fingerprint_files: Vec<String>,
    /// Crate roots held to output hygiene (no println!/eprintln! outside
    /// tests and bins).
    pub output_crates: Vec<String>,
    /// Deprecated facade identifiers banned outside their facade modules.
    pub deprecated: Vec<String>,
    /// The facade modules (and their re-export sites) where the deprecated
    /// names legitimately appear.
    pub facade_files: Vec<String>,
    /// The justified suppressions.
    pub allow: Vec<AllowEntry>,
}

impl LintConfig {
    /// Parse and validate a `lint.toml` document.
    pub fn from_toml(text: &str) -> Result<LintConfig, ConfigError> {
        let raw: RawDoc = toml::from_str(text).map_err(|e| ConfigError(e.to_string()))?;
        let lint = raw.lint.unwrap_or(RawLint {
            roots: None,
            skip: None,
        });
        let rules = raw.rules.unwrap_or(RawRules {
            determinism: None,
            fingerprint: None,
            output: None,
        });
        let det = rules.determinism.unwrap_or(RawDeterminism {
            clock_impls: None,
            skip: None,
        });
        let fp = rules.fingerprint.unwrap_or(RawFingerprint { files: None });
        let out = rules.output.unwrap_or(RawOutput {
            crates: None,
            deprecated: None,
            facade_files: None,
        });

        let mut allow = Vec::new();
        for (i, e) in raw.allow.unwrap_or_default().into_iter().enumerate() {
            let rule = e
                .rule
                .ok_or_else(|| ConfigError(format!("allow entry #{} is missing `rule`", i + 1)))?;
            if !RULES.contains(&rule.as_str()) {
                return Err(ConfigError(format!(
                    "allow entry #{}: unknown rule `{rule}` (expected one of {RULES:?})",
                    i + 1
                )));
            }
            let file = e
                .file
                .ok_or_else(|| ConfigError(format!("allow entry #{} is missing `file`", i + 1)))?;
            let justification = e.justification.unwrap_or_default();
            if justification.trim().is_empty() {
                return Err(ConfigError(format!(
                    "allow entry #{} ({rule} in {file}) has no justification — every \
                     suppression must say why in one line",
                    i + 1
                )));
            }
            let scope = match e.scope.as_deref() {
                None | Some("any") => Scope::Any,
                Some("test") => Scope::Test,
                Some(other) => {
                    return Err(ConfigError(format!(
                        "allow entry #{}: unknown scope `{other}` (expected `test` or `any`)",
                        i + 1
                    )))
                }
            };
            allow.push(AllowEntry {
                rule,
                file,
                pattern: e.pattern,
                scope,
                justification,
            });
        }

        Ok(LintConfig {
            roots: lint.roots.unwrap_or_else(|| {
                vec![
                    "crates".into(),
                    "shims".into(),
                    "src".into(),
                    "tests".into(),
                    "examples".into(),
                ]
            }),
            skip: lint.skip.unwrap_or_default(),
            clock_impls: det.clock_impls.unwrap_or_default(),
            determinism_skip: det.skip.unwrap_or_default(),
            fingerprint_files: fp.files.unwrap_or_default(),
            output_crates: out.crates.unwrap_or_default(),
            deprecated: out.deprecated.unwrap_or_default(),
            facade_files: out.facade_files.unwrap_or_default(),
            allow,
        })
    }
}

/// Does `file` (workspace-relative, `/`-separated) match `spec` — an exact
/// path, or a directory prefix when `spec` ends in `/`?
pub fn path_matches(file: &str, spec: &str) -> bool {
    if let Some(prefix) = spec.strip_suffix('/') {
        file == prefix || file.starts_with(spec) || file.starts_with(&format!("{prefix}/"))
    } else {
        file == spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_config_parses_with_defaults() {
        let cfg = LintConfig::from_toml("").unwrap();
        assert!(cfg.roots.contains(&"crates".to_string()));
        assert!(cfg.allow.is_empty());
    }

    #[test]
    fn entries_require_justifications() {
        let doc = "[[allow]]\nrule = \"determinism\"\nfile = \"x.rs\"\n";
        let err = LintConfig::from_toml(doc).unwrap_err();
        assert!(err.to_string().contains("justification"), "{err}");
    }

    #[test]
    fn unknown_rules_are_rejected() {
        let doc = "[[allow]]\nrule = \"nope\"\nfile = \"x.rs\"\njustification = \"y\"\n";
        assert!(LintConfig::from_toml(doc).is_err());
    }

    #[test]
    fn path_prefix_matching() {
        assert!(path_matches("crates/a/src/lib.rs", "crates/a/"));
        assert!(path_matches("crates/a/src/lib.rs", "crates/a/src/lib.rs"));
        assert!(!path_matches("crates/ab/src/lib.rs", "crates/a/"));
        assert!(!path_matches("crates/a/src/lib.rs", "crates/a/src"));
    }
}
