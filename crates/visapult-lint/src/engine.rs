//! Walk the workspace, run the rules, apply the allowlist, detect staleness.

use crate::config::{path_matches, AllowEntry, LintConfig, Scope};
use crate::lexer::scan;
use crate::rules::{check_file, Finding};
use std::fs;
use std::path::{Path, PathBuf};

/// The outcome of one lint pass.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings not covered by any allowlist entry — these fail the build.
    pub active: Vec<Finding>,
    /// Findings suppressed by an entry (index into the config's allow list).
    pub suppressed: Vec<(Finding, usize)>,
    /// Allowlist entries that matched nothing — stale entries fail the build
    /// too, so the audit table never outlives the code it describes.
    pub stale: Vec<AllowEntry>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the pass should exit zero.
    pub fn is_clean(&self) -> bool {
        self.active.is_empty() && self.stale.is_empty()
    }
}

/// Run the full pass over `root` (the workspace directory holding lint.toml).
pub fn run_lint(root: &Path, cfg: &LintConfig) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    for r in &cfg.roots {
        collect_rs_files(&root.join(r), root, &cfg.skip, &mut files)?;
    }
    files.sort();

    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    let mut entry_hits = vec![0usize; cfg.allow.len()];

    for rel in &files {
        let text = fs::read_to_string(root.join(rel))?;
        let lines = scan(&text, harness_scope(rel));
        for f in check_file(rel, &lines, cfg) {
            match matching_entry(&f, cfg) {
                Some(idx) => {
                    entry_hits[idx] += 1;
                    report.suppressed.push((f, idx));
                }
                None => report.active.push(f),
            }
        }
    }

    for (idx, hits) in entry_hits.iter().enumerate() {
        if *hits == 0 {
            report.stale.push(cfg.allow[idx].clone());
        }
    }
    Ok(report)
}

/// Whole-file harness scope: integration tests, benches, examples, bins and
/// fixture trees are measurement/demo code, where wall time and stdout are
/// the point.
fn harness_scope(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel
            .split('/')
            .any(|seg| matches!(seg, "tests" | "benches" | "examples" | "bin" | "fixtures"))
}

fn collect_rs_files(dir: &Path, root: &Path, skip: &[String], out: &mut Vec<String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") || skip.iter().any(|s| path_matches(&rel, s)) {
                continue;
            }
            collect_rs_files(&path, root, skip, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") && !skip.iter().any(|s| path_matches(&rel, s)) {
            out.push(rel);
        }
    }
    Ok(())
}

/// First allowlist entry covering this finding, if any.
fn matching_entry(f: &Finding, cfg: &LintConfig) -> Option<usize> {
    cfg.allow.iter().position(|e| {
        e.rule == f.rule
            && path_matches(&f.file, &e.file)
            && e.pattern.as_ref().is_none_or(|p| f.snippet.contains(p.as_str()))
            && (e.scope == Scope::Any || f.in_test)
    })
}

/// Render the human report.  One line per finding, grep-friendly.
pub fn render_report(report: &LintReport, verbose: bool) -> String {
    let mut out = String::new();
    for f in &report.active {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            f.file, f.line, f.rule, f.message, f.snippet
        ));
    }
    for e in &report.stale {
        out.push_str(&format!(
            "lint.toml: stale allow entry: rule `{}` file `{}`{} no longer matches any source line \
             — delete it (justification was: {})\n",
            e.rule,
            e.file,
            e.pattern
                .as_ref()
                .map(|p| format!(" pattern `{p}`"))
                .unwrap_or_default(),
            e.justification
        ));
    }
    if verbose {
        for (f, idx) in &report.suppressed {
            out.push_str(&format!(
                "allowed {}:{}: [{}] via entry #{}\n",
                f.file,
                f.line,
                f.rule,
                idx + 1
            ));
        }
    }
    out.push_str(&format!(
        "vlint: {} files scanned, {} finding(s), {} suppressed, {} stale allow entr(ies)\n",
        report.files_scanned,
        report.active.len(),
        report.suppressed.len(),
        report.stale.len()
    ));
    out
}

/// Emit ready-to-paste `[[allow]]` entries for the active findings, grouped
/// one entry per (rule, file, scope) with the banned token as the pattern
/// when every finding in the group shares one.
pub fn render_fix_allowlist(report: &LintReport) -> String {
    let mut groups: Vec<(&'static str, String, bool, Vec<&Finding>)> = Vec::new();
    for f in &report.active {
        match groups
            .iter_mut()
            .find(|(r, file, t, _)| *r == f.rule && *file == f.file && *t == f.in_test)
        {
            Some((_, _, _, v)) => v.push(f),
            None => groups.push((f.rule, f.file.clone(), f.in_test, vec![f])),
        }
    }
    let mut out = String::new();
    if groups.is_empty() {
        out.push_str("# vlint --fix-allowlist: nothing to allow — the workspace is clean.\n");
        return out;
    }
    out.push_str("# vlint --fix-allowlist: paste into lint.toml and replace each TODO with a\n# real one-line justification (entries without one are rejected).\n");
    for (rule, file, in_test, findings) in groups {
        out.push('\n');
        out.push_str("[[allow]]\n");
        out.push_str(&format!("rule = \"{rule}\"\n"));
        out.push_str(&format!("file = \"{file}\"\n"));
        if in_test {
            out.push_str("scope = \"test\"\n");
        }
        out.push_str(&format!(
            "justification = \"TODO: {} finding(s) at line(s) {}\"\n",
            findings.len(),
            findings
                .iter()
                .map(|f| f.line.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_scope_covers_the_right_trees() {
        assert!(harness_scope("tests/service.rs"));
        assert!(harness_scope("crates/x/benches/b.rs"));
        assert!(harness_scope("crates/x/src/bin/tool.rs"));
        assert!(harness_scope("examples/quickstart.rs"));
        assert!(!harness_scope("crates/x/src/lib.rs"));
    }
}
