//! A token-level scanner for Rust source, built for lint rules that match on
//! *code*, never on comments or string literals.
//!
//! [`scan`] splits a file into [`SourceLine`]s where the `code` view has every
//! comment and every string/char-literal *body* blanked to spaces (structural
//! quotes survive, so token boundaries do not merge), the `comment` view keeps
//! the comment text (for `// SAFETY:` detection), and `in_test` marks lines
//! inside a `#[cfg(test)]` item body.  Columns are preserved: `code[i]` and
//! `raw[i]` describe the same byte.
//!
//! This is deliberately not a parser.  The rules it feeds are substring/token
//! matches over the blanked view plus a little brace-depth bookkeeping — the
//! "lightweight lexing + path resolution" tier, strong enough to machine-check
//! the workspace invariants without dragging in syn or rustc internals.

/// One scanned source line, in the three views the rules consume.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// The line exactly as written.
    pub raw: String,
    /// The line with comments and string/char bodies blanked to spaces.
    pub code: String,
    /// The comment text of the line (contents after `//` / inside `/* */`).
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]` item body, or the
    /// whole file is harness scope (tests/, benches/, examples/, src/bin/).
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    /// Nested depth.
    BlockComment(u32),
    /// Inside `"…"`; tracks a pending backslash escape.
    Str {
        escaped: bool,
    },
    /// Inside `r##"…"##`; the payload is the number of `#`s.
    RawStr(usize),
}

/// Scan `source` into per-line views.  `harness_scope` marks the whole file
/// as test/bench/bin scope (every line reports `in_test`).
pub fn scan(source: &str, harness_scope: bool) -> Vec<SourceLine> {
    let (code_text, comment_text) = blank(source);
    let raw_lines: Vec<&str> = source.split('\n').collect();
    let code_lines: Vec<&str> = code_text.split('\n').collect();
    let comment_lines: Vec<&str> = comment_text.split('\n').collect();
    let test_flags = cfg_test_lines(&code_lines);

    raw_lines
        .iter()
        .enumerate()
        .map(|(i, raw)| SourceLine {
            raw: (*raw).to_string(),
            code: code_lines.get(i).copied().unwrap_or("").to_string(),
            comment: comment_lines.get(i).copied().unwrap_or("").to_string(),
            in_test: harness_scope || test_flags.get(i).copied().unwrap_or(false),
        })
        .collect()
}

/// Produce the blanked code view and the extracted comment view, both
/// byte-for-byte aligned with `source` (newlines preserved).
fn blank(source: &str) -> (String, String) {
    let bytes = source.as_bytes();
    let mut code = vec![b' '; bytes.len()];
    let mut comment = vec![b' '; bytes.len()];
    let mut mode = Mode::Code;
    let mut i = 0;

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            code[i] = b'\n';
            comment[i] = b'\n';
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    mode = Mode::LineComment;
                    i += 2;
                    continue;
                }
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw (and byte/raw-byte) strings: r"…", r#"…"#, br#"…"#.
                if b == b'r' || b == b'b' {
                    let mut j = i + 1;
                    if b == b'b' && bytes.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    if b == b'b' && bytes.get(j) == Some(&b'"') {
                        // Plain byte string b"…".
                        code[i] = b'b';
                        code[j] = b'"';
                        mode = Mode::Str { escaped: false };
                        i = j + 1;
                        continue;
                    }
                    if bytes.get(i + 1) == Some(&b'r') || b == b'r' {
                        let mut hashes = 0;
                        while bytes.get(j) == Some(&b'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&b'"') {
                            for (k, cb) in code.iter_mut().enumerate().take(j + 1).skip(i) {
                                *cb = bytes[k];
                            }
                            mode = Mode::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    }
                    code[i] = b;
                    i += 1;
                    continue;
                }
                if b == b'"' {
                    code[i] = b'"';
                    mode = Mode::Str { escaped: false };
                    i += 1;
                    continue;
                }
                if b == b'\'' {
                    // Char literal vs lifetime.  A literal closes within a few
                    // bytes (`'x'`, `'\n'`, `'\u{1F600}'`); a lifetime never
                    // has a closing quote before a non-ident char.
                    if let Some(end) = char_literal_end(bytes, i) {
                        code[i] = b'\'';
                        code[end] = b'\'';
                        i = end + 1;
                        continue;
                    }
                    code[i] = b'\'';
                    i += 1;
                    continue;
                }
                code[i] = b;
                i += 1;
            }
            Mode::LineComment => {
                comment[i] = b;
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment[i] = b;
                    i += 1;
                }
            }
            Mode::Str { escaped } => {
                if escaped {
                    mode = Mode::Str { escaped: false };
                } else if b == b'\\' {
                    mode = Mode::Str { escaped: true };
                } else if b == b'"' {
                    code[i] = b'"';
                    mode = Mode::Code;
                }
                i += 1;
            }
            Mode::RawStr(hashes) => {
                if b == b'"' {
                    let closes = (0..hashes).all(|k| bytes.get(i + 1 + k) == Some(&b'#'));
                    if closes {
                        for (k, cb) in code.iter_mut().enumerate().take(i + 1 + hashes).skip(i) {
                            *cb = bytes[k];
                        }
                        mode = Mode::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }

    (
        String::from_utf8_lossy(&code).into_owned(),
        String::from_utf8_lossy(&comment).into_owned(),
    )
}

/// If `bytes[start]` opens a char literal, the index of its closing quote.
fn char_literal_end(bytes: &[u8], start: usize) -> Option<usize> {
    let next = *bytes.get(start + 1)?;
    if next == b'\\' {
        // Escape: find the closing quote within a bounded window
        // (`'\u{10FFFF}'` is the longest form).
        (start + 3..bytes.len().min(start + 13)).find(|&j| bytes[j] == b'\'')
    } else if next == b'\'' {
        None // `''` is not a literal; treat as stray quotes.
    } else {
        // One (possibly multibyte) char then a quote — otherwise a lifetime.
        let width = utf8_width(next);
        let j = start + 1 + width;
        (bytes.get(j) == Some(&b'\'')).then_some(j)
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Mark the lines inside `#[cfg(test)]` item bodies.
///
/// Tracks brace depth over the blanked code view; a `cfg` attribute containing
/// the word `test` arms a pending marker which binds to the next item body
/// `{…}` (cancelled by a `;` first — `#[cfg(test)] use …;` guards no region).
fn cfg_test_lines(code_lines: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut region_stack: Vec<i64> = Vec::new();

    for (lineno, line) in code_lines.iter().enumerate() {
        if !region_stack.is_empty() {
            flags[lineno] = true;
        }
        let chars: Vec<char> = line.chars().collect();
        let mut c = 0;
        while c < chars.len() {
            let ch = chars[c];
            if ch == '#' && chars.get(c + 1) == Some(&'[') {
                // Scan the attribute body (attributes in this workspace never
                // span lines).
                let mut j = c + 2;
                let mut brackets = 1;
                let mut body = String::new();
                while j < chars.len() && brackets > 0 {
                    match chars[j] {
                        '[' => brackets += 1,
                        ']' => brackets -= 1,
                        other => body.push(other),
                    }
                    if chars[j] == '[' || chars[j] == ']' {
                        body.push(chars[j]);
                    }
                    j += 1;
                }
                if body.contains("cfg") && has_word(&body, "test") {
                    pending_attr = true;
                }
                c = j;
                continue;
            }
            match ch {
                '{' => {
                    depth += 1;
                    if pending_attr {
                        pending_attr = false;
                        region_stack.push(depth);
                        flags[lineno] = true;
                    }
                }
                '}' => {
                    if region_stack.last() == Some(&depth) {
                        region_stack.pop();
                    }
                    depth -= 1;
                }
                ';' if pending_attr && region_stack.last() != Some(&depth) => {
                    pending_attr = false;
                }
                _ => {}
            }
            c += 1;
        }
    }
    flags
}

/// True when `word` appears in `text` with non-identifier chars on both sides.
pub fn has_word(text: &str, word: &str) -> bool {
    find_word(text, word, 0).is_some()
}

/// Find `word` in `text` at or after `from`, as a whole token: the bytes
/// around the match must not be identifier chars (so `Instant::now` never
/// matches `monotonic_now`, and `sleep` never matches `sleeper`).
pub fn find_word(text: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let wlen = word.len();
    let mut start = from;
    while let Some(pos) = text.get(start..).and_then(|t| t.find(word)) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after_ok = at + wlen >= bytes.len() || !is_ident_byte(bytes[at + wlen]);
        // A leading `::`-qualified ban pattern should not demand boundaries
        // inside itself; only the outer edges matter.
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + wlen.max(1);
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"Instant::now\"; // Instant::now here\nlet y = 1;";
        let lines = scan(src, false);
        assert!(!lines[0].code.contains("Instant::now"));
        assert!(lines[0].comment.contains("Instant::now here"));
        assert!(lines[1].code.contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let s = r#\"thread::sleep\"#; let c = 'x'; let lt: &'static str = \"\";";
        let lines = scan(src, false);
        assert!(!lines[0].code.contains("thread::sleep"));
        assert!(
            lines[0].code.contains("'static"),
            "lifetime survives: {}",
            lines[0].code
        );
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* a /* b */ thread::sleep */ let ok = 1;";
        let lines = scan(src, false);
        assert!(!lines[0].code.contains("thread::sleep"));
        assert!(lines[0].code.contains("let ok = 1;"));
    }

    #[test]
    fn cfg_test_regions_cover_mod_bodies() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod2() {}";
        let lines = scan(src, false);
        assert!(!lines[0].in_test);
        assert!(lines[3].in_test, "inside mod tests");
        assert!(!lines[5].in_test, "after the region");
    }

    #[test]
    fn cfg_test_use_statement_guards_no_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { let x = 1; }";
        let lines = scan(src, false);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn word_boundaries_hold() {
        assert!(has_word("thread::sleep(d)", "thread::sleep"));
        assert!(!has_word("clock.monotonic_now()", "now"));
        assert!(!has_word("sleeper.poke()", "sleep"));
    }

    #[test]
    fn harness_scope_marks_every_line() {
        let lines = scan("fn main() {}\n", true);
        assert!(lines.iter().all(|l| l.in_test));
    }
}
