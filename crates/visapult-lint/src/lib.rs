#![forbid(unsafe_code)]
//! # visapult-lint — the workspace determinism & concurrency invariants, machine-checked
//!
//! The repo's standing invariant — byte-identical replay fingerprints across
//! the Real and VirtualTime paths — used to be enforced only by golden tests
//! after the fact.  `vlint` moves the enforcement to the source: a hand-rolled
//! token-level pass (no syn, no clippy-driver — the vendored-shim discipline
//! applies to tooling too) that fails CI the moment a PR introduces the kinds
//! of nondeterminism the golden tests would only catch at replay time.
//!
//! The rules ([`rules`]):
//!
//! 1. **determinism** — `Instant::now`, `SystemTime::now`, `thread::sleep`
//!    and unseeded RNG are banned outside the `Clock` implementations.
//! 2. **fingerprint-order** — fingerprint-covered modules may not iterate
//!    `HashMap`/`HashSet` unless sorted or BTree-backed.
//! 3. **relaxed-atomics** — every `Ordering::Relaxed` carries a justified
//!    `lint.toml` entry: the audit table of why each site needs no
//!    acquire/release edges.
//! 4. **unsafe-hygiene** — `unsafe` requires an adjacent `// SAFETY:`
//!    comment (the workspace is currently `#![forbid(unsafe_code)]`
//!    throughout, so this rule guards the door).
//! 5. **output-hygiene** — library crates never print, and the deprecated
//!    campaign facades are referenced only from their facade modules.
//!
//! Suppressions live in the root `lint.toml` as `[[allow]]` entries, each
//! requiring a one-line justification; entries that stop matching real source
//! lines are *stale* and fail the pass, so the audit table cannot rot.
//! `vlint --fix-allowlist` emits ready-to-paste entries for current findings
//! so new violations are triaged deliberately instead of hand-writing TOML.

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use config::{AllowEntry, ConfigError, LintConfig, Scope, RULES};
pub use engine::{render_fix_allowlist, render_report, run_lint, LintReport};
pub use rules::Finding;
