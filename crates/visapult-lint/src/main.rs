#![forbid(unsafe_code)]
//! `vlint` — run the workspace determinism & concurrency lint pass.
//!
//! ```text
//! vlint [--root DIR] [--config FILE] [--fix-allowlist] [--verbose]
//! ```
//!
//! Exits non-zero on any unallowlisted finding or stale allowlist entry.
//! With `--fix-allowlist`, prints ready-to-paste `[[allow]]` TOML for the
//! current findings instead (still exits non-zero when findings exist, so CI
//! cannot accidentally pass in fix mode).

use std::path::PathBuf;
use std::process::ExitCode;
use visapult_lint::{render_fix_allowlist, render_report, run_lint, LintConfig};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut fix_allowlist = false;
    let mut verbose = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config_path = args.next().map(PathBuf::from),
            "--fix-allowlist" => fix_allowlist = true,
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                print!(
                    "vlint: workspace determinism & concurrency lint\n\n\
                     USAGE: vlint [--root DIR] [--config FILE] [--fix-allowlist] [--verbose]\n\n\
                     --root DIR        workspace root (default: nearest ancestor with lint.toml)\n\
                     --config FILE     lint config (default: <root>/lint.toml)\n\
                     --fix-allowlist   print ready-to-paste [[allow]] entries for current findings\n\
                     --verbose         also list suppressed findings\n"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("vlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("vlint: no lint.toml found in this directory or any ancestor; pass --root");
            return ExitCode::from(2);
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("vlint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match LintConfig::from_toml(&config_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("vlint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match run_lint(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if fix_allowlist {
        print!("{}", render_fix_allowlist(&report));
    } else {
        print!("{}", render_report(&report, verbose));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Nearest ancestor of the current directory containing `lint.toml`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
