//! The five workspace invariants, as token-level checks over scanned lines.

use crate::config::{path_matches, LintConfig};
use crate::lexer::{find_word, has_word, SourceLine};

/// One rule violation at a specific source line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (one of [`crate::config::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What tripped and why it matters.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Whether the line sits in test/harness scope (allowlistable with
    /// `scope = "test"`).
    pub in_test: bool,
}

fn finding(rule: &'static str, file: &str, lineno: usize, line: &SourceLine, message: String) -> Finding {
    Finding {
        rule,
        file: file.to_string(),
        line: lineno + 1,
        message,
        snippet: line.raw.trim().to_string(),
        in_test: line.in_test,
    }
}

/// Run every rule over one scanned file.
pub fn check_file(file: &str, lines: &[SourceLine], cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    determinism(file, lines, cfg, &mut out);
    fingerprint_order(file, lines, cfg, &mut out);
    relaxed_atomics(file, lines, &mut out);
    unsafe_hygiene(file, lines, &mut out);
    output_hygiene(file, lines, cfg, &mut out);
    out
}

/// Rule 1 — determinism: wall-clock reads, raw sleeps and unseeded RNG are
/// banned outside the Clock implementations.  Replay fingerprints are only
/// byte-identical across the Real and VirtualTime paths because time flows
/// through the `Clock` seam; a stray `Instant::now` is a latent fingerprint
/// flip.
fn determinism(file: &str, lines: &[SourceLine], cfg: &LintConfig, out: &mut Vec<Finding>) {
    if cfg.clock_impls.iter().any(|c| path_matches(file, c))
        || cfg.determinism_skip.iter().any(|s| path_matches(file, s))
    {
        return;
    }
    const BANNED: [(&str, &str); 6] = [
        ("Instant::now", "wall-clock read outside the Clock seam"),
        ("SystemTime::now", "wall-clock read outside the Clock seam"),
        (
            "thread::sleep",
            "raw sleep outside the Clock seam (use Clock::pace_until)",
        ),
        (
            "thread_rng",
            "unseeded RNG breaks replay determinism (seed via StdRng::seed_from_u64)",
        ),
        (
            "from_entropy",
            "unseeded RNG breaks replay determinism (seed via StdRng::seed_from_u64)",
        ),
        (
            "rand::random",
            "unseeded RNG breaks replay determinism (seed via StdRng::seed_from_u64)",
        ),
    ];
    for (i, l) in lines.iter().enumerate() {
        for (token, why) in BANNED {
            if has_word(&l.code, token) {
                out.push(finding("determinism", file, i, l, format!("`{token}`: {why}")));
            }
        }
    }
}

/// Rule 2 — fingerprint ordering: in fingerprint-covered modules, iterating a
/// `HashMap`/`HashSet` is banned unless the results are sorted or the
/// container is a BTree type.  Hash iteration order is
/// seed-and-allocation-dependent, so any event, report line or byte stream
/// folded from it would differ run to run.
fn fingerprint_order(file: &str, lines: &[SourceLine], cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !cfg.fingerprint_files.iter().any(|f| path_matches(file, f)) {
        return;
    }
    let hash_idents = collect_hash_idents(lines);
    const ITER_METHODS: [&str; 5] = [".iter()", ".keys()", ".values()", ".drain(", ".into_iter()"];

    for (i, l) in lines.iter().enumerate() {
        let code = &l.code;
        // Direct iteration of a known hash-typed binding: `name.iter()`,
        // `for … in name` / `&name` / `name.keys()` …
        for ident in &hash_idents {
            let mut hit = false;
            for m in ITER_METHODS {
                let probe = format!("{ident}{m}");
                if code.contains(&probe) && has_word(code, ident) {
                    hit = true;
                }
            }
            if let Some(pos) = find_word(code, "for", 0) {
                if let Some(inpos) = find_word(code, "in", pos) {
                    let tail = &code[inpos..];
                    if has_word(tail, ident) && !tail.contains('.') {
                        hit = true;
                    }
                }
            }
            if hit && !sorted_escape(lines, i) {
                out.push(finding(
                    "fingerprint-order",
                    file,
                    i,
                    l,
                    format!(
                        "iteration over hash-ordered `{ident}` in a fingerprint-covered module \
                         (sort the results or use a BTree container)"
                    ),
                ));
            }
        }
    }
}

/// Identifiers bound to `HashMap`/`HashSet` in this file: field/let/param
/// type annotations (`name: HashMap<…>`) and constructor bindings
/// (`let name = HashMap::new()`).
fn collect_hash_idents(lines: &[SourceLine]) -> Vec<String> {
    let mut idents = Vec::new();
    for l in lines {
        let code = &l.code;
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(at) = find_word(code, ty, from) {
                from = at + ty.len();
                let before = code[..at].trim_end();
                if let Some(head) = before.strip_suffix(':') {
                    if let Some(name) = trailing_ident(head) {
                        push_unique(&mut idents, name);
                        continue;
                    }
                }
                if let Some(head) = before.strip_suffix('=') {
                    if let Some(name) = trailing_ident(head) {
                        push_unique(&mut idents, name);
                    }
                }
            }
        }
    }
    idents
}

fn trailing_ident(text: &str) -> Option<String> {
    let trimmed = text.trim_end();
    let tail: String = trimmed
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    let name: String = tail.chars().rev().collect();
    (!name.is_empty()
        && !name.chars().next().unwrap().is_ascii_digit()
        && !matches!(name.as_str(), "mut" | "let" | "pub"))
    .then_some(name)
}

fn push_unique(v: &mut Vec<String>, s: String) {
    if !v.contains(&s) {
        v.push(s);
    }
}

/// The iteration is fine when this line or the next two sort the results or
/// land them in a BTree container.
fn sorted_escape(lines: &[SourceLine], i: usize) -> bool {
    lines[i..lines.len().min(i + 3)]
        .iter()
        .any(|l| l.code.contains(".sort") || l.code.contains("sorted") || l.code.contains("BTree"))
}

/// Rule 3 — atomics audit: every `Ordering::Relaxed` needs a justified
/// allowlist entry.  Relaxed is correct for monotonic counters read after a
/// join and wrong almost everywhere else; the audit keeps each site's
/// argument written down where the next PR will see it.
fn relaxed_atomics(file: &str, lines: &[SourceLine], out: &mut Vec<Finding>) {
    for (i, l) in lines.iter().enumerate() {
        if has_word(&l.code, "Relaxed") {
            out.push(finding(
                "relaxed-atomics",
                file,
                i,
                l,
                "`Ordering::Relaxed` requires a justified lint.toml entry (what makes this \
                 site safe without acquire/release edges?)"
                    .to_string(),
            ));
        }
    }
}

/// Rule 4 — unsafe hygiene: an `unsafe` block/impl/fn needs an adjacent
/// `// SAFETY:` comment stating the proof obligation.
fn unsafe_hygiene(file: &str, lines: &[SourceLine], out: &mut Vec<Finding>) {
    for (i, l) in lines.iter().enumerate() {
        if !has_word(&l.code, "unsafe") {
            continue;
        }
        let documented = lines[i.saturating_sub(3)..=i]
            .iter()
            .any(|prev| prev.comment.contains("SAFETY:"));
        if !documented {
            out.push(finding(
                "unsafe-hygiene",
                file,
                i,
                l,
                "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
            ));
        }
    }
}

/// Rule 5 — output hygiene: library crates never print (reports flow through
/// `CampaignReport`/NetLogger), and the deprecated campaign facades are only
/// referenced from their own facade modules.
fn output_hygiene(file: &str, lines: &[SourceLine], cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !cfg.output_crates.iter().any(|c| path_matches(file, c)) {
        return;
    }
    let in_facade = cfg.facade_files.iter().any(|f| path_matches(file, f));
    const PRINTS: [&str; 4] = ["println!", "eprintln!", "print!", "eprint!"];
    for (i, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        for m in PRINTS {
            if l.code.contains(m) {
                out.push(finding(
                    "output-hygiene",
                    file,
                    i,
                    l,
                    format!("`{m}` in a library crate (route output through the report/logger layer)"),
                ));
            }
        }
        if !in_facade {
            for name in &cfg.deprecated {
                if has_word(&l.code, name) {
                    out.push(finding(
                        "output-hygiene",
                        file,
                        i,
                        l,
                        format!(
                            "deprecated facade `{name}` referenced outside its facade module \
                                 (use the Pipeline builder)"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn cfg_with(fp_files: &[&str], out_crates: &[&str]) -> LintConfig {
        let mut cfg = LintConfig::from_toml("").unwrap();
        cfg.fingerprint_files = fp_files.iter().map(|s| s.to_string()).collect();
        cfg.output_crates = out_crates.iter().map(|s| s.to_string()).collect();
        cfg.deprecated = vec!["run_real_campaign".to_string()];
        cfg
    }

    #[test]
    fn determinism_flags_wall_clock_but_not_comments() {
        let lines = scan("let t = Instant::now(); // Instant::now is fine here\n", false);
        let f = check_file("a.rs", &lines, &cfg_with(&[], &[]));
        assert_eq!(f.iter().filter(|f| f.rule == "determinism").count(), 1);
    }

    #[test]
    fn clock_impls_are_exempt() {
        let mut cfg = cfg_with(&[], &[]);
        cfg.clock_impls = vec!["clock.rs".to_string()];
        let lines = scan("let t = Instant::now();\n", false);
        assert!(check_file("clock.rs", &lines, &cfg).is_empty());
    }

    #[test]
    fn hash_iteration_flagged_only_in_fingerprint_files() {
        let src = "let mut m: HashMap<u32, u32> = HashMap::new();\nfor (k, v) in &m { emit(k, v); }\n";
        let lines = scan(src, false);
        let hits = check_file("fp.rs", &lines, &cfg_with(&["fp.rs"], &[]));
        assert_eq!(
            hits.iter().filter(|f| f.rule == "fingerprint-order").count(),
            1,
            "{hits:?}"
        );
        assert!(check_file("other.rs", &lines, &cfg_with(&["fp.rs"], &[])).is_empty());
    }

    #[test]
    fn sorted_iteration_escapes() {
        let src = "let m: HashMap<u32, u32> = HashMap::new();\nlet mut v: Vec<_> = m.iter().collect();\nv.sort();\n";
        let lines = scan(src, false);
        let hits = check_file("fp.rs", &lines, &cfg_with(&["fp.rs"], &[]));
        assert!(hits.iter().all(|f| f.rule != "fingerprint-order"), "{hits:?}");
    }

    #[test]
    fn relaxed_and_unsafe_rules_fire() {
        let src = "x.load(Ordering::Relaxed);\nunsafe { y() };\n// SAFETY: trusted\nunsafe { z() };\n";
        let lines = scan(src, false);
        let f = check_file("a.rs", &lines, &cfg_with(&[], &[]));
        assert_eq!(f.iter().filter(|f| f.rule == "relaxed-atomics").count(), 1);
        assert_eq!(f.iter().filter(|f| f.rule == "unsafe-hygiene").count(), 1, "{f:?}");
    }

    #[test]
    fn println_banned_in_core_but_not_in_tests() {
        let src = "fn p() { println!(\"x\"); }\n#[cfg(test)]\nmod tests {\n    fn t() { println!(\"ok\"); }\n}\n";
        let lines = scan(src, false);
        let f = check_file("core/src/lib.rs", &lines, &cfg_with(&[], &["core/"]));
        assert_eq!(f.iter().filter(|f| f.rule == "output-hygiene").count(), 1, "{f:?}");
    }

    #[test]
    fn deprecated_facades_flagged_outside_facade_modules() {
        let mut cfg = cfg_with(&[], &["core/"]);
        cfg.facade_files = vec!["core/src/facade.rs".to_string()];
        let lines = scan("let r = run_real_campaign(&c);\n", false);
        assert_eq!(check_file("core/src/other.rs", &lines, &cfg).len(), 1);
        assert!(check_file("core/src/facade.rs", &lines, &cfg).is_empty());
    }
}
