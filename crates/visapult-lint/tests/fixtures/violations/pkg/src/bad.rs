//! Seeded-violation fixture: every vlint rule fires in this file.  Never
//! compiled — the real workspace pass skips this tree via `[lint] skip`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub fn wall_clock_read() -> Instant {
    Instant::now()
}

pub fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn emit_events(frames: HashMap<u32, u64>) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    for (id, bytes) in frames.iter() {
        out.push((*id, *bytes));
    }
    out
}

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn peek(ptr: *const u32) -> u32 {
    unsafe { *ptr }
}

pub fn shout() {
    println!("library crates must not print");
}

pub fn legacy() {
    run_real_campaign();
}
