//! Clean fixture: deterministic, ordered, quiet — zero findings expected.

use std::collections::BTreeMap;

pub fn emit_events(frames: BTreeMap<u32, u64>) -> Vec<(u32, u64)> {
    frames.iter().map(|(id, bytes)| (*id, *bytes)).collect()
}

pub fn checksum(events: &[(u32, u64)]) -> u64 {
    events.iter().fold(0u64, |acc, (id, bytes)| {
        acc.wrapping_mul(31).wrapping_add(u64::from(*id)).wrapping_add(*bytes)
    })
}
