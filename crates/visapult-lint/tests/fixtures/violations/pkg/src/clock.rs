//! Clock-seam fixture: wall-clock reads are legal here (listed under
//! `clock_impls`), so this file must produce zero findings.

use std::time::Instant;

pub fn monotonic_now() -> Instant {
    Instant::now()
}

pub fn pace_until(deadline: Instant) {
    while Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
