//! vlint end-to-end: the seeded fixture tree and the committed workspace
//! `lint.toml`.
//!
//! The last test is the real gate: it runs the same pass CI runs, over the
//! actual workspace with the actual config, and fails on any unallowlisted
//! finding *or* any stale allowlist entry — so the audit table in `lint.toml`
//! can neither lag behind new violations nor outlive the code it describes.

use std::path::{Path, PathBuf};
use visapult_lint::{render_fix_allowlist, render_report, run_lint, LintConfig, LintReport};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations")
}

fn run_with(config: &str) -> LintReport {
    let root = fixture_root();
    let text = std::fs::read_to_string(root.join(config)).unwrap();
    let cfg = LintConfig::from_toml(&text).unwrap();
    run_lint(&root, &cfg).unwrap()
}

#[test]
fn seeded_fixture_hits_every_rule() {
    let report = run_with("lint.toml");
    assert!(!report.is_clean());
    for rule in visapult_lint::RULES {
        assert!(
            report.active.iter().any(|f| f.rule == rule),
            "rule `{rule}` produced no finding:\n{}",
            render_report(&report, true)
        );
    }
    // Everything lands in bad.rs: the clock impl is exempt, clean.rs is clean.
    assert!(report.active.iter().all(|f| f.file == "pkg/src/bad.rs"));
    assert!(report.suppressed.is_empty());
    assert!(report.stale.is_empty());
}

#[test]
fn justified_allowlist_suppresses_every_finding() {
    let report = run_with("allow.toml");
    assert!(report.is_clean(), "{}", render_report(&report, true));
    assert!(report.active.is_empty());
    assert!(report.stale.is_empty());
    assert!(report.suppressed.len() >= 5, "all five rules suppressed");
}

#[test]
fn stale_allow_entries_fail_the_pass() {
    let report = run_with("stale.toml");
    assert!(!report.is_clean());
    assert!(report.active.is_empty(), "staleness alone fails the pass");
    assert_eq!(report.stale.len(), 1);
    assert!(report.stale[0].justification.contains("stale on purpose"));
    assert!(render_report(&report, false).contains("stale allow entry"));
}

#[test]
fn fix_allowlist_emits_paste_ready_entries() {
    let report = run_with("lint.toml");
    let toml = render_fix_allowlist(&report);
    assert!(toml.contains("[[allow]]"));
    assert!(toml.contains("rule = \"determinism\""));
    assert!(toml.contains("file = \"pkg/src/bad.rs\""));
    assert!(toml.contains("TODO"), "justifications start as TODOs");
    // The emitted entries must parse once the TODOs are accepted as-is.
    let cfg = LintConfig::from_toml(&toml).unwrap();
    assert_eq!(cfg.allow.len(), toml.matches("[[allow]]").count());
}

#[test]
fn committed_workspace_config_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap();
    let text = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let cfg = LintConfig::from_toml(&text).unwrap();
    let report = run_lint(root, &cfg).unwrap();
    assert!(
        report.active.is_empty() && report.stale.is_empty(),
        "workspace lint pass is dirty:\n{}",
        render_report(&report, false)
    );
    assert!(report.files_scanned > 100, "walk found the workspace");
    assert!(!report.suppressed.is_empty(), "the audit table is in use");
}
