//! Adaptive mesh refinement hierarchies.
//!
//! The combustion code the paper visualizes is an AMR simulation; Figure 3
//! shows "vector geometry (line segments) representing the adaptive grid
//! created and used by the combustion simulation" rendered together with the
//! volume.  This module derives an AMR box hierarchy from a scalar volume
//! (refining where the field varies rapidly) and converts it into the line
//! segments that travel to the viewer as the geometric part of the heavy
//! payload.

use crate::volume::Volume;
use serde::{Deserialize, Serialize};

/// One refinement box, in level-0 cell coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmrBox {
    /// Refinement level (0 = coarsest).
    pub level: usize,
    /// Box origin in level-0 cell units.
    pub origin: (f32, f32, f32),
    /// Box size in level-0 cell units.
    pub size: (f32, f32, f32),
}

impl AmrBox {
    /// The twelve edges of the box as line segments (pairs of endpoints).
    pub fn edges(&self) -> Vec<([f32; 3], [f32; 3])> {
        let (x0, y0, z0) = self.origin;
        let (sx, sy, sz) = self.size;
        let (x1, y1, z1) = (x0 + sx, y0 + sy, z0 + sz);
        let corners = [
            [x0, y0, z0],
            [x1, y0, z0],
            [x1, y1, z0],
            [x0, y1, z0],
            [x0, y0, z1],
            [x1, y0, z1],
            [x1, y1, z1],
            [x0, y1, z1],
        ];
        let pairs = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 4),
            (0, 4),
            (1, 5),
            (2, 6),
            (3, 7),
        ];
        pairs.iter().map(|&(a, b)| (corners[a], corners[b])).collect()
    }
}

/// An AMR hierarchy: boxes grouped by level.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AmrHierarchy {
    /// Boxes at each level (index = level).
    pub levels: Vec<Vec<AmrBox>>,
}

impl AmrHierarchy {
    /// Derive a hierarchy from a volume.
    ///
    /// The domain is tiled with `block` sized level-0 boxes; any box whose
    /// internal value range exceeds `refine_threshold` (relative to the
    /// volume's full range) is subdivided into eight children, recursively,
    /// up to `max_levels` levels.
    pub fn from_volume(volume: &Volume, block: usize, refine_threshold: f32, max_levels: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        assert!(max_levels > 0, "need at least one level");
        let dims = volume.dims();
        let (vmin, vmax) = volume.value_range();
        let full_span = (vmax - vmin).max(1e-20);

        // Value span of the region of the volume covered by a box.
        let span_of = |origin: (f32, f32, f32), size: (f32, f32, f32)| -> f32 {
            let x0 = origin.0.floor().max(0.0) as usize;
            let y0 = origin.1.floor().max(0.0) as usize;
            let z0 = origin.2.floor().max(0.0) as usize;
            let x1 = ((origin.0 + size.0).ceil() as usize).min(dims.0);
            let y1 = ((origin.1 + size.1).ceil() as usize).min(dims.1);
            let z1 = ((origin.2 + size.2).ceil() as usize).min(dims.2);
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for z in z0..z1 {
                for y in y0..y1 {
                    for x in x0..x1 {
                        let v = volume.get(x, y, z);
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
            }
            if lo > hi {
                0.0
            } else {
                (hi - lo) / full_span
            }
        };

        let mut levels: Vec<Vec<AmrBox>> = vec![Vec::new(); max_levels];
        let mut frontier: Vec<AmrBox> = Vec::new();
        // Level 0 tiling.
        let mut z = 0;
        while z < dims.2 {
            let mut y = 0;
            while y < dims.1 {
                let mut x = 0;
                while x < dims.0 {
                    let size = (
                        block.min(dims.0 - x) as f32,
                        block.min(dims.1 - y) as f32,
                        block.min(dims.2 - z) as f32,
                    );
                    let b = AmrBox {
                        level: 0,
                        origin: (x as f32, y as f32, z as f32),
                        size,
                    };
                    levels[0].push(b);
                    frontier.push(b);
                    x += block;
                }
                y += block;
            }
            z += block;
        }

        // Refine.
        #[allow(clippy::needless_range_loop)]
        for level in 1..max_levels {
            let mut next = Vec::new();
            for parent in &frontier {
                if span_of(parent.origin, parent.size) > refine_threshold {
                    let half = (parent.size.0 / 2.0, parent.size.1 / 2.0, parent.size.2 / 2.0);
                    for dz in 0..2 {
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let child = AmrBox {
                                    level,
                                    origin: (
                                        parent.origin.0 + dx as f32 * half.0,
                                        parent.origin.1 + dy as f32 * half.1,
                                        parent.origin.2 + dz as f32 * half.2,
                                    ),
                                    size: half,
                                };
                                levels[level].push(child);
                                next.push(child);
                            }
                        }
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        AmrHierarchy { levels }
    }

    /// Total number of boxes across all levels.
    pub fn total_boxes(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Number of refinement levels actually populated.
    pub fn populated_levels(&self) -> usize {
        self.levels.iter().filter(|l| !l.is_empty()).count()
    }

    /// All boxes as line segments in volume cell coordinates — the geometry
    /// shipped to the viewer's scene graph ("typically tens of kilobytes for
    /// the AMR grid data per timestep", Appendix A).
    pub fn to_line_segments(&self) -> Vec<([f32; 3], [f32; 3])> {
        self.levels
            .iter()
            .flat_map(|boxes| boxes.iter().flat_map(AmrBox::edges))
            .collect()
    }

    /// Serialized size of the line geometry in bytes (two 3-float endpoints
    /// per segment).
    pub fn geometry_bytes(&self) -> u64 {
        (self.to_line_segments().len() * 2 * 3 * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::combustion_jet;

    #[test]
    fn uniform_volume_never_refines() {
        let v = Volume::from_data((16, 16, 16), vec![1.0; 16 * 16 * 16]);
        let h = AmrHierarchy::from_volume(&v, 8, 0.1, 3);
        assert_eq!(h.populated_levels(), 1);
        assert_eq!(h.levels[0].len(), 8);
        assert_eq!(h.total_boxes(), 8);
    }

    #[test]
    fn jet_volume_refines_near_the_jet() {
        let v = combustion_jet((32, 32, 32), 0.5, 3);
        let h = AmrHierarchy::from_volume(&v, 16, 0.25, 3);
        assert!(
            h.populated_levels() >= 2,
            "expected refinement, got {:?}",
            h.populated_levels()
        );
        // Finer levels should be concentrated where the jet is (centre in Y/Z).
        let fine_boxes = &h.levels[1];
        assert!(!fine_boxes.is_empty());
    }

    #[test]
    fn box_edges_are_twelve() {
        let b = AmrBox {
            level: 0,
            origin: (0.0, 0.0, 0.0),
            size: (1.0, 2.0, 3.0),
        };
        let edges = b.edges();
        assert_eq!(edges.len(), 12);
        // Total edge length = 4*(1+2+3).
        let total: f32 = edges
            .iter()
            .map(|(a, b)| ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt())
            .sum();
        assert!((total - 24.0).abs() < 1e-4);
    }

    #[test]
    fn geometry_size_is_tens_of_kilobytes_for_realistic_grids() {
        // The paper says AMR geometry is "typically tens of kilobytes ... per
        // timestep"; a moderately refined hierarchy should land in that range.
        let v = combustion_jet((64, 32, 32), 0.6, 4);
        let h = AmrHierarchy::from_volume(&v, 16, 0.15, 3);
        let bytes = h.geometry_bytes();
        assert!(bytes > 5_000 && bytes < 1_000_000, "got {bytes} bytes");
    }

    #[test]
    fn line_segments_count_matches_boxes() {
        let v = combustion_jet((16, 16, 16), 0.5, 5);
        let h = AmrHierarchy::from_volume(&v, 8, 0.2, 2);
        assert_eq!(h.to_line_segments().len(), h.total_boxes() * 12);
    }
}
