//! View orientations and best-axis selection.
//!
//! §3.3: "On a per-frame basis, the Visapult viewer computes the best view
//! axis, and transmits this information to the back end.  The back end uses
//! this information in order to select from either X-, Y-, or Z-axis aligned
//! data slabs for use in volume rendering."

use serde::{Deserialize, Serialize};

/// A principal axis of the volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// The X axis.
    X,
    /// The Y axis.
    Y,
    /// The Z axis.
    Z,
}

impl Axis {
    /// All three axes.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Index into an (x, y, z) tuple.
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// Unit vector along the axis.
    pub fn unit(self) -> [f64; 3] {
        match self {
            Axis::X => [1.0, 0.0, 0.0],
            Axis::Y => [0.0, 1.0, 0.0],
            Axis::Z => [0.0, 0.0, 1.0],
        }
    }
}

/// A view orientation given as yaw (rotation about +Y) and pitch (rotation
/// about +X), in degrees.  Yaw = pitch = 0 looks down the −Z axis, the
/// canonical axis-aligned IBRAVR view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewOrientation {
    /// Rotation about the Y axis, degrees.
    pub yaw_deg: f64,
    /// Rotation about the X axis, degrees.
    pub pitch_deg: f64,
}

impl ViewOrientation {
    /// The canonical axis-aligned view (down −Z).
    pub fn axis_aligned() -> Self {
        ViewOrientation {
            yaw_deg: 0.0,
            pitch_deg: 0.0,
        }
    }

    /// A view rotated `yaw`/`pitch` degrees from the canonical one.
    pub fn new(yaw_deg: f64, pitch_deg: f64) -> Self {
        ViewOrientation { yaw_deg, pitch_deg }
    }

    /// The (unnormalized, toward-the-scene) view direction.
    pub fn view_direction(&self) -> [f64; 3] {
        let yaw = self.yaw_deg.to_radians();
        let pitch = self.pitch_deg.to_radians();
        // Start from (0,0,-1); rotate about X by pitch, then about Y by yaw.
        let (dx, dy, dz) = (0.0, 0.0, -1.0f64);
        // Pitch about X.
        let (dy, dz) = (dy * pitch.cos() - dz * pitch.sin(), dy * pitch.sin() + dz * pitch.cos());
        // Yaw about Y.
        let (dx, dz) = (dx * yaw.cos() + dz * yaw.sin(), -dx * yaw.sin() + dz * yaw.cos());
        [dx, dy, dz]
    }

    /// The axis most closely aligned with the view direction — the axis the
    /// viewer asks the back end to slab along.
    pub fn best_axis(&self) -> Axis {
        let d = self.view_direction();
        let ax = d[0].abs();
        let ay = d[1].abs();
        let az = d[2].abs();
        if az >= ax && az >= ay {
            Axis::Z
        } else if ay >= ax {
            Axis::Y
        } else {
            Axis::X
        }
    }

    /// Angle (degrees) between the view direction and the nearest principal
    /// axis: the off-axis angle that controls IBRAVR artifact severity
    /// (paper: artifact-free within a cone of about sixteen degrees).
    pub fn off_axis_angle(&self) -> f64 {
        let d = self.view_direction();
        let norm = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        let best = self.best_axis().unit();
        let dot = (d[0] * best[0] + d[1] * best[1] + d[2] * best[2]).abs() / norm;
        dot.clamp(-1.0, 1.0).acos().to_degrees()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_view_is_z_aligned() {
        let v = ViewOrientation::axis_aligned();
        assert_eq!(v.best_axis(), Axis::Z);
        assert!(v.off_axis_angle() < 1e-9);
        let d = v.view_direction();
        assert!((d[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ninety_degree_yaw_switches_to_x() {
        let v = ViewOrientation::new(90.0, 0.0);
        assert_eq!(v.best_axis(), Axis::X);
        assert!(v.off_axis_angle() < 1e-6);
    }

    #[test]
    fn ninety_degree_pitch_switches_to_y() {
        let v = ViewOrientation::new(0.0, 90.0);
        assert_eq!(v.best_axis(), Axis::Y);
        assert!(v.off_axis_angle() < 1e-6);
    }

    #[test]
    fn off_axis_angle_grows_then_wraps_at_45_degrees() {
        let a10 = ViewOrientation::new(10.0, 0.0).off_axis_angle();
        let a30 = ViewOrientation::new(30.0, 0.0).off_axis_angle();
        let a44 = ViewOrientation::new(44.0, 0.0).off_axis_angle();
        assert!((a10 - 10.0).abs() < 1e-6);
        assert!((a30 - 30.0).abs() < 1e-6);
        assert!(a30 > a10);
        // Beyond 45° the nearest axis changes, so the off-axis angle falls
        // again — this is exactly the axis-switching remedy of §3.3.
        let a60 = ViewOrientation::new(60.0, 0.0).off_axis_angle();
        assert!((a60 - 30.0).abs() < 1e-6);
        assert!(a44 > a60);
    }

    #[test]
    fn sixteen_degree_cone_stays_on_one_axis() {
        for yaw in [-16.0, -8.0, 0.0, 8.0, 16.0] {
            let v = ViewOrientation::new(yaw, 0.0);
            assert_eq!(v.best_axis(), Axis::Z);
            assert!(v.off_axis_angle() <= 16.0 + 1e-9);
        }
    }

    #[test]
    fn axis_helpers() {
        assert_eq!(Axis::X.index(), 0);
        assert_eq!(Axis::Y.index(), 1);
        assert_eq!(Axis::Z.index(), 2);
        assert_eq!(Axis::ALL.len(), 3);
        assert_eq!(Axis::Z.unit(), [0.0, 0.0, 1.0]);
    }
}
