//! RGBA images and Porter–Duff compositing.
//!
//! Object-order parallel volume rendering produces one intermediate image per
//! processor; "recombination consists of image compositing using alpha
//! blending [Porter & Duff 1984], and must occur in a prescribed order
//! (back-to-front or front-to-back)" (§3.2).  The same `over` operator is the
//! heart of the IBRAVR viewer compositor.

use serde::{Deserialize, Serialize};

/// A floating-point RGBA image (straight, non-premultiplied alpha).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RgbaImage {
    width: usize,
    height: usize,
    /// Pixels in row-major order, 4 floats per pixel.
    data: Vec<f32>,
}

impl RgbaImage {
    /// A transparent-black image.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        RgbaImage {
            width,
            height,
            data: vec![0.0; width * height * 4],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw pixel floats (RGBA interleaved).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Size of the image when shipped over the wire as 8-bit RGBA.
    pub fn byte_len(&self) -> usize {
        self.width * self.height * 4
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y * self.width + x) * 4
    }

    /// Pixel at (x, y).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [f32; 4] {
        let i = self.index(x, y);
        [self.data[i], self.data[i + 1], self.data[i + 2], self.data[i + 3]]
    }

    /// Set the pixel at (x, y).
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, rgba: [f32; 4]) {
        let i = self.index(x, y);
        self.data[i..i + 4].copy_from_slice(&rgba);
    }

    /// Composite `front` over `self` (Porter–Duff `over`, straight alpha),
    /// pixel by pixel.  Images must have identical dimensions.
    pub fn composite_over(&mut self, front: &RgbaImage) {
        assert_eq!(
            (self.width, self.height),
            (front.width, front.height),
            "compositing requires equal image sizes"
        );
        for (dst, src) in self.data.chunks_exact_mut(4).zip(front.data.chunks_exact(4)) {
            let fa = src[3];
            let ba = dst[3];
            let out_a = fa + ba * (1.0 - fa);
            if out_a > 1e-9 {
                for c in 0..3 {
                    dst[c] = (src[c] * fa + dst[c] * ba * (1.0 - fa)) / out_a;
                }
            } else {
                dst[0] = 0.0;
                dst[1] = 0.0;
                dst[2] = 0.0;
            }
            dst[3] = out_a;
        }
    }

    /// Composite a back-to-front ordered sequence of images into one.
    pub fn composite_back_to_front<'a>(images: impl IntoIterator<Item = &'a RgbaImage>) -> Option<RgbaImage> {
        let mut iter = images.into_iter();
        let first = iter.next()?;
        let mut out = first.clone();
        for img in iter {
            out.composite_over(img);
        }
        Some(out)
    }

    /// Convert to 8-bit RGBA bytes (the heavy-payload wire format).
    pub fn to_rgba8(&self) -> Vec<u8> {
        self.data
            .iter()
            .map(|v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
            .collect()
    }

    /// Reconstruct from 8-bit RGBA bytes.
    pub fn from_rgba8(width: usize, height: usize, bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), width * height * 4, "byte length must match dimensions");
        RgbaImage {
            width,
            height,
            data: bytes.iter().map(|b| *b as f32 / 255.0).collect(),
        }
    }

    /// Mean absolute per-channel difference with another image, the error
    /// metric used for the IBRAVR artifact experiment (E8).
    pub fn mean_abs_diff(&self, other: &RgbaImage) -> f32 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "difference requires equal image sizes"
        );
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: f32 = self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).sum();
        sum / self.data.len() as f32
    }

    /// Root-mean-square difference with another image.
    pub fn rms_diff(&self, other: &RgbaImage) -> f32 {
        assert_eq!((self.width, self.height), (other.width, other.height));
        let sum: f32 = self.data.iter().zip(&other.data).map(|(a, b)| (a - b) * (a - b)).sum();
        (sum / self.data.len() as f32).sqrt()
    }

    /// Fraction of pixels with non-zero opacity (a cheap "is anything there"
    /// check used by tests).
    pub fn coverage(&self) -> f32 {
        let covered = self.data.chunks_exact(4).filter(|p| p[3] > 1e-4).count();
        covered as f32 / (self.width * self.height) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solid(width: usize, height: usize, rgba: [f32; 4]) -> RgbaImage {
        let mut img = RgbaImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, rgba);
            }
        }
        img
    }

    #[test]
    fn opaque_front_replaces_back() {
        let mut back = solid(4, 4, [0.0, 0.0, 1.0, 1.0]);
        let front = solid(4, 4, [1.0, 0.0, 0.0, 1.0]);
        back.composite_over(&front);
        assert_eq!(back.get(2, 2), [1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn transparent_front_leaves_back() {
        let mut back = solid(4, 4, [0.0, 1.0, 0.0, 0.8]);
        let front = solid(4, 4, [1.0, 0.0, 0.0, 0.0]);
        back.composite_over(&front);
        let px = back.get(1, 1);
        assert!((px[1] - 1.0).abs() < 1e-6);
        assert!((px[3] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn half_alpha_blends() {
        let mut back = solid(2, 2, [0.0, 0.0, 0.0, 1.0]);
        let front = solid(2, 2, [1.0, 1.0, 1.0, 0.5]);
        back.composite_over(&front);
        let px = back.get(0, 0);
        assert!((px[0] - 0.5).abs() < 1e-6);
        assert!((px[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn over_is_associative_for_back_to_front_sequences() {
        let a = solid(2, 2, [1.0, 0.0, 0.0, 0.3]);
        let b = solid(2, 2, [0.0, 1.0, 0.0, 0.5]);
        let c = solid(2, 2, [0.0, 0.0, 1.0, 0.7]);
        // ((a over-ed by b) over-ed by c) vs compositing helper.
        let mut manual = a.clone();
        manual.composite_over(&b);
        manual.composite_over(&c);
        let helper = RgbaImage::composite_back_to_front([&a, &b, &c]).unwrap();
        assert!(manual.rms_diff(&helper) < 1e-6);
    }

    #[test]
    fn compositing_order_matters() {
        let red = solid(2, 2, [1.0, 0.0, 0.0, 0.6]);
        let blue = solid(2, 2, [0.0, 0.0, 1.0, 0.6]);
        let red_then_blue = RgbaImage::composite_back_to_front([&red, &blue]).unwrap();
        let blue_then_red = RgbaImage::composite_back_to_front([&blue, &red]).unwrap();
        assert!(red_then_blue.rms_diff(&blue_then_red) > 0.1);
    }

    #[test]
    fn rgba8_roundtrip_is_close() {
        let img = solid(3, 3, [0.25, 0.5, 0.75, 1.0]);
        let bytes = img.to_rgba8();
        assert_eq!(bytes.len(), img.byte_len());
        let back = RgbaImage::from_rgba8(3, 3, &bytes);
        assert!(img.mean_abs_diff(&back) < 1.0 / 255.0);
    }

    #[test]
    fn difference_metrics() {
        let a = solid(4, 4, [0.5, 0.5, 0.5, 1.0]);
        let b = solid(4, 4, [0.5, 0.5, 0.5, 1.0]);
        assert_eq!(a.mean_abs_diff(&b), 0.0);
        assert_eq!(a.rms_diff(&b), 0.0);
        let c = solid(4, 4, [1.0, 0.5, 0.5, 1.0]);
        assert!(a.mean_abs_diff(&c) > 0.0);
        assert!(a.coverage() > 0.99);
        assert_eq!(RgbaImage::new(4, 4).coverage(), 0.0);
    }

    #[test]
    fn empty_sequence_composites_to_none() {
        assert!(RgbaImage::composite_back_to_front(std::iter::empty()).is_none());
    }

    #[test]
    #[should_panic]
    fn mismatched_sizes_panic() {
        let mut a = RgbaImage::new(2, 2);
        let b = RgbaImage::new(3, 3);
        a.composite_over(&b);
    }
}
