//! Deterministic synthetic scientific datasets.
//!
//! The paper's data came from NERSC production runs: "a reactive chemistry
//! combustion simulation" on a 640×256×256 grid and "a cosmology hydrodynamic
//! simulation".  Neither dataset is available, so these generators produce
//! volumes with the same qualitative structure — a turbulent jet/flame for
//! combustion, clustered halos for cosmology — deterministically from a seed,
//! at any resolution and timestep, so the full pipeline (DPSS staging,
//! slab-decomposed loads, rendering, IBRAVR display) is exercised on data of
//! the right shape and size.

use crate::volume::Volume;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate one timestep of a synthetic combustion (reacting jet) dataset.
///
/// * `dims` — grid size (x, y, z); the jet flows along +X.
/// * `time` — normalized simulation time in `[0, 1]`; the flame front
///   advances along X and the turbulence phase evolves with it.
/// * `seed` — deterministic seed for the turbulence modes.
pub fn combustion_jet(dims: (usize, usize, usize), time: f32, seed: u64) -> Volume {
    let (nx, ny, nz) = dims;
    let mut rng = StdRng::seed_from_u64(seed);
    // A handful of sinusoidal "turbulence" modes with random wave numbers and
    // phases; smooth, deterministic, and cheap.
    let modes: Vec<(f32, f32, f32, f32, f32)> = (0..6)
        .map(|_| {
            (
                rng.gen_range(1.0..5.0),                   // k_x
                rng.gen_range(1.0..6.0),                   // k_r
                rng.gen_range(0.0..std::f32::consts::TAU), // phase
                rng.gen_range(0.04..0.14),                 // amplitude
                rng.gen_range(0.5..3.0),                   // time frequency
            )
        })
        .collect();

    let t = time.clamp(0.0, 1.0);
    let front = 0.2 + 0.75 * t; // flame front position along x (normalized)
    let mut v = Volume::zeros(dims);
    for z in 0..nz {
        let zf = (z as f32 + 0.5) / nz as f32 - 0.5;
        for y in 0..ny {
            let yf = (y as f32 + 0.5) / ny as f32 - 0.5;
            let r2 = yf * yf + zf * zf;
            for x in 0..nx {
                let xf = (x as f32 + 0.5) / nx as f32;
                // Jet core: Gaussian in radius, widening downstream.
                let width = 0.05 + 0.18 * xf;
                let core = (-r2 / (2.0 * width * width)).exp();
                // Flame front: a sigmoid along x that has advanced to `front`.
                let frontal = 1.0 / (1.0 + ((xf - front) * 18.0).exp());
                // Turbulent modulation.
                let mut turb = 0.0;
                for (kx, kr, phase, amp, freq) in &modes {
                    turb += amp
                        * (kx * xf * std::f32::consts::TAU
                            + kr * (r2.sqrt()) * std::f32::consts::TAU
                            + phase
                            + freq * t * std::f32::consts::TAU)
                            .sin();
                }
                let value = (core * frontal * (1.0 + turb)).max(0.0);
                v.set(x, y, z, value);
            }
        }
    }
    v
}

/// Generate a synthetic cosmology density field: a collection of clustered
/// halos with power-law profiles on a low background.
pub fn cosmology_density(dims: (usize, usize, usize), seed: u64) -> Volume {
    let (nx, ny, nz) = dims;
    let mut rng = StdRng::seed_from_u64(seed);
    let halo_count = 24;
    let halos: Vec<([f32; 3], f32, f32)> = (0..halo_count)
        .map(|_| {
            (
                [
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                ],
                rng.gen_range(0.02f32..0.08), // core radius
                rng.gen_range(0.3f32..1.0),   // mass scale
            )
        })
        .collect();

    let mut v = Volume::zeros(dims);
    for z in 0..nz {
        let zf = (z as f32 + 0.5) / nz as f32;
        for y in 0..ny {
            let yf = (y as f32 + 0.5) / ny as f32;
            for x in 0..nx {
                let xf = (x as f32 + 0.5) / nx as f32;
                let mut density = 0.002; // background
                for (pos, rc, mass) in &halos {
                    let dx = xf - pos[0];
                    let dy = yf - pos[1];
                    let dz = zf - pos[2];
                    let r = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-3);
                    // NFW-like profile truncated at small radius.
                    density += mass * rc / (r * (1.0 + r / rc).powi(2)) * 0.05;
                }
                v.set(x, y, z, density);
            }
        }
    }
    v
}

/// Generate the byte stream for a whole time series of the combustion
/// dataset (the content staged onto the DPSS by examples and tests).
pub fn combustion_series_bytes(dims: (usize, usize, usize), timesteps: usize, seed: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(dims.0 * dims.1 * dims.2 * 4 * timesteps);
    for t in 0..timesteps {
        let time = if timesteps <= 1 {
            0.0
        } else {
            t as f32 / (timesteps - 1) as f32
        };
        out.extend(combustion_jet(dims, time, seed).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combustion_is_deterministic_per_seed() {
        let a = combustion_jet((16, 12, 12), 0.3, 42);
        let b = combustion_jet((16, 12, 12), 0.3, 42);
        let c = combustion_jet((16, 12, 12), 0.3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn jet_is_concentrated_on_the_axis() {
        let v = combustion_jet((32, 16, 16), 0.5, 1);
        // Centre of the Y/Z cross-section has more mass than the corner.
        let axis_mean: f32 = (0..32).map(|x| v.get(x, 8, 8)).sum::<f32>() / 32.0;
        let corner_mean: f32 = (0..32).map(|x| v.get(x, 0, 0)).sum::<f32>() / 32.0;
        assert!(
            axis_mean > corner_mean * 3.0,
            "axis {axis_mean} vs corner {corner_mean}"
        );
    }

    #[test]
    fn flame_front_advances_with_time() {
        let early = combustion_jet((64, 12, 12), 0.1, 5);
        let late = combustion_jet((64, 12, 12), 0.9, 5);
        // At a station downstream (x = 48), the late timestep has burned
        // through (higher values) compared to the early one.
        let early_downstream: f32 = (0..12)
            .flat_map(|y| (0..12).map(move |z| (y, z)))
            .map(|(y, z)| early.get(48, y, z))
            .sum();
        let late_downstream: f32 = (0..12)
            .flat_map(|y| (0..12).map(move |z| (y, z)))
            .map(|(y, z)| late.get(48, y, z))
            .sum();
        assert!(
            late_downstream > early_downstream,
            "late {late_downstream} vs early {early_downstream}"
        );
    }

    #[test]
    fn values_are_finite_and_nonnegative() {
        let v = combustion_jet((20, 20, 20), 0.7, 9);
        assert!(v.data().iter().all(|x| x.is_finite() && *x >= 0.0));
        let c = cosmology_density((20, 20, 20), 9);
        assert!(c.data().iter().all(|x| x.is_finite() && *x > 0.0));
    }

    #[test]
    fn cosmology_is_clustered() {
        let v = cosmology_density((24, 24, 24), 11);
        let (min, max) = v.value_range();
        // Halos produce a large dynamic range over the background.
        assert!(max / min > 20.0, "range {min}..{max}");
    }

    #[test]
    fn series_bytes_have_the_right_size_and_vary_over_time() {
        let dims = (16, 8, 8);
        let bytes = combustion_series_bytes(dims, 3, 2);
        assert_eq!(bytes.len(), 16 * 8 * 8 * 4 * 3);
        let step = 16 * 8 * 8 * 4;
        assert_ne!(&bytes[..step], &bytes[step..2 * step], "timesteps should differ");
    }
}
