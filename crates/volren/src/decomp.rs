//! Domain decomposition: slab, shaft and block partitioning (paper Figure 4).
//!
//! Object-order parallel volume rendering distributes the volume across the
//! processor pool with one of these strategies; Visapult uses the slab
//! decomposition because IBRAVR needs one axis-aligned slab image per PE, but
//! the other two are implemented for the decomposition ablation benchmark.

use crate::camera::Axis;
use serde::{Deserialize, Serialize};

/// A rectangular region of a volume assigned to one processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Origin of the region (x, y, z).
    pub origin: (usize, usize, usize),
    /// Size of the region (x, y, z).
    pub dims: (usize, usize, usize),
}

impl Region {
    /// Number of grid cells in the region.
    pub fn cells(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Bytes of `f32` data in the region.
    pub fn bytes(&self) -> u64 {
        self.cells() as u64 * 4
    }

    /// True if the region contains the given cell.
    pub fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        x >= self.origin.0
            && x < self.origin.0 + self.dims.0
            && y >= self.origin.1
            && y < self.origin.1 + self.dims.1
            && z >= self.origin.2
            && z < self.origin.2 + self.dims.2
    }

    /// The exclusive end corner.
    pub fn end(&self) -> (usize, usize, usize) {
        (
            self.origin.0 + self.dims.0,
            self.origin.1 + self.dims.1,
            self.origin.2 + self.dims.2,
        )
    }
}

/// Which decomposition of Figure 4 to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decomposition {
    /// 1-D partitioning into slabs perpendicular to `axis` (Visapult's choice).
    Slab(Axis),
    /// 2-D partitioning into shafts running along `axis`.
    Shaft(Axis),
    /// 3-D partitioning into roughly cubic blocks.
    Block,
}

fn split_extent(extent: usize, parts: usize) -> Vec<(usize, usize)> {
    // Distribute `extent` cells over `parts` contiguous pieces as evenly as
    // possible (the first `extent % parts` pieces get one extra cell).
    let base = extent / parts;
    let extra = extent % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push((start, len));
        start += len;
    }
    out
}

/// Near-square factorization of `n` into two factors (rows, cols).
fn factor2(n: usize) -> (usize, usize) {
    let mut best = (1, n);
    let mut i = 1;
    while i * i <= n {
        if n.is_multiple_of(i) {
            best = (i, n / i);
        }
        i += 1;
    }
    best
}

/// Near-cubic factorization of `n` into three factors.
fn factor3(n: usize) -> (usize, usize, usize) {
    let mut best = (1, 1, n);
    let mut best_score = usize::MAX;
    let mut a = 1;
    while a * a * a <= n {
        if n.is_multiple_of(a) {
            let (b, c) = factor2(n / a);
            let dims = [a, b, c];
            let score = dims.iter().max().unwrap() - dims.iter().min().unwrap();
            if score < best_score {
                best_score = score;
                best = (a, b, c);
            }
        }
        a += 1;
    }
    best
}

/// Partition a volume of `dims` cells into `parts` regions.
///
/// Every cell belongs to exactly one region, regions are returned in PE rank
/// order, and (for slabs) consecutive ranks hold consecutive slabs along the
/// decomposition axis — the depth order the viewer composites in.
pub fn decompose(dims: (usize, usize, usize), parts: usize, strategy: Decomposition) -> Vec<Region> {
    assert!(parts > 0, "cannot decompose into zero parts");
    let (nx, ny, nz) = dims;
    match strategy {
        Decomposition::Slab(axis) => {
            let extent = [nx, ny, nz][axis.index()];
            assert!(
                parts <= extent,
                "cannot cut {extent} planes into {parts} slabs along {axis:?}"
            );
            split_extent(extent, parts)
                .into_iter()
                .map(|(start, len)| {
                    let mut origin = (0, 0, 0);
                    let mut rdims = dims;
                    match axis {
                        Axis::X => {
                            origin.0 = start;
                            rdims.0 = len;
                        }
                        Axis::Y => {
                            origin.1 = start;
                            rdims.1 = len;
                        }
                        Axis::Z => {
                            origin.2 = start;
                            rdims.2 = len;
                        }
                    }
                    Region { origin, dims: rdims }
                })
                .collect()
        }
        Decomposition::Shaft(axis) => {
            // Partition the two axes perpendicular to `axis`.
            let (rows, cols) = factor2(parts);
            let (u_extent, v_extent) = match axis {
                Axis::X => (ny, nz),
                Axis::Y => (nx, nz),
                Axis::Z => (nx, ny),
            };
            assert!(rows <= u_extent && cols <= v_extent, "too many shafts for the grid");
            let u_splits = split_extent(u_extent, rows);
            let v_splits = split_extent(v_extent, cols);
            let mut out = Vec::with_capacity(parts);
            for (u0, ul) in &u_splits {
                for (v0, vl) in &v_splits {
                    let (origin, rdims) = match axis {
                        Axis::X => ((0, *u0, *v0), (nx, *ul, *vl)),
                        Axis::Y => ((*u0, 0, *v0), (*ul, ny, *vl)),
                        Axis::Z => ((*u0, *v0, 0), (*ul, *vl, nz)),
                    };
                    out.push(Region { origin, dims: rdims });
                }
            }
            out
        }
        Decomposition::Block => {
            let (px, py, pz) = factor3(parts);
            assert!(px <= nx && py <= ny && pz <= nz, "too many blocks for the grid");
            let xs = split_extent(nx, px);
            let ys = split_extent(ny, py);
            let zs = split_extent(nz, pz);
            let mut out = Vec::with_capacity(parts);
            for (z0, zl) in &zs {
                for (y0, yl) in &ys {
                    for (x0, xl) in &xs {
                        out.push(Region {
                            origin: (*x0, *y0, *z0),
                            dims: (*xl, *yl, *zl),
                        });
                    }
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partitions(dims: (usize, usize, usize), regions: &[Region]) {
        // Every cell covered exactly once.
        let total: usize = regions.iter().map(Region::cells).sum();
        assert_eq!(total, dims.0 * dims.1 * dims.2);
        // Spot-check membership of a sample of cells.
        for (x, y, z) in [
            (0, 0, 0),
            (dims.0 - 1, dims.1 - 1, dims.2 - 1),
            (dims.0 / 2, dims.1 / 3, dims.2 / 2),
        ] {
            let owners = regions.iter().filter(|r| r.contains(x, y, z)).count();
            assert_eq!(owners, 1, "cell ({x},{y},{z}) owned by {owners} regions");
        }
    }

    #[test]
    fn z_slabs_partition_and_are_ordered() {
        let dims = (640, 256, 256);
        let regions = decompose(dims, 8, Decomposition::Slab(Axis::Z));
        assert_eq!(regions.len(), 8);
        assert_partitions(dims, &regions);
        for (i, r) in regions.iter().enumerate() {
            assert_eq!(r.dims.2, 32);
            assert_eq!(r.origin.2, i * 32);
            assert_eq!(r.dims.0, 640);
        }
    }

    #[test]
    fn uneven_slab_counts_cover_everything() {
        let dims = (10, 10, 50);
        let regions = decompose(dims, 7, Decomposition::Slab(Axis::Z));
        assert_partitions(dims, &regions);
        let sizes: Vec<usize> = regions.iter().map(|r| r.dims.2).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 50);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn slab_axis_selection_matters() {
        let dims = (64, 32, 16);
        for axis in Axis::ALL {
            let regions = decompose(dims, 4, Decomposition::Slab(axis));
            assert_partitions(dims, &regions);
            // The decomposed axis shrinks, the others stay full-size.
            for r in &regions {
                match axis {
                    Axis::X => assert_eq!((r.dims.1, r.dims.2), (32, 16)),
                    Axis::Y => assert_eq!((r.dims.0, r.dims.2), (64, 16)),
                    Axis::Z => assert_eq!((r.dims.0, r.dims.1), (64, 32)),
                }
            }
        }
    }

    #[test]
    fn shaft_decomposition_partitions() {
        let dims = (64, 64, 64);
        let regions = decompose(dims, 6, Decomposition::Shaft(Axis::Z));
        assert_eq!(regions.len(), 6);
        assert_partitions(dims, &regions);
        // Shafts run the full length of the shaft axis.
        assert!(regions.iter().all(|r| r.dims.2 == 64));
    }

    #[test]
    fn block_decomposition_partitions() {
        let dims = (64, 64, 64);
        let regions = decompose(dims, 8, Decomposition::Block);
        assert_eq!(regions.len(), 8);
        assert_partitions(dims, &regions);
        // 8 = 2x2x2, so each block is 32^3.
        assert!(regions.iter().all(|r| r.dims == (32, 32, 32)));
    }

    #[test]
    fn block_decomposition_with_awkward_count() {
        let dims = (60, 40, 20);
        let regions = decompose(dims, 12, Decomposition::Block);
        assert_eq!(regions.len(), 12);
        assert_partitions(dims, &regions);
    }

    #[test]
    fn region_helpers() {
        let r = Region {
            origin: (2, 4, 6),
            dims: (10, 10, 10),
        };
        assert_eq!(r.cells(), 1000);
        assert_eq!(r.bytes(), 4000);
        assert_eq!(r.end(), (12, 14, 16));
        assert!(r.contains(2, 4, 6));
        assert!(!r.contains(12, 4, 6));
    }

    #[test]
    #[should_panic]
    fn too_many_slabs_panics() {
        decompose((8, 8, 4), 8, Decomposition::Slab(Axis::Z));
    }

    #[test]
    #[should_panic]
    fn zero_parts_panics() {
        decompose((8, 8, 8), 0, Decomposition::Block);
    }
}
