//! # volren — parallel software volume rendering
//!
//! The Visapult back end is "a parallelized software volume rendering engine
//! that uses a domain-decomposed partitioning" (§3).  This crate supplies
//! that engine and everything it consumes:
//!
//! * [`volume`] — dense scalar volumes with X-fastest layout, byte
//!   (de)serialization matching what is cached on the DPSS, and sub-volume
//!   extraction.
//! * [`decomp`] — the slab / shaft / block domain decompositions of Figure 4,
//!   used to partition a volume across back-end processing elements.
//! * [`transfer`] — transfer functions mapping scalar values to colour and
//!   opacity.
//! * [`composite`] — RGBA images and Porter–Duff `over` compositing
//!   (reference \[11\] of the paper), the recombination step of object-order
//!   parallel volume rendering.
//! * [`render`] — the axis-aligned orthographic ray-casting renderer each PE
//!   runs over its subset of the data, plus the full-volume reference
//!   renderer used as ground truth for IBRAVR artifact measurements.
//! * [`data`] — deterministic synthetic combustion and cosmology datasets
//!   standing in for the paper's NERSC-generated data.
//! * [`amr`] — adaptive mesh refinement hierarchies and their line geometry
//!   (the grids rendered alongside the volume in Figure 3).
//! * [`camera`] — view orientations and the best-axis selection the viewer
//!   transmits to the back end (§3.3).

#![forbid(unsafe_code)]

pub mod amr;
pub mod camera;
pub mod composite;
pub mod data;
pub mod decomp;
pub mod render;
pub mod transfer;
pub mod volume;

pub use amr::{AmrBox, AmrHierarchy};
pub use camera::{Axis, ViewOrientation};
pub use composite::RgbaImage;
pub use data::{combustion_jet, combustion_series_bytes, cosmology_density};
pub use decomp::{decompose, Decomposition, Region};
pub use render::{render_cost_samples, render_region, render_view, render_volume_full, RenderSettings};
pub use transfer::TransferFunction;
pub use volume::Volume;
