//! Software volume rendering.
//!
//! Two renderers are provided:
//!
//! * [`render_region`] — the axis-aligned orthographic ray caster each back
//!   end PE runs over its slab of data.  Rays travel along a principal axis,
//!   so sampling needs no interpolation and the result is exactly the 2-D
//!   texture the IBRAVR viewer expects for that slab.
//! * [`render_view`] — a general orthographic ray caster with trilinear
//!   sampling for arbitrary view orientations.  It is far slower and is used
//!   only as the ground truth against which IBRAVR artifacts are measured
//!   (experiment E8) and as the "render remote" baseline renderer.
//!
//! Both composite front-to-back with the Porter–Duff `over` operator and
//! opacity-correct samples for step size.

use crate::camera::{Axis, ViewOrientation};
use crate::composite::RgbaImage;
use crate::transfer::TransferFunction;
use crate::volume::Volume;
use serde::{Deserialize, Serialize};

/// Settings shared by the renderers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RenderSettings {
    /// Output image width in pixels.
    pub image_width: usize,
    /// Output image height in pixels.
    pub image_height: usize,
    /// Ray-march step in voxel units (1.0 = one sample per voxel).
    pub step: f32,
    /// Early-ray-termination opacity threshold.
    pub early_termination: f32,
}

impl Default for RenderSettings {
    fn default() -> Self {
        RenderSettings {
            image_width: 256,
            image_height: 256,
            step: 1.0,
            early_termination: 0.98,
        }
    }
}

impl RenderSettings {
    /// Settings with a given image size.
    pub fn with_size(width: usize, height: usize) -> Self {
        RenderSettings {
            image_width: width.max(1),
            image_height: height.max(1),
            ..Default::default()
        }
    }
}

#[inline]
fn blend_front_to_back(acc: &mut [f32; 4], sample: [f32; 4]) {
    let trans = 1.0 - acc[3];
    let a = sample[3] * trans;
    acc[0] += sample[0] * a;
    acc[1] += sample[1] * a;
    acc[2] += sample[2] * a;
    acc[3] += a;
}

fn finalize(acc: [f32; 4]) -> [f32; 4] {
    // Accumulated colour is premultiplied; convert back to straight alpha.
    if acc[3] > 1e-6 {
        [acc[0] / acc[3], acc[1] / acc[3], acc[2] / acc[3], acc[3].min(1.0)]
    } else {
        [0.0, 0.0, 0.0, 0.0]
    }
}

/// Render a (sub)volume along a principal axis.
///
/// The image plane is spanned by the two axes perpendicular to `axis`, with
/// the first of them (in X→Y→Z order) along the image X direction.  Samples
/// are taken at voxel centres along the ray, front (low index) to back (high
/// index), normalized against `value_range` so that slabs rendered separately
/// by different PEs use a consistent classification.
pub fn render_region(
    volume: &Volume,
    axis: Axis,
    transfer: &TransferFunction,
    value_range: (f32, f32),
    settings: &RenderSettings,
) -> RgbaImage {
    let dims = volume.dims();
    let (ray_len, img_u, img_v): (usize, usize, usize) = match axis {
        Axis::X => (dims.0, dims.1, dims.2),
        Axis::Y => (dims.1, dims.0, dims.2),
        Axis::Z => (dims.2, dims.0, dims.1),
    };
    let mut image = RgbaImage::new(settings.image_width, settings.image_height);
    let span = (value_range.1 - value_range.0).max(1e-20);
    // Spacing ratio for opacity correction: a transfer function calibrated
    // for unit steps through the full volume.
    let spacing = settings.step.max(0.05);

    for py in 0..settings.image_height {
        // Map pixel to volume coordinate in the v (image Y) direction.
        let v = ((py as f32 + 0.5) / settings.image_height as f32 * img_v as f32) as usize;
        let v = v.min(img_v - 1);
        for px in 0..settings.image_width {
            let u = ((px as f32 + 0.5) / settings.image_width as f32 * img_u as f32) as usize;
            let u = u.min(img_u - 1);
            let mut acc = [0.0f32; 4];
            let mut t = 0.0f32;
            while (t as usize) < ray_len {
                let s = t as usize;
                let raw = match axis {
                    Axis::X => volume.get(s, u, v),
                    Axis::Y => volume.get(u, s, v),
                    Axis::Z => volume.get(u, v, s),
                };
                let norm = (raw - value_range.0) / span;
                let sample = transfer.evaluate_corrected(norm, spacing);
                blend_front_to_back(&mut acc, sample);
                if acc[3] >= settings.early_termination {
                    break;
                }
                t += spacing;
            }
            image.set(px, py, finalize(acc));
        }
    }
    image
}

/// Trilinear sample of the volume at a (possibly fractional) position given
/// in voxel coordinates.  Positions outside the volume return `None`.
fn sample_trilinear(volume: &Volume, pos: [f32; 3]) -> Option<f32> {
    let dims = volume.dims();
    let (nx, ny, nz) = (dims.0 as f32, dims.1 as f32, dims.2 as f32);
    if pos[0] < 0.0 || pos[1] < 0.0 || pos[2] < 0.0 || pos[0] > nx - 1.0 || pos[1] > ny - 1.0 || pos[2] > nz - 1.0 {
        return None;
    }
    let x0 = pos[0].floor() as usize;
    let y0 = pos[1].floor() as usize;
    let z0 = pos[2].floor() as usize;
    let x1 = (x0 + 1).min(dims.0 - 1);
    let y1 = (y0 + 1).min(dims.1 - 1);
    let z1 = (z0 + 1).min(dims.2 - 1);
    let fx = pos[0] - x0 as f32;
    let fy = pos[1] - y0 as f32;
    let fz = pos[2] - z0 as f32;
    let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
    let c00 = lerp(volume.get(x0, y0, z0), volume.get(x1, y0, z0), fx);
    let c10 = lerp(volume.get(x0, y1, z0), volume.get(x1, y1, z0), fx);
    let c01 = lerp(volume.get(x0, y0, z1), volume.get(x1, y0, z1), fx);
    let c11 = lerp(volume.get(x0, y1, z1), volume.get(x1, y1, z1), fx);
    let c0 = lerp(c00, c10, fy);
    let c1 = lerp(c01, c11, fy);
    Some(lerp(c0, c1, fz))
}

/// Render the full volume from an arbitrary orthographic view orientation.
///
/// Used as ground truth for IBRAVR artifact measurement and as the "render
/// remote" baseline.  Much more expensive than [`render_region`].
pub fn render_view(
    volume: &Volume,
    view: &ViewOrientation,
    transfer: &TransferFunction,
    settings: &RenderSettings,
) -> RgbaImage {
    let dims = volume.dims();
    let center = [
        (dims.0 as f32 - 1.0) / 2.0,
        (dims.1 as f32 - 1.0) / 2.0,
        (dims.2 as f32 - 1.0) / 2.0,
    ];
    let extent = (dims.0.max(dims.1).max(dims.2)) as f32;
    let dir64 = view.view_direction();
    let dir = [dir64[0] as f32, dir64[1] as f32, dir64[2] as f32];
    // Build an orthonormal basis (right, up, dir).
    let up_hint = if dir[1].abs() > 0.9 {
        [1.0, 0.0, 0.0]
    } else {
        [0.0, 1.0, 0.0]
    };
    let right = normalize(cross(up_hint, dir));
    let up = normalize(cross(dir, right));

    let (vmin, vmax) = volume.value_range();
    let span = (vmax - vmin).max(1e-20);
    let spacing = settings.step.max(0.05);
    let half = extent * 0.75;
    let ray_start_dist = extent;
    let ray_length = extent * 2.0;

    let mut image = RgbaImage::new(settings.image_width, settings.image_height);
    for py in 0..settings.image_height {
        let sy = (py as f32 + 0.5) / settings.image_height as f32 * 2.0 - 1.0;
        for px in 0..settings.image_width {
            let sx = (px as f32 + 0.5) / settings.image_width as f32 * 2.0 - 1.0;
            // Ray origin on a plane in front of the volume, moving along dir.
            let origin = [
                center[0] + right[0] * sx * half + up[0] * sy * half - dir[0] * ray_start_dist,
                center[1] + right[1] * sx * half + up[1] * sy * half - dir[1] * ray_start_dist,
                center[2] + right[2] * sx * half + up[2] * sy * half - dir[2] * ray_start_dist,
            ];
            let mut acc = [0.0f32; 4];
            let mut t = 0.0f32;
            while t < ray_length {
                let pos = [origin[0] + dir[0] * t, origin[1] + dir[1] * t, origin[2] + dir[2] * t];
                if let Some(raw) = sample_trilinear(volume, pos) {
                    let norm = (raw - vmin) / span;
                    let sample = transfer.evaluate_corrected(norm, spacing);
                    blend_front_to_back(&mut acc, sample);
                    if acc[3] >= settings.early_termination {
                        break;
                    }
                }
                t += spacing;
            }
            image.set(px, py, finalize(acc));
        }
    }
    image
}

/// Render the full volume along a principal axis: a convenience wrapper used
/// as the exact reference for compositing per-slab images (the sum of the
/// parts must equal the whole).
pub fn render_volume_full(
    volume: &Volume,
    axis: Axis,
    transfer: &TransferFunction,
    settings: &RenderSettings,
) -> RgbaImage {
    render_region(volume, axis, transfer, volume.value_range(), settings)
}

fn cross(a: [f32; 3], b: [f32; 3]) -> [f32; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn normalize(v: [f32; 3]) -> [f32; 3] {
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt().max(1e-12);
    [v[0] / n, v[1] / n, v[2] / n]
}

/// Estimate of the cost of rendering a region in voxel-samples, used by the
/// virtual-time platform models to convert region sizes into render seconds.
pub fn render_cost_samples(region_cells: usize, settings: &RenderSettings) -> u64 {
    // One ray per pixel marching through the region's depth; approximating
    // depth by cells^(1/3) of the region would under-count slabs, so charge
    // cells / step directly (each cell visited about once per unit step).
    (region_cells as f64 / settings.step.max(0.05) as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::combustion_jet;

    fn test_volume() -> Volume {
        combustion_jet((32, 24, 24), 0.5, 7)
    }

    #[test]
    fn empty_volume_renders_transparent() {
        let v = Volume::zeros((8, 8, 8));
        let img = render_region(
            &v,
            Axis::Z,
            &TransferFunction::Grayscale { opacity: 1.0 },
            (0.0, 1.0),
            &RenderSettings::with_size(16, 16),
        );
        assert_eq!(img.coverage(), 0.0);
    }

    #[test]
    fn nonempty_volume_renders_something() {
        let v = test_volume();
        let img = render_region(
            &v,
            Axis::Z,
            &TransferFunction::combustion_default(),
            v.value_range(),
            &RenderSettings::with_size(64, 64),
        );
        assert!(img.coverage() > 0.05, "coverage {}", img.coverage());
    }

    #[test]
    fn slab_compositing_matches_full_render() {
        // Render the whole volume along Z, and render 4 Z-slabs separately
        // then composite them back-to-front; the results must match closely.
        // This is the core correctness property of object-order rendering.
        let v = test_volume();
        let tf = TransferFunction::combustion_default();
        let settings = RenderSettings::with_size(48, 48);
        let full = render_volume_full(&v, Axis::Z, &tf, &settings);

        let range = v.value_range();
        let slabs = 4;
        let nz = v.dims().2 / slabs;
        // Back-to-front: the farthest slab (highest Z) first.
        let mut images = Vec::new();
        for s in (0..slabs).rev() {
            let slab = v.z_slab(s * nz, nz);
            images.push(render_region(&slab, Axis::Z, &tf, range, &settings));
        }
        let composited = RgbaImage::composite_back_to_front(images.iter()).unwrap();
        let err = full.mean_abs_diff(&composited);
        assert!(err < 0.02, "slab compositing diverged from full render: {err}");
    }

    #[test]
    fn axis_aligned_view_matches_axis_renderer() {
        // The general ray caster looking straight down -Z should roughly agree
        // with the fast axis-aligned path (up to sampling differences).
        let v = test_volume();
        let tf = TransferFunction::combustion_default();
        let settings = RenderSettings::with_size(32, 32);
        let fast = render_volume_full(&v, Axis::Z, &tf, &settings);
        let general = render_view(&v, &ViewOrientation::axis_aligned(), &tf, &settings);
        // Coverage should be in the same ballpark; exact pixel agreement is
        // not expected because the general caster letterboxes the volume.
        assert!(general.coverage() > 0.0);
        assert!(fast.coverage() > 0.0);
    }

    #[test]
    fn early_termination_reduces_no_correctness_for_opaque_scenes() {
        let v = test_volume();
        let tf = TransferFunction::Fire { opacity: 1.0 };
        let mut settings = RenderSettings::with_size(24, 24);
        settings.early_termination = 0.999;
        let full = render_volume_full(&v, Axis::X, &tf, &settings);
        settings.early_termination = 0.95;
        let early = render_volume_full(&v, Axis::X, &tf, &settings);
        assert!(full.mean_abs_diff(&early) < 0.05);
    }

    #[test]
    fn different_axes_give_different_images() {
        let v = test_volume();
        let tf = TransferFunction::combustion_default();
        let settings = RenderSettings::with_size(32, 32);
        let x = render_volume_full(&v, Axis::X, &tf, &settings);
        let z = render_volume_full(&v, Axis::Z, &tf, &settings);
        assert!(x.mean_abs_diff(&z) > 0.001, "jet should look different down X vs Z");
    }

    #[test]
    fn trilinear_sampling_interpolates() {
        let mut v = Volume::zeros((2, 2, 2));
        v.set(1, 0, 0, 1.0);
        assert!((sample_trilinear(&v, [0.5, 0.0, 0.0]).unwrap() - 0.5).abs() < 1e-6);
        assert!(sample_trilinear(&v, [-0.1, 0.0, 0.0]).is_none());
        assert!(sample_trilinear(&v, [0.0, 0.0, 1.5]).is_none());
    }

    #[test]
    fn render_cost_scales_with_region_size() {
        let s = RenderSettings::default();
        assert!(render_cost_samples(1_000_000, &s) > render_cost_samples(100_000, &s));
        let finer = RenderSettings {
            step: 0.5,
            ..RenderSettings::default()
        };
        assert!(render_cost_samples(100_000, &finer) > render_cost_samples(100_000, &s));
    }
}
