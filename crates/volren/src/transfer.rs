//! Transfer functions: scalar value → colour and opacity.
//!
//! Volume rendering (reference \[9\] of the paper) classifies each sample
//! through a transfer function before compositing.  Visapult's combustion
//! visualizations use a fire-like map over the normalized scalar; a greyscale
//! ramp and an isosurface-style peak are provided for tests and other data.

use serde::{Deserialize, Serialize};

/// An RGBA colour with premultiplication *not* applied (alpha is opacity).
pub type Rgba = [f32; 4];

/// A transfer function mapping normalized scalars in `[0, 1]` to RGBA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TransferFunction {
    /// Greyscale ramp: value → grey level, opacity proportional to value.
    Grayscale {
        /// Overall opacity scale in `[0, 1]`.
        opacity: f32,
    },
    /// A fire/combustion map: transparent blue-black → red → orange → white.
    Fire {
        /// Overall opacity scale in `[0, 1]`.
        opacity: f32,
    },
    /// Emphasize values near `center` within `width` (soft isosurface).
    Peak {
        /// Centre of the emphasized band.
        center: f32,
        /// Width of the band.
        width: f32,
        /// Colour given to in-band samples.
        color: [f32; 3],
        /// Peak opacity.
        opacity: f32,
    },
}

impl TransferFunction {
    /// The default combustion map used by the examples.
    pub fn combustion_default() -> Self {
        TransferFunction::Fire { opacity: 0.6 }
    }

    /// Evaluate the transfer function at a normalized value.
    pub fn evaluate(&self, value: f32) -> Rgba {
        let v = value.clamp(0.0, 1.0);
        match self {
            TransferFunction::Grayscale { opacity } => [v, v, v, v * opacity.clamp(0.0, 1.0)],
            TransferFunction::Fire { opacity } => {
                // Piecewise ramp: black -> red -> orange -> yellow -> white.
                let (r, g, b) = if v < 0.25 {
                    (v * 4.0 * 0.6, 0.0, v * 0.2)
                } else if v < 0.5 {
                    (0.6 + (v - 0.25) * 1.6, (v - 0.25) * 1.2, 0.05)
                } else if v < 0.75 {
                    (1.0, 0.3 + (v - 0.5) * 2.0, 0.05 + (v - 0.5) * 0.4)
                } else {
                    (1.0, 0.8 + (v - 0.75) * 0.8, 0.15 + (v - 0.75) * 3.4)
                };
                let a = v.powf(1.5) * opacity.clamp(0.0, 1.0);
                [r.clamp(0.0, 1.0), g.clamp(0.0, 1.0), b.clamp(0.0, 1.0), a]
            }
            TransferFunction::Peak {
                center,
                width,
                color,
                opacity,
            } => {
                let d = ((v - center) / width.max(1e-6)).abs();
                let w = (1.0 - d).max(0.0);
                [color[0], color[1], color[2], w * opacity.clamp(0.0, 1.0)]
            }
        }
    }

    /// Evaluate with opacity corrected for sample spacing: compositing `n`
    /// samples through a slab must give the same optical depth regardless of
    /// `n`.  `reference_samples / actual_samples` is the spacing ratio.
    pub fn evaluate_corrected(&self, value: f32, spacing_ratio: f32) -> Rgba {
        let [r, g, b, a] = self.evaluate(value);
        let corrected = 1.0 - (1.0 - a).powf(spacing_ratio.max(0.0));
        [r, g, b, corrected]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_stay_in_unit_range() {
        for tf in [
            TransferFunction::Grayscale { opacity: 1.0 },
            TransferFunction::Fire { opacity: 0.7 },
            TransferFunction::Peak {
                center: 0.5,
                width: 0.1,
                color: [0.2, 0.9, 0.4],
                opacity: 0.8,
            },
        ] {
            for i in 0..=100 {
                let v = i as f32 / 100.0;
                let c = tf.evaluate(v);
                for ch in c {
                    assert!((0.0..=1.0).contains(&ch), "{tf:?} at {v} gave {c:?}");
                }
            }
        }
    }

    #[test]
    fn grayscale_is_monotone_in_value() {
        let tf = TransferFunction::Grayscale { opacity: 0.5 };
        let lo = tf.evaluate(0.2);
        let hi = tf.evaluate(0.8);
        assert!(hi[0] > lo[0] && hi[3] > lo[3]);
    }

    #[test]
    fn fire_map_gets_hotter_with_value() {
        let tf = TransferFunction::Fire { opacity: 1.0 };
        let low = tf.evaluate(0.1);
        let high = tf.evaluate(0.95);
        // Hot end is brighter and more opaque.
        assert!(high[0] + high[1] + high[2] > low[0] + low[1] + low[2]);
        assert!(high[3] > low[3]);
        // Input is clamped.
        assert_eq!(tf.evaluate(2.0), tf.evaluate(1.0));
        assert_eq!(tf.evaluate(-1.0), tf.evaluate(0.0));
    }

    #[test]
    fn peak_highlights_its_band_only() {
        let tf = TransferFunction::Peak {
            center: 0.5,
            width: 0.1,
            color: [1.0, 0.0, 0.0],
            opacity: 1.0,
        };
        assert!(tf.evaluate(0.5)[3] > 0.99);
        assert_eq!(tf.evaluate(0.8)[3], 0.0);
        assert_eq!(tf.evaluate(0.2)[3], 0.0);
    }

    #[test]
    fn opacity_correction_preserves_total_opacity() {
        // Compositing 2 samples at half spacing should give roughly the same
        // opacity as 1 sample at full spacing.
        let tf = TransferFunction::Grayscale { opacity: 0.5 };
        let full = tf.evaluate_corrected(0.6, 1.0)[3];
        let half = tf.evaluate_corrected(0.6, 0.5)[3];
        let two_halves = 1.0 - (1.0 - half) * (1.0 - half);
        assert!((two_halves - full).abs() < 1e-5);
    }
}
