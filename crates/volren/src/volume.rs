//! Dense scalar volumes.
//!
//! A [`Volume`] is a dense 3-D grid of `f32` samples in X-fastest (C) order —
//! the same layout the combustion simulation writes and the DPSS caches, so a
//! slab read from the cache can be reinterpreted in place.

use serde::{Deserialize, Serialize};

/// A dense scalar field on a regular grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Volume {
    dims: (usize, usize, usize),
    data: Vec<f32>,
}

impl Volume {
    /// A zero-filled volume.
    pub fn zeros(dims: (usize, usize, usize)) -> Self {
        assert!(dims.0 > 0 && dims.1 > 0 && dims.2 > 0, "dimensions must be positive");
        Volume {
            dims,
            data: vec![0.0; dims.0 * dims.1 * dims.2],
        }
    }

    /// Wrap existing samples (must match `dims`).
    pub fn from_data(dims: (usize, usize, usize), data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            dims.0 * dims.1 * dims.2,
            "data length must match dimensions"
        );
        Volume { dims, data }
    }

    /// Reconstruct from little-endian IEEE-754 bytes (the DPSS wire format).
    pub fn from_le_bytes(dims: (usize, usize, usize), bytes: &[u8]) -> Self {
        assert_eq!(
            bytes.len(),
            dims.0 * dims.1 * dims.2 * 4,
            "byte length must match dimensions"
        );
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Volume { dims, data }
    }

    /// Serialize to little-endian IEEE-754 bytes.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 4);
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Grid dimensions (x, y, z).
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the volume has no samples (never true for a constructed volume).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw samples.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw samples.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.dims.0 && y < self.dims.1 && z < self.dims.2);
        (z * self.dims.1 + y) * self.dims.0 + x
    }

    /// Sample at (x, y, z).
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        self.data[self.index(x, y, z)]
    }

    /// Set the sample at (x, y, z).
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f32) {
        let i = self.index(x, y, z);
        self.data[i] = v;
    }

    /// Minimum and maximum sample values.
    pub fn value_range(&self) -> (f32, f32) {
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in &self.data {
            min = min.min(v);
            max = max.max(v);
        }
        if min > max {
            (0.0, 0.0)
        } else {
            (min, max)
        }
    }

    /// Extract the sub-volume covering `[x0, x0+nx) × [y0, y0+ny) × [z0, z0+nz)`.
    pub fn subvolume(&self, origin: (usize, usize, usize), dims: (usize, usize, usize)) -> Volume {
        let (x0, y0, z0) = origin;
        let (nx, ny, nz) = dims;
        assert!(
            x0 + nx <= self.dims.0 && y0 + ny <= self.dims.1 && z0 + nz <= self.dims.2,
            "subvolume out of bounds"
        );
        let mut out = Volume::zeros(dims);
        for z in 0..nz {
            for y in 0..ny {
                let src_start = self.index(x0, y0 + y, z0 + z);
                let dst_start = (z * ny + y) * nx;
                out.data[dst_start..dst_start + nx].copy_from_slice(&self.data[src_start..src_start + nx]);
            }
        }
        out
    }

    /// Extract the Z-axis slab covering planes `[z0, z0+nz)` — the unit of
    /// data each back-end PE loads under the slab decomposition.
    pub fn z_slab(&self, z0: usize, nz: usize) -> Volume {
        self.subvolume((0, 0, z0), (self.dims.0, self.dims.1, nz))
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Normalize samples into `[0, 1]` (no-op for a constant volume).
    pub fn normalized(&self) -> Volume {
        let (min, max) = self.value_range();
        let span = max - min;
        if span <= f32::EPSILON {
            return self.clone();
        }
        Volume {
            dims: self.dims,
            data: self.data.iter().map(|v| (v - min) / span).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_volume(dims: (usize, usize, usize)) -> Volume {
        let mut v = Volume::zeros(dims);
        for z in 0..dims.2 {
            for y in 0..dims.1 {
                for x in 0..dims.0 {
                    v.set(x, y, z, (x + 10 * y + 100 * z) as f32);
                }
            }
        }
        v
    }

    #[test]
    fn indexing_is_x_fastest() {
        let v = ramp_volume((4, 3, 2));
        assert_eq!(v.get(0, 0, 0), 0.0);
        assert_eq!(v.get(1, 0, 0), 1.0);
        assert_eq!(v.get(0, 1, 0), 10.0);
        assert_eq!(v.get(0, 0, 1), 100.0);
        // Raw layout: x fastest.
        assert_eq!(v.data()[1], 1.0);
        assert_eq!(v.data()[4], 10.0);
    }

    #[test]
    fn byte_roundtrip() {
        let v = ramp_volume((5, 4, 3));
        let bytes = v.to_le_bytes();
        assert_eq!(bytes.len(), 5 * 4 * 3 * 4);
        let back = Volume::from_le_bytes(v.dims(), &bytes);
        assert_eq!(back, v);
    }

    #[test]
    fn z_slab_extraction_matches_manual_indexing() {
        let v = ramp_volume((4, 4, 8));
        let slab = v.z_slab(2, 3);
        assert_eq!(slab.dims(), (4, 4, 3));
        for z in 0..3 {
            for y in 0..4 {
                for x in 0..4 {
                    assert_eq!(slab.get(x, y, z), v.get(x, y, z + 2));
                }
            }
        }
    }

    #[test]
    fn subvolume_in_the_middle() {
        let v = ramp_volume((6, 6, 6));
        let s = v.subvolume((1, 2, 3), (2, 3, 2));
        assert_eq!(s.dims(), (2, 3, 2));
        assert_eq!(s.get(0, 0, 0), v.get(1, 2, 3));
        assert_eq!(s.get(1, 2, 1), v.get(2, 4, 4));
    }

    #[test]
    fn value_range_and_normalization() {
        let v = ramp_volume((3, 3, 3));
        let (min, max) = v.value_range();
        assert_eq!(min, 0.0);
        assert_eq!(max, 2.0 + 20.0 + 200.0);
        let n = v.normalized();
        let (nmin, nmax) = n.value_range();
        assert!((nmin - 0.0).abs() < 1e-6 && (nmax - 1.0).abs() < 1e-6);
        // Constant volume normalizes to itself.
        let c = Volume::from_data((2, 2, 2), vec![3.0; 8]);
        assert_eq!(c.normalized(), c);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_subvolume_panics() {
        ramp_volume((4, 4, 4)).subvolume((2, 2, 2), (3, 3, 3));
    }

    #[test]
    #[should_panic]
    fn mismatched_data_length_panics() {
        Volume::from_data((2, 2, 2), vec![0.0; 7]);
    }
}
