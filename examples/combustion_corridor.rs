//! The Combustion Corridor campaigns (§4 of the paper), replayed through the
//! declarative scenario engine.
//!
//! First the bundled `scenarios/combustion_corridor_oc12.toml` spec — a
//! staged workload mix (serial probe, then overlapped sustained) over the
//! NTON OC-12 — is executed on *both* paths: for real on OS threads, and in
//! virtual time against the calibrated models, from the very same spec.
//!
//! Then the paper-scale reconstructions (640×256×256 floats) of the three
//! field-test configurations — NTON/CPlant, ESnet/Onyx2 and the LAN E4500 —
//! are swept through the same `Pipeline` builder, reproducing the
//! per-frame load/render times, aggregate throughputs and campaign totals of
//! Figures 10 and 12–17.
//!
//! Run with: `cargo run --release --example combustion_corridor`

use visapult::core::{ExecutionMode, ExecutionPath, OverlapModel, Pipeline, ScenarioSpec, StageSpec};
use visapult::netsim::TestbedKind;

fn stage(name: &str, share: f64, mode: ExecutionMode) -> StageSpec {
    StageSpec {
        name: name.to_string(),
        share,
        execution: Some(mode),
        stripes: None,
    }
}

fn show_paper(kind: TestbedKind, pes: usize, timesteps: usize, mode: ExecutionMode) {
    let spec = ScenarioSpec::paper_virtual(kind, pes, timesteps, vec![stage(mode.label(), 100.0, mode)]);
    let report = Pipeline::from_spec(&spec)
        .expect("spec compiles")
        .run()
        .expect("campaign failed");
    let m = &report.stages[0].metrics;
    println!(
        "{:<34} {:>4} PEs {:<10} L={:6.2}s  R={:6.2}s  send={:5.2}s  agg load={:6.1} Mbps  total={:7.1}s  ({:.2} s/step)",
        format!("{kind:?}"),
        report.stages[0].pes,
        report.stages[0].mode.label(),
        m.mean_load_time,
        m.mean_render_time,
        m.mean_send_time,
        m.mean_load_throughput_mbps,
        m.total_time,
        m.seconds_per_timestep,
    );
}

fn main() {
    println!("== Combustion Corridor campaigns via the scenario engine ==\n");

    println!("-- The bundled staged scenario, on both execution paths --");
    let spec = ScenarioSpec::bundled("combustion_corridor_oc12").expect("bundled scenario parses");
    for path in ExecutionPath::ALL {
        let report = Pipeline::builder(spec.clone())
            .path(path)
            .build()
            .expect("spec compiles")
            .run()
            .expect("scenario failed");
        println!("[{} path]", path.label());
        println!("{}", report.to_table());
    }

    let timesteps = 10;
    println!("-- Paper scale: LBL DPSS -> CPlant over NTON (Figures 10, 14, 15) --");
    show_paper(TestbedKind::NtonCplant, 4, timesteps, ExecutionMode::Serial);
    show_paper(TestbedKind::NtonCplant, 8, timesteps, ExecutionMode::Serial);
    show_paper(TestbedKind::NtonCplant, 8, timesteps, ExecutionMode::Overlapped);

    println!("\n-- Paper scale: LBL DPSS -> ANL Onyx2 SMP over ESnet (Figures 16, 17) --");
    show_paper(TestbedKind::EsnetAnlSmp, 8, timesteps, ExecutionMode::Serial);
    show_paper(TestbedKind::EsnetAnlSmp, 8, timesteps, ExecutionMode::Overlapped);

    println!("\n-- Paper scale: LBL DPSS -> Sun E4500 over gigabit LAN (Figures 12, 13) --");
    show_paper(TestbedKind::LanSmp, 8, timesteps, ExecutionMode::Serial);
    show_paper(TestbedKind::LanSmp, 8, timesteps, ExecutionMode::Overlapped);

    println!("\n-- The analytic model of section 4.3 --");
    let model = OverlapModel::paper_e4500();
    println!(
        "L=15s R=12s, N=10:  Ts = {:.0}s (paper measured ~265s),  To = {:.0}s (paper measured ~169s),  speedup {:.2} (ceiling {:.2})",
        model.serial_time(10),
        model.overlapped_time(10),
        model.speedup(10),
        OverlapModel::ideal_speedup(10),
    );

    println!("\n-- Future work (section 5): dedicated OC-192 --");
    show_paper(TestbedKind::FutureOc192, 16, timesteps, ExecutionMode::Overlapped);
}
