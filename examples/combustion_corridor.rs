//! The Combustion Corridor campaigns (§4 of the paper), replayed in
//! virtual time.
//!
//! Reconstructs the paper's three field-test configurations — LBL→CPlant over
//! NTON, LBL→ANL Onyx2 over ESnet, and the local E4500 over gigabit LAN — and
//! runs each with the serial and overlapped back ends, printing the per-frame
//! load/render times, aggregate throughput and total campaign times that
//! correspond to Figures 10 and 12–17.
//!
//! Run with: `cargo run --release --example combustion_corridor`

use visapult::core::{run_sim_campaign, ExecutionMode, OverlapModel, SimCampaignConfig};

fn show(config: SimCampaignConfig) {
    let report = run_sim_campaign(&config).expect("campaign failed");
    println!(
        "{:<42} L={:6.2}s  R={:6.2}s  send={:5.2}s  agg load={:6.1} Mbps  total={:7.1}s  ({:.2} s/step)",
        report.name,
        report.mean_load_time,
        report.mean_render_time,
        report.mean_send_time,
        report.mean_load_throughput_mbps,
        report.total_time,
        report.seconds_per_timestep(),
    );
}

fn main() {
    let timesteps = 10;
    println!("== Combustion Corridor campaigns (virtual time, {timesteps} timesteps of 640x256x256 floats) ==\n");

    println!("-- April 2000 campaign: LBL DPSS -> CPlant over NTON (Figures 10, 14, 15) --");
    show(SimCampaignConfig::nton_cplant(4, timesteps, ExecutionMode::Serial));
    show(SimCampaignConfig::nton_cplant(8, timesteps, ExecutionMode::Serial));
    show(SimCampaignConfig::nton_cplant(8, timesteps, ExecutionMode::Overlapped));

    println!("\n-- LBL DPSS -> ANL Onyx2 SMP over ESnet (Figures 16, 17) --");
    show(SimCampaignConfig::esnet_anl(8, timesteps, ExecutionMode::Serial));
    show(SimCampaignConfig::esnet_anl(8, timesteps, ExecutionMode::Overlapped));

    println!("\n-- LBL DPSS -> Sun E4500 over gigabit LAN (Figures 12, 13) --");
    show(SimCampaignConfig::lan_e4500(8, timesteps, ExecutionMode::Serial));
    show(SimCampaignConfig::lan_e4500(8, timesteps, ExecutionMode::Overlapped));

    println!("\n-- The analytic model of section 4.3 --");
    let model = OverlapModel::paper_e4500();
    println!(
        "L=15s R=12s, N=10:  Ts = {:.0}s (paper measured ~265s),  To = {:.0}s (paper measured ~169s),  speedup {:.2} (ceiling {:.2})",
        model.serial_time(10),
        model.overlapped_time(10),
        model.speedup(10),
        OverlapModel::ideal_speedup(10),
    );

    println!("\n-- Future work (section 5): dedicated OC-192 --");
    show(SimCampaignConfig::future_oc192(16, timesteps, ExecutionMode::Overlapped));
}
