//! A tour of the DPSS network data cache (§2, §3.5).
//!
//! Shows the full data-staging story the paper tells: a large time-varying
//! dataset archived on HPSS (full-file access only, tape latency) is migrated
//! onto a four-server DPSS, after which Visapult-style block-level slab reads
//! are served in parallel by every server — including over real striped TCP
//! sockets — and the capacity model reproduces the paper's headline 980 Mbps
//! LAN / 570 Mbps WAN numbers.
//!
//! Run with: `cargo run --release --example dpss_cache_tour`

use std::sync::Arc;
use visapult::dpss::{
    net::serve_cluster, BlockCache, CacheConfig, DatasetDescriptor, DpssClient, DpssCluster, DpssSimModel, HpssArchive,
    StripeLayout,
};
use visapult::netsim::{Bandwidth, DataSize, Link, LinkKind, SimDuration, TcpConfig, TcpModel};
use visapult::volren::combustion_series_bytes;

fn main() {
    println!("== DPSS network data cache tour ==\n");

    // 1. The dataset starts on HPSS.
    let descriptor = DatasetDescriptor::small_combustion(4);
    let mut archive = HpssArchive::new();
    archive.archive(descriptor.clone());
    println!(
        "HPSS holds {} ({:.1} MB); full-file retrieval from tape would take {:.1} s",
        descriptor.name,
        descriptor.total_size().megabytes(),
        archive
            .full_file_retrieval_time(&descriptor.name)
            .unwrap()
            .as_secs_f64()
    );

    // 2. Stage it onto a four-server DPSS.
    let cluster = DpssCluster::new(StripeLayout::four_server());
    let stager = DpssClient::new(cluster.clone(), "stager");
    let content = combustion_series_bytes(descriptor.dims, descriptor.timesteps, 7);
    let report = archive
        .stage_to_dpss(&descriptor.name, &stager, &content, Bandwidth::from_mbps(980.0))
        .expect("staging failed");
    println!(
        "staged onto the DPSS: HPSS delivery {:.1} s vs cache delivery {:.2} s for the same bytes\n",
        report.hpss_time.as_secs_f64(),
        report.dpss_time.as_secs_f64()
    );

    // 3. Block-level slab reads through the client API.
    let client = DpssClient::new(cluster.clone(), "visapult-backend");
    let (offset, len) = descriptor.z_slab_range(2, 3, 8);
    let mut slab = vec![0u8; len as usize];
    client.read_at(&descriptor.name, offset, &mut slab).unwrap();
    println!(
        "block-level access: slab 3/8 of timestep 2 is {} KB read with {} parallel server threads",
        len / 1000,
        client.threads_per_request()
    );

    // 4. The same read over real striped TCP sockets.
    let (_servers, tcp_client) = serve_cluster(&cluster, "visapult-backend", None).unwrap();
    let mut tcp_slab = vec![0u8; len as usize];
    tcp_client.read_at(&descriptor.name, offset, &mut tcp_slab).unwrap();
    assert_eq!(slab, tcp_slab);
    println!(
        "striped TCP read over {} sockets returned identical bytes\n",
        tcp_client.stripe_count()
    );

    // 5. The zero-copy data plane and the sharded block cache.
    let (slab_offset, slab_len) = descriptor.z_slab_range(2, 3, 8);
    let copies_before = bytes::deep_copy_count();
    let shared = client.read_range(&descriptor.name, slab_offset, slab_len).unwrap();
    let again = client.read_range(&descriptor.name, slab_offset, slab_len).unwrap();
    println!(
        "zero-copy plane: two {} KB read_range calls performed {} deep byte copies{}",
        shared.len() / 1000,
        bytes::deep_copy_count() - copies_before,
        if again.ptr_eq(&shared) {
            " and share one arena allocation"
        } else {
            " (multi-block range: one gather each)"
        }
    );
    let cache = Arc::new(BlockCache::new(CacheConfig::new(256, 4)));
    let cached = DpssClient::new(cluster.clone(), "visapult-backend").with_cache(Arc::clone(&cache));
    for _playback in 0..3 {
        cached
            .read_range(&descriptor.name, 0, descriptor.bytes_per_timestep().bytes())
            .unwrap();
    }
    let stats = cache.stats();
    println!(
        "block cache: 3 playback passes -> {} hits / {} misses / {} evictions ({:.0}% hit rate)\n",
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.hit_rate() * 100.0
    );

    // 6. Capacity model: the paper's headline numbers.
    let model = DpssSimModel::four_server_2000();
    let lan = TcpModel::from_path(
        &[Link::new(
            "client gigE",
            LinkKind::Lan,
            Bandwidth::gige(),
            SimDuration::from_micros(150),
        )],
        TcpConfig::wan_tuned(),
        4,
    );
    let wan = TcpModel::from_path(
        &[Link::new(
            "NTON OC-12",
            LinkKind::DedicatedWan,
            Bandwidth::oc12(),
            SimDuration::from_millis(2),
        )],
        TcpConfig::wan_tuned(),
        4,
    );
    println!("capacity model for the 4-server / 20-disk DPSS of section 3.5:");
    println!(
        "  cache serve rate          : {:6.1} MB/s  (paper: 'over 150 MB/s')",
        model.serve_rate().mbytes_per_sec()
    );
    println!(
        "  delivered to a LAN client : {:6.1} Mbps   (paper: 980 Mbps)",
        model.delivered_throughput(&lan).mbps()
    );
    println!(
        "  delivered to a WAN client : {:6.1} Mbps   (paper: 570 Mbps)",
        model.delivered_throughput(&wan).mbps()
    );
    println!(
        "  160 MB timestep over the WAN: {:.2} s cold, {:.2} s warm",
        model.read_time(DataSize::from_mb(160), &wan).as_secs_f64(),
        model.read_time_warm(DataSize::from_mb(160), &wan).as_secs_f64()
    );
}
