//! A tour of the multi-session service layer (the `[service]` table).
//!
//! Runs the bundled `exhibit_floor` scenario — a 1/8/64-session sweep over
//! the shared OC-12 ESnet testbed — through the session broker: stage 1 is
//! the classic single console, stage 2 churns eight sessions through
//! staggered joins and two-frame dwells, stage 3 serves 64 concurrent
//! sessions spread over 4 shared viewpoints, so the farm renders 1/16th of
//! what a naive per-session farm would.  Then replays the same spec in
//! virtual time and checks the broker's deterministic lifecycle telemetry
//! lines up exactly, stage by stage.
//!
//! Run with: `cargo run --release --example exhibit_floor`

use visapult::core::{ExecutionPath, Pipeline, ScenarioSpec};

fn main() {
    let spec = ScenarioSpec::bundled("exhibit_floor").expect("bundled scenario");
    println!("== Multi-session service layer: {} ==\n", spec.scenario.name);
    println!("{}\n", spec.scenario.description.as_deref().unwrap_or("session sweep"));

    // The real pipeline: the fan-out plane multicasting stripe chunks
    // zero-copy onto per-session bounded queues, every session reassembling
    // at its own pace.
    let real = Pipeline::from_spec(&spec)
        .expect("spec compiles")
        .run()
        .expect("real campaign");
    println!("{}", real.to_table());
    println!("session sweep (real path):");
    println!(
        "  {:<14} {:>9} {:>10} {:>9} {:>9} {:>12} {:>10}",
        "stage", "sessions", "requests", "renders", "shared%", "fanout MB", "skipped"
    );
    for stage in &real.stages {
        let s = &stage.metrics.service;
        println!(
            "  {:<14} {:>9} {:>10} {:>9} {:>8.1}% {:>12.2} {:>10}",
            stage.name,
            s.sessions_admitted,
            s.render_requests,
            s.renders_performed,
            s.shared_render_hit_rate() * 100.0,
            s.fanout_bytes as f64 / 1e6,
            s.frames_skipped,
        );
    }
    let floor = real
        .stages
        .iter()
        .find(|s| s.name == "exhibit-floor")
        .expect("exhibit-floor stage");
    println!(
        "\nshared renders at 64 sessions: {} backend renders for {} session-frames — {:.1}x less backend work",
        floor.metrics.service.renders_performed,
        floor.metrics.service.render_requests,
        1.0 / floor.metrics.service.render_ratio().max(1e-9),
    );

    // The same spec in virtual time: the identical broker state machine,
    // replayed frame by frame with no bytes moved.
    let sim = Pipeline::builder(spec.clone())
        .path(ExecutionPath::VirtualTime)
        .build()
        .expect("spec compiles")
        .run()
        .expect("virtual-time replay");
    println!("\nvirtual-time replay parity (deterministic lifecycle half):");
    for (r, s) in real.stages.iter().zip(&sim.stages) {
        let (rm, sm) = (&r.metrics.service, &s.metrics.service);
        println!(
            "  {:<14} admitted {:>2} == {:<2}  renders {:>3} == {:<3}  requests {:>3} == {:<3}  (real == sim)",
            r.name,
            rm.sessions_admitted,
            sm.sessions_admitted,
            rm.renders_performed,
            sm.renders_performed,
            rm.render_requests,
            sm.render_requests,
        );
        assert_eq!(rm.sessions_admitted, sm.sessions_admitted);
        assert_eq!(rm.sessions_evicted, sm.sessions_evicted);
        assert_eq!(rm.renders_performed, sm.renders_performed);
        assert_eq!(rm.render_requests, sm.render_requests);
        assert_eq!(rm.peak_live_sessions, sm.peak_live_sessions);
    }

    // Determinism: same spec, same fingerprint, on both paths.
    let real_again = Pipeline::from_spec(&spec)
        .expect("spec compiles")
        .run()
        .expect("real campaign, again");
    assert_eq!(real.replay_fingerprint(), real_again.replay_fingerprint());
    println!(
        "\nreplay fingerprints: real {:#018x} (reproducible), virtual-time {:#018x}",
        real.replay_fingerprint(),
        sim.replay_fingerprint()
    );
    println!("\nexhibit_floor preserves the paper's result shape: one farm, many viewers, 1/16th the renders");
}
