//! Quickstart: run the whole Visapult pipeline, end to end, on your laptop —
//! driven by a declarative scenario file.
//!
//! The bundled `scenarios/quickstart_lan.toml` spec stages synthetic
//! combustion data onto an in-process DPSS network cache, runs a four-PE
//! overlapped back end loading Z-slabs through the multi-threaded DPSS
//! client, and streams textures to the viewer, whose IBR-assisted compositor
//! produces the final image.  NetLogger instrumentation records the run and
//! an NLV-style lifeline plot is printed at the end.
//!
//! Flip `path = "real"` to `"virtual-time"` in the scenario file (or call
//! `.with_path(ExecutionPath::VirtualTime)`) to replay the same scenario
//! against the calibrated testbed models in milliseconds.
//!
//! Run with: `cargo run --release --example quickstart`

use visapult::core::{run_scenario, ScenarioSpec};
use visapult::netlogger::{LifelinePlot, NlvOptions, ProfileAnalysis};

fn main() {
    let spec = ScenarioSpec::bundled("quickstart_lan").expect("bundled scenario parses");

    println!("== Visapult quickstart ==");
    println!(
        "scenario {} [{} path], {} PEs, {} timesteps, seed {}\n",
        spec.scenario.name,
        spec.scenario.path.label(),
        spec.pipeline.pes,
        spec.pipeline.timesteps,
        spec.scenario.seed,
    );

    let report = run_scenario(&spec).expect("scenario failed");

    println!("{}", report.to_table());
    println!(
        "data movement: {:.1} MB loaded from the DPSS, {:.2} MB shipped to the viewer ({}x data reduction)",
        report.bytes_loaded() as f64 / 1e6,
        report.wire_bytes() as f64 / 1e6,
        report.data_reduction_factor().round(),
    );
    println!(
        "viewer       : {} payloads received across {} stage(s)",
        report.frames_received(),
        report.stages.len()
    );
    println!(
        "replay fingerprint: {:016x} (same spec + seed => same fingerprint)\n",
        report.replay_fingerprint()
    );

    println!("Per-frame phase analysis (from NetLogger events):");
    println!("{}", ProfileAnalysis::from_log(&report.log).to_table());

    println!("NLV lifeline plot of the run:");
    let plot = LifelinePlot::new(&report.log, NlvOptions::default().with_width(90));
    println!("{}", plot.render());
}
