//! Quickstart: run the whole Visapult pipeline, end to end, on your laptop.
//!
//! Synthetic combustion data is staged onto an in-process DPSS network cache,
//! a four-PE overlapped back end loads Z-slabs through the multi-threaded
//! DPSS client, volume renders them, and streams textures to the viewer,
//! whose IBR-assisted compositor produces the final image.  NetLogger
//! instrumentation records the run and an NLV-style lifeline plot is printed
//! at the end.
//!
//! Run with: `cargo run --release --example quickstart`

use visapult::core::{
    run_real_campaign, ExecutionMode, PipelineConfig, RealCampaignConfig,
};
use visapult::netlogger::{LifelinePlot, NlvOptions};

fn main() {
    let pipeline = PipelineConfig::small(4, 3, ExecutionMode::Overlapped);
    let config = RealCampaignConfig::small(pipeline);

    println!("== Visapult quickstart ==");
    println!(
        "dataset {} ({}x{}x{}, {} timesteps), {} PEs, {} mode\n",
        config.pipeline.dataset.name,
        config.pipeline.dataset.dims.0,
        config.pipeline.dataset.dims.1,
        config.pipeline.dataset.dims.2,
        config.pipeline.timesteps,
        config.pipeline.pes,
        config.pipeline.mode.label(),
    );

    let report = run_real_campaign(&config).expect("campaign failed");

    println!("back end : {} frames in {:?}", report.backend.frames_rendered, report.backend.elapsed);
    println!(
        "           {:.1} MB loaded from the DPSS, {:.2} MB shipped to the viewer ({}x data reduction)",
        report.backend.total_bytes_loaded() as f64 / 1e6,
        report.backend.total_wire_bytes() as f64 / 1e6,
        report.data_reduction_factor().round(),
    );
    println!(
        "viewer   : {} payloads received, {} composites rendered, final image coverage {:.1}%",
        report.viewer.frames_received,
        report.viewer.renders_performed,
        report.viewer.final_image.coverage() * 100.0
    );

    println!("\nPer-frame phase analysis (from NetLogger events):");
    println!("{}", report.analysis.to_table());

    println!("NLV lifeline plot of the run:");
    let plot = LifelinePlot::new(&report.log, NlvOptions::default().with_width(90));
    println!("{}", plot.render());
}
