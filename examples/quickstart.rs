//! Quickstart: run the whole Visapult pipeline, end to end, on your laptop —
//! driven by a declarative scenario file.
//!
//! The bundled `scenarios/quickstart_lan.toml` spec stages synthetic
//! combustion data onto an in-process DPSS network cache, runs a four-PE
//! overlapped back end loading Z-slabs through the multi-threaded DPSS
//! client, and streams textures to the viewer, whose IBR-assisted compositor
//! produces the final image.  NetLogger instrumentation records the run and
//! an NLV-style lifeline plot is printed at the end.
//!
//! Flip `path = "real"` to `"virtual-time"` in the scenario file (or call
//! `.with_path(ExecutionPath::VirtualTime)`) to replay the same scenario
//! against the calibrated testbed models in milliseconds.
//!
//! Run with: `cargo run --release --example quickstart`

use visapult::core::{Pipeline, ScenarioSpec};
use visapult::netlogger::{LifelinePlot, NlvOptions, ProfileAnalysis};

fn main() {
    let spec = ScenarioSpec::bundled("quickstart_lan").expect("bundled scenario parses");

    println!("== Visapult quickstart ==");
    println!(
        "scenario {} [{} path], {} PEs, {} timesteps, seed {}\n",
        spec.scenario.name,
        spec.scenario.path.label(),
        spec.pipeline.pes,
        spec.pipeline.timesteps,
        spec.scenario.seed,
    );

    // The unified driver: compile the spec into a `Pipeline` (the stage
    // control flow exists once; the spec's path picks the capability set —
    // clock, fabric, render farm, service plane) and run it.
    let report = Pipeline::from_spec(&spec)
        .expect("spec compiles")
        .run()
        .expect("scenario failed");

    println!("{}", report.to_table());
    println!(
        "data movement: {:.1} MB loaded from the DPSS, {:.2} MB shipped to the viewer ({}x data reduction)",
        report.bytes_loaded() as f64 / 1e6,
        report.wire_bytes() as f64 / 1e6,
        report.data_reduction_factor().round(),
    );
    println!(
        "viewer       : {} payloads received across {} stage(s)",
        report.frames_received(),
        report.stages.len()
    );
    println!(
        "replay fingerprint: {:016x} (same spec + seed => same fingerprint)\n",
        report.replay_fingerprint()
    );

    println!("Per-frame phase analysis (from NetLogger events):");
    println!("{}", ProfileAnalysis::from_log(&report.log).to_table());

    println!("NLV lifeline plot of the run:");
    let plot = LifelinePlot::new(&report.log, NlvOptions::default().with_width(90));
    println!("{}", plot.render());

    // ---- migration guide ----------------------------------------------
    // Before the unified driver, single campaigns ran through per-path
    // entry points.  Those facades still work (deprecated, delegating to
    // the same builder), and produce the same deterministic results:
    #[allow(deprecated)] // quickstart doubles as the facade migration guide
    {
        use visapult::core::{run_real_campaign, ExecutionMode, PipelineConfig, RealCampaignConfig};
        let legacy = run_real_campaign(&RealCampaignConfig::small(PipelineConfig::small(
            2,
            2,
            ExecutionMode::Serial,
        )))
        .expect("legacy facade still works");
        println!(
            "deprecated facade check: run_real_campaign delivered {} payloads (now spelled `Pipeline::builder(spec).build()?.run()?`)",
            legacy.viewer.frames_received
        );
    }
}
