//! The SC99 research exhibit (§4.1), reconstructed through the scenario
//! engine.
//!
//! Two data paths ran on the show floor: cosmology data from the LBL DPSS to
//! the CPlant cluster over NTON (250 Mbps achieved with the early Visapult
//! implementation) and to the 8-node Babel cluster in the LBL booth over the
//! shared SciNet fabric (150 Mbps).  Both are replayed here at paper scale
//! through the `Pipeline` builder, the bundled `scenarios/sc99_exhibit.toml` spec is
//! run as shipped, and an actual frame of the synthetic cosmology dataset is
//! rendered through the IBRAVR path to produce the kind of image shown in
//! Figure 9.
//!
//! Run with: `cargo run --release --example sc99_exhibit`

use visapult::core::{Pipeline, ScenarioSpec};
use visapult::netsim::TestbedKind;
use visapult::scenegraph::IbravrModel;
use visapult::volren::{cosmology_density, Axis, RenderSettings, TransferFunction, ViewOrientation};

fn main() {
    println!("== SC99 research exhibit reconstruction ==\n");

    println!("-- The bundled scenario, as shipped --");
    let bundled = ScenarioSpec::bundled("sc99_exhibit").expect("bundled scenario parses");
    let report = Pipeline::from_spec(&bundled)
        .expect("spec compiles")
        .run()
        .expect("scenario failed");
    println!("{}", report.to_table());

    println!("-- Wide-area data paths at paper scale (virtual time) --");
    for (kind, pes) in [(TestbedKind::Sc99Cplant, 4), (TestbedKind::Sc99Booth, 8)] {
        let spec = ScenarioSpec::paper_virtual(kind, pes, 6, Vec::new());
        let report = Pipeline::from_spec(&spec)
            .expect("spec compiles")
            .run()
            .expect("campaign failed");
        let m = &report.stages[0].metrics;
        println!(
            "{:<38} aggregate DPSS->back-end throughput {:6.1} Mbps, {:.2} s per timestep",
            format!("{kind:?} x{pes} PEs"),
            m.mean_load_throughput_mbps,
            m.seconds_per_timestep,
        );
    }
    println!("(paper: 250 Mbps over NTON to CPlant, 150 Mbps over SciNet to the booth cluster)\n");

    println!("-- Cosmology visualization through the IBRAVR path --");
    let volume = cosmology_density((96, 96, 96), 1999);
    let tf = TransferFunction::Grayscale { opacity: 0.8 };
    let settings = RenderSettings::with_size(128, 128);
    let model = IbravrModel::from_volume(&volume, Axis::Z, 8, &tf, &settings);
    println!(
        "built an IBRAVR model with {} slabs, {:.2} MB of viewer-side imagery (raw volume: {:.2} MB)",
        model.slab_count(),
        model.payload_bytes() as f64 / 1e6,
        volume.len() as f64 * 4.0 / 1e6
    );
    for yaw in [0.0, 10.0, 20.0] {
        let view = ViewOrientation::new(yaw, 5.0);
        let image = model.composite(&view, 128, 128);
        let err = model.artifact_error(&volume, &view, &tf, &settings);
        println!(
            "  view yaw {yaw:>4.1} deg: composite coverage {:5.1}%, artifact error vs ground truth {err:.4}",
            image.coverage() * 100.0
        );
    }

    println!("\n-- Display targets --");
    println!("ImmersaDesk (stereo) and the SNL tiled display both consume the same viewer scene graph;");
    println!("the viewer's render thread is decoupled from the WAN, so interaction frame rate is local.");
}
