//! The SC99 research exhibit (§4.1), reconstructed.
//!
//! Two data paths ran on the show floor: cosmology data from the LBL DPSS to
//! the CPlant cluster over NTON (250 Mbps achieved with the early Visapult
//! implementation) and to the 8-node Babel cluster in the LBL booth over the
//! shared SciNet fabric (150 Mbps).  This example replays both in virtual
//! time, and also renders an actual frame of the synthetic cosmology dataset
//! through the IBRAVR path to produce the kind of image shown in Figure 9.
//!
//! Run with: `cargo run --release --example sc99_exhibit`

use visapult::core::{run_sim_campaign, SimCampaignConfig};
use visapult::scenegraph::IbravrModel;
use visapult::volren::{cosmology_density, Axis, RenderSettings, TransferFunction, ViewOrientation};

fn main() {
    println!("== SC99 research exhibit reconstruction ==\n");

    println!("-- Wide-area data paths (virtual time) --");
    for config in [SimCampaignConfig::sc99_cplant(4, 6), SimCampaignConfig::sc99_booth(8, 6)] {
        let report = run_sim_campaign(&config).expect("campaign failed");
        println!(
            "{:<38} aggregate DPSS->back-end throughput {:6.1} Mbps, {:.2} s per timestep",
            report.name,
            report.mean_load_throughput_mbps,
            report.seconds_per_timestep(),
        );
    }
    println!("(paper: 250 Mbps over NTON to CPlant, 150 Mbps over SciNet to the booth cluster)\n");

    println!("-- Cosmology visualization through the IBRAVR path --");
    let volume = cosmology_density((96, 96, 96), 1999);
    let tf = TransferFunction::Grayscale { opacity: 0.8 };
    let settings = RenderSettings::with_size(128, 128);
    let model = IbravrModel::from_volume(&volume, Axis::Z, 8, &tf, &settings);
    println!(
        "built an IBRAVR model with {} slabs, {:.2} MB of viewer-side imagery (raw volume: {:.2} MB)",
        model.slab_count(),
        model.payload_bytes() as f64 / 1e6,
        volume.len() as f64 * 4.0 / 1e6
    );
    for yaw in [0.0, 10.0, 20.0] {
        let view = ViewOrientation::new(yaw, 5.0);
        let image = model.composite(&view, 128, 128);
        let err = model.artifact_error(&volume, &view, &tf, &settings);
        println!(
            "  view yaw {yaw:>4.1} deg: composite coverage {:5.1}%, artifact error vs ground truth {err:.4}",
            image.coverage() * 100.0
        );
    }

    println!("\n-- Display targets --");
    println!("ImmersaDesk (stereo) and the SNL tiled display both consume the same viewer scene graph;");
    println!("the viewer's render thread is decoupled from the WAN, so interaction frame rate is local.");
}
