//! A tour of the striped WAN transport (§3.4 and the `[transport]` table).
//!
//! Runs the bundled `wan_stripes` scenario — a 1/4/8 stripe-count sweep over
//! the shared OC-12 ESnet testbed with *untuned* 64 KB TCP windows, the real
//! link paced by the modeled striped TCP session — and shows the paper's
//! striping result on real frames: one stripe is window-limited over the
//! WAN RTT, eight stripes approach the path's ceiling.  Then replays the
//! same spec in virtual time and checks the per-stripe telemetry lines up
//! structurally, stage by stage.
//!
//! Run with: `cargo run --release --example wan_stripes`

use visapult::core::{ExecutionPath, Pipeline, ScenarioSpec};

fn main() {
    let spec = ScenarioSpec::bundled("wan_stripes").expect("bundled scenario");
    println!("== Striped WAN transport: {} ==\n", spec.scenario.name);
    println!("{}\n", spec.scenario.description.as_deref().unwrap_or("stripe sweep"));

    // The real pipeline: chunked zero-copy framing, per-stripe sequence
    // numbers, out-of-order reassembly, bounded queues, WAN pacing.
    let real = Pipeline::from_spec(&spec)
        .expect("spec compiles")
        .run()
        .expect("real campaign");
    println!("{}", real.to_table());
    println!("per-stage striping (real path):");
    for stage in &real.stages {
        let t = &stage.metrics.transport;
        let per_stripe: Vec<String> = t
            .per_stripe
            .iter()
            .map(|s| format!("{:.1} KB", s.bytes as f64 / 1024.0))
            .collect();
        println!(
            "  {:<10} {} stripe(s): send {:>7.4}s/frame, {} chunks, [{}]",
            stage.name,
            t.stripe_count(),
            stage.metrics.mean_send_time,
            t.chunks,
            per_stripe.join(" | "),
        );
    }
    let partials: u64 = real.stages.iter().map(|s| s.metrics.transport.partial_updates).sum();
    println!("\nprogressive compositor: {partials} partial scene updates landed before their frames completed");
    let speedup = real.stages[0].metrics.mean_send_time / real.stages[2].metrics.mean_send_time.max(1e-9);
    println!("striping win on the real link: 8 stripes ship a frame {speedup:.1}x faster than 1\n");

    // The same spec in virtual time: identical chunk/stripe plan, modeled
    // TCP session in the send phase.
    let sim = Pipeline::builder(spec.clone())
        .path(ExecutionPath::VirtualTime)
        .build()
        .expect("spec compiles")
        .run()
        .expect("virtual-time replay");
    println!("virtual-time replay parity:");
    for (r, s) in real.stages.iter().zip(&sim.stages) {
        println!(
            "  {:<10} stripes {:>2} == {:<2}  frames {:>2} == {:<2}  (real == sim)",
            r.name,
            r.metrics.transport.stripe_count(),
            s.metrics.transport.stripe_count(),
            r.metrics.transport.frames,
            s.metrics.transport.frames,
        );
        assert_eq!(r.metrics.transport.stripe_count(), s.metrics.transport.stripe_count());
        assert_eq!(r.metrics.transport.frames, s.metrics.transport.frames);
    }

    // Determinism: same spec, same fingerprint, on both paths.
    let real_again = Pipeline::from_spec(&spec)
        .expect("spec compiles")
        .run()
        .expect("real campaign, again");
    assert_eq!(real.replay_fingerprint(), real_again.replay_fingerprint());
    println!(
        "\nreplay fingerprints: real {:#018x} (reproducible), virtual-time {:#018x}",
        real.replay_fingerprint(),
        sim.replay_fingerprint()
    );
    println!("\nwan_stripes preserves the paper's striping result on the real transport");
}
