//! Offline stand-in for `bytes`, vendored so the workspace builds without
//! registry access.  Covers the wire-protocol subset this workspace uses:
//! [`Buf`] for `&[u8]` (consuming reads, big-endian like the real crate),
//! [`BufMut`]/[`BytesMut`] for building messages, and [`Bytes`] — the
//! reference-counted immutable buffer the zero-copy data plane is built on.
//!
//! Like the real crate, [`Bytes`] clones and slices in O(1) by sharing one
//! `Arc`'d allocation.  Unlike the real crate, every operation that *does*
//! deep-copy buffer contents (`to_vec`, `copy_from_slice`, `gather`) bumps a
//! process-wide counter readable through [`deep_copy_count`], so tests can
//! assert that a data path performed zero byte-buffer copies.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of deep byte-buffer copies performed through [`Bytes`].
static DEEP_COPIES: AtomicU64 = AtomicU64::new(0);

/// Number of deep byte-buffer copies [`Bytes`] has performed process-wide
/// (via [`Bytes::to_vec`], [`Bytes::copy_from_slice`] or [`Bytes::gather`]).
/// Zero-copy operations — `clone`, `slice`, `From<Vec<u8>>`,
/// [`BytesMut::freeze`] — never bump it.
pub fn deep_copy_count() -> u64 {
    DEEP_COPIES.load(Ordering::Relaxed)
}

fn count_deep_copy() {
    DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
}

/// A cheaply cloneable, sliceable, immutable byte buffer.
///
/// Backed by an `Arc<Vec<u8>>` plus an offset/length window, so clones and
/// subslices share the allocation instead of copying it.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing allocation without copying.
    pub fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            offset: 0,
            len,
        }
    }

    /// Share an existing `Arc`'d allocation without copying (the whole thing).
    pub fn from_arc(data: Arc<Vec<u8>>) -> Self {
        let len = data.len();
        Bytes { data, offset: 0, len }
    }

    /// Deep-copy a slice into a fresh buffer (counted).
    pub fn copy_from_slice(src: &[u8]) -> Self {
        count_deep_copy();
        Self::from_vec(src.to_vec())
    }

    /// Concatenate parts into one contiguous buffer.  This is the data
    /// plane's single assembly copy (counted once), used when a read spans
    /// multiple blocks; single-part gathers return the part unchanged and
    /// count nothing.
    pub fn gather(parts: &[Bytes]) -> Self {
        match parts {
            [] => Bytes::new(),
            [one] => one.clone(),
            many => {
                count_deep_copy();
                let total = many.iter().map(|p| p.len).sum();
                let mut out = Vec::with_capacity(total);
                for p in many {
                    out.extend_from_slice(p);
                }
                Self::from_vec(out)
            }
        }
    }

    /// Length of the window in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) subslice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for Bytes of {} bytes",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Deep-copy the window out as an owned `Vec` (counted).
    pub fn to_vec(&self) -> Vec<u8> {
        count_deep_copy();
        self.as_slice().to_vec()
    }

    /// The window as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// True when both handles view the same allocation at the same window —
    /// the test for "this buffer moved here without being copied".
    pub fn ptr_eq(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data) && self.offset == other.offset && self.len == other.len
    }

    /// If `next` is the window immediately following this one in the same
    /// allocation, return the combined window — an O(1) rejoin with no copy.
    /// This is what lets a chunked transport slice one buffer into pieces and
    /// reassemble them on the far side without ever touching the bytes.
    pub fn try_join(&self, next: &Bytes) -> Option<Bytes> {
        if Arc::ptr_eq(&self.data, &next.data) && self.offset + self.len == next.offset {
            Some(Bytes {
                data: Arc::clone(&self.data),
                offset: self.offset,
                len: self.len + next.len,
            })
        } else {
            None
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<Arc<Vec<u8>>> for Bytes {
    fn from(v: Arc<Vec<u8>>) -> Bytes {
        Bytes::from_arc(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let head: Vec<u8> = self.as_slice().iter().take(8).copied().collect();
        write!(f, "Bytes({} bytes, {head:?}…)", self.len)
    }
}

impl serde::Serialize for Bytes {
    fn serialize(&self) -> serde::Value {
        serde::Value::Seq(self.as_slice().iter().map(|b| serde::Value::I64(*b as i64)).collect())
    }
}

impl serde::Deserialize for Bytes {
    fn deserialize(v: &serde::Value) -> Result<Bytes, serde::DeError> {
        Ok(Bytes::from_vec(Vec::<u8>::deserialize(v)?))
    }
}

/// Consuming big-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read the next `n` bytes as an owned buffer.
    fn copy_to_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1)[0]
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let b = self.copy_to_bytes(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let b = self.copy_to_bytes(8);
        u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Read a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "copy_to_bytes past end of buffer");
        let (head, tail) = self.split_at(n);
        *self = tail;
        head.to_vec()
    }
}

/// Big-endian appends onto a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer (a thin `Vec<u8>` wrapper here).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copy out as a plain `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Convert into an immutable shared [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.inner)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_and_slice_share_the_allocation() {
        let base = Bytes::from(vec![1u8, 2, 3, 4, 5, 6, 7, 8]);
        let before = deep_copy_count();
        let clone = base.clone();
        let slice = base.slice(2..6);
        assert!(clone.ptr_eq(&base));
        assert!(!slice.ptr_eq(&base));
        assert_eq!(&slice[..], &[3, 4, 5, 6]);
        assert_eq!(slice.slice(1..3), [4u8, 5][..]);
        assert_eq!(deep_copy_count(), before, "clone/slice must not deep-copy");
    }

    #[test]
    fn bytes_deep_copies_are_counted() {
        let base = Bytes::from(vec![9u8; 32]);
        let before = deep_copy_count();
        let _ = base.to_vec();
        let copied = Bytes::copy_from_slice(&base);
        assert_eq!(copied, base);
        assert!(!copied.ptr_eq(&base));
        let gathered = Bytes::gather(&[base.slice(..16), base.slice(16..)]);
        assert_eq!(gathered.len(), 32);
        assert_eq!(deep_copy_count(), before + 3);
        // Single-part gather is a no-op clone.
        assert!(Bytes::gather(std::slice::from_ref(&base)).ptr_eq(&base));
        assert_eq!(deep_copy_count(), before + 3);
    }

    #[test]
    fn try_join_rejoins_contiguous_slices_without_copying() {
        let base = Bytes::from((0u8..64).collect::<Vec<u8>>());
        let before = deep_copy_count();
        let a = base.slice(..20);
        let b = base.slice(20..48);
        let c = base.slice(48..);
        let ab = a.try_join(&b).expect("adjacent slices join");
        let abc = ab.try_join(&c).expect("joined window keeps joining");
        assert!(abc.ptr_eq(&base), "full rejoin is the original window");
        assert_eq!(deep_copy_count(), before, "joins must not copy");
        // Non-adjacent or foreign windows refuse to join.
        assert!(a.try_join(&c).is_none());
        assert!(a.try_join(&Bytes::from(vec![1, 2, 3])).is_none());
        assert!(b.try_join(&a).is_none(), "joins are ordered");
    }

    #[test]
    fn freeze_is_zero_copy() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u32(0xAABBCCDD);
        let before = deep_copy_count();
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], &[0xAA, 0xBB, 0xCC, 0xDD]);
        assert_eq!(deep_copy_count(), before);
    }

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32(0xDEADBEEF);
        buf.put_u8(7);
        buf.put_f32(1.5);
        buf.put_slice(&[1, 2, 3]);
        let bytes = buf.to_vec();
        assert_eq!(bytes[..4], [0xDE, 0xAD, 0xBE, 0xEF]);
        let mut r: &[u8] = &bytes;
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.copy_to_bytes(3), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }
}
