//! Offline stand-in for `bytes`, vendored so the workspace builds without
//! registry access.  Covers the wire-protocol subset this workspace uses:
//! [`Buf`] for `&[u8]` (consuming reads, big-endian like the real crate),
//! [`BufMut`]/[`BytesMut`] for building messages.

/// Consuming big-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read the next `n` bytes as an owned buffer.
    fn copy_to_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1)[0]
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let b = self.copy_to_bytes(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let b = self.copy_to_bytes(8);
        u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Read a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "copy_to_bytes past end of buffer");
        let (head, tail) = self.split_at(n);
        *self = tail;
        head.to_vec()
    }
}

/// Big-endian appends onto a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer (a thin `Vec<u8>` wrapper here).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copy out as a plain `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32(0xDEADBEEF);
        buf.put_u8(7);
        buf.put_f32(1.5);
        buf.put_slice(&[1, 2, 3]);
        let bytes = buf.to_vec();
        assert_eq!(bytes[..4], [0xDE, 0xAD, 0xBE, 0xEF]);
        let mut r: &[u8] = &bytes;
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.copy_to_bytes(3), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }
}
