//! Offline stand-in for `criterion`, vendored so the workspace builds with no
//! registry access.
//!
//! Implements the API surface the `visapult-bench` benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `sample_size`, `b.iter` —
//! with a simple warmup-then-measure harness that prints mean time per
//! iteration (and derived throughput when declared).  No statistics engine,
//! no HTML reports; runs in a bounded time budget so `cargo bench` stays
//! quick.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-iteration workload, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a name and a parameter, like `name/param`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just a parameter (group name supplies the rest).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the measured closure; collects iteration timings.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target_iters: u64,
}

impl Bencher {
    /// Time `f`, running it enough times to fill the sample budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup call.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.target_iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters_done = self.target_iters;
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(&name.to_string(), sample_size, None, f);
        self
    }

    /// Global default sample size.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }
}

/// A group of benchmarks sharing a name prefix, sample size, and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples (shim: scales the iteration budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Shim accepts and ignores measurement-time tuning.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F) {
    // Calibrate: one timed call decides how many iterations fit the budget.
    let mut probe = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        target_iters: 1,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    // Budget ~50ms per benchmark, scaled loosely by sample size, capped.
    let budget = Duration::from_millis(25).max(Duration::from_millis(2) * sample_size as u32);
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        target_iters: iters,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / bencher.iters_done.max(1) as f64;

    let mut line = format!(
        "{label:<52} {:>12}/iter  ({} iters)",
        format_time(mean),
        bencher.iters_done
    );
    match throughput {
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            let _ = write!(line, "  {:>10.1} MB/s", n as f64 / mean / 1e6);
        }
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            let _ = write!(line, "  {:>10.2} Melem/s", n as f64 / mean / 1e6);
        }
        _ => {}
    }
    println!("{line}");
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Entry point running every group, mirroring criterion's macro.  Accepts and
/// ignores harness CLI arguments (`cargo bench` passes `--bench`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; do nothing there.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benches_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        group.throughput(Throughput::Bytes(1024));
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                black_box(x * 2)
            });
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("a", "b").to_string(), "a/b");
        assert_eq!(BenchmarkId::from_parameter(4).to_string(), "4");
    }
}
