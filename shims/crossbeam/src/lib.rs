//! Offline stand-in for `crossbeam`, vendored so the workspace builds without
//! registry access.  Two modules are provided, covering exactly what this
//! workspace uses:
//!
//! * [`channel`] — unbounded MPMC channels (clonable senders *and* receivers,
//!   `recv`/`try_recv`/`recv_timeout`, disconnect semantics) implemented over
//!   `Mutex` + `Condvar`.  Slower than the real lock-free crossbeam under
//!   contention, but semantically equivalent for the pipeline's
//!   one-queue-per-PE pattern.
//! * [`thread`] — `scope`/`spawn` with crossbeam's closure signature (the
//!   closure receives `&Scope`), implemented over `std::thread::scope`.

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// A readiness callback fired *after* the channel lock is released, so a
    /// hook may take other locks (e.g. an executor's) without inversion risk.
    pub type ReadyHook = Arc<dyn Fn() + Send + Sync>;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Fired on every empty→non-empty transition and on sender
        /// disconnect: "a consumer parked on emptiness has a reason to look
        /// again".  Multiple registrations accumulate; all fire.  Hooks are
        /// edge-triggered — a consumer must observe the queue state itself
        /// after registering, before relying on hooks (registration does not
        /// fire for data already queued).
        data_hooks: Vec<ReadyHook>,
        /// Fired when a full bounded channel frees a slot and on receiver
        /// disconnect: "a producer parked on fullness has a reason to look
        /// again".  Same edge-trigger contract as `data_hooks`.
        space_hooks: Vec<ReadyHook>,
        /// Receivers currently blocked in a `ready` wait.  `Condvar::notify`
        /// is a futex syscall even when nobody is waiting, which at fan-out
        /// rates (hundreds of thousands of `try_send`/`try_recv` pairs per
        /// second) dominates the per-message cost — so notifies are skipped
        /// while this is zero, the same sleeper-count gate the real crossbeam
        /// uses.  A waiter increments this under the state mutex *before*
        /// releasing it into the wait, and every notifier re-checks under the
        /// same mutex, so no wakeup can be lost.
        ready_waiters: usize,
        /// Senders currently blocked in a `space` wait (bounded channels).
        space_waiters: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
        /// Signalled when a slot frees up in a bounded channel.
        space: Condvar,
        /// `None` for unbounded channels; `Some(cap)` makes `send` block
        /// while `cap` messages are queued (backpressure).
        capacity: Option<usize>,
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable (any one receiver gets each message).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending into a channel with no receivers left.
    pub struct SendError<T>(pub T);

    /// Error returned when receiving from an empty, sender-less channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Errors from [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity right now.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    /// Errors from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel empty but senders remain.
        Empty,
        /// Channel empty and every sender is gone.
        Disconnected,
    }

    /// Errors from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived in time.
        Timeout,
        /// Channel empty and every sender is gone.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a channel with no receivers")
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a channel with no receivers"),
            }
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => f.write_str("receiving on an empty and disconnected channel"),
            }
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    /// Hooks cloned out of the state so they can be fired after the lock
    /// drops.  The one-hook case (every channel the fan-out planes build) is
    /// kept allocation-free: transitions happen per chunk burst, and a heap
    /// allocation per burst would tax the hot multicast path.
    enum HookFire {
        One(ReadyHook),
        Many(Vec<ReadyHook>),
    }

    fn snapshot_hooks(hooks: &[ReadyHook]) -> Option<HookFire> {
        match hooks {
            [] => None,
            [only] => Some(HookFire::One(Arc::clone(only))),
            many => Some(HookFire::Many(many.to_vec())),
        }
    }

    fn fire_hooks(hooks: Option<HookFire>) {
        match hooks {
            None => {}
            Some(HookFire::One(hook)) => hook(),
            Some(HookFire::Many(hooks)) => {
                for hook in hooks {
                    hook();
                }
            }
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                ready_waiters: 0,
                space_waiters: 0,
                data_hooks: Vec::new(),
                space_hooks: Vec::new(),
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// A bounded MPMC channel: `send` blocks while `cap` messages are queued,
    /// giving producers real backpressure.  A capacity of zero is clamped to
    /// one (this shim has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Queue a message, blocking while a bounded channel is full; fails
        /// only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state.space_waiters += 1;
                        state = self.shared.space.wait(state).unwrap_or_else(|e| e.into_inner());
                        state.space_waiters -= 1;
                    }
                    _ => break,
                }
            }
            let was_empty = state.queue.is_empty();
            state.queue.push_back(value);
            let wake = state.ready_waiters > 0;
            let hooks = if was_empty {
                snapshot_hooks(&state.data_hooks)
            } else {
                None
            };
            drop(state);
            if wake {
                self.shared.ready.notify_one();
            }
            fire_hooks(hooks);
            Ok(())
        }

        /// Queue a message without blocking: a full bounded channel returns
        /// `Full` immediately instead of waiting for space.  This is what a
        /// fan-out plane uses to degrade a slow consumer rather than stall
        /// every other consumer behind it.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.capacity {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            let was_empty = state.queue.is_empty();
            state.queue.push_back(value);
            let wake = state.ready_waiters > 0;
            let hooks = if was_empty {
                snapshot_hooks(&state.data_hooks)
            } else {
                None
            };
            drop(state);
            if wake {
                self.shared.ready.notify_one();
            }
            fire_hooks(hooks);
            Ok(())
        }

        /// Number of queued messages right now (telemetry; racy by nature).
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
        }

        /// True when no message is queued right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Register a hook fired whenever a slot frees up in this bounded
        /// channel (full→not-full transition) or every receiver disconnects.
        /// For a producer that parks when the channel is full: check
        /// fullness *after* registering — hooks are edge-triggered.
        pub fn set_space_hook(&self, hook: ReadyHook) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .space_hooks
                .push(hook);
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            // Wake blocked receivers so they can observe the disconnect.
            // (Future receivers re-check `senders` under the mutex before
            // waiting, so gating on current waiters loses nothing.)
            let disconnected = state.senders == 0;
            let wake = disconnected && state.ready_waiters > 0;
            let hooks = if disconnected {
                snapshot_hooks(&state.data_hooks)
            } else {
                None
            };
            drop(state);
            if wake {
                self.shared.ready.notify_all();
            }
            fire_hooks(hooks);
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                let was_full = self.shared.capacity == Some(state.queue.len());
                if let Some(v) = state.queue.pop_front() {
                    let wake = state.space_waiters > 0;
                    let hooks = if was_full {
                        snapshot_hooks(&state.space_hooks)
                    } else {
                        None
                    };
                    drop(state);
                    if wake {
                        self.shared.space.notify_one();
                    }
                    fire_hooks(hooks);
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state.ready_waiters += 1;
                state = self.shared.ready.wait(state).unwrap_or_else(|e| e.into_inner());
                state.ready_waiters -= 1;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            let was_full = self.shared.capacity == Some(state.queue.len());
            match state.queue.pop_front() {
                Some(v) => {
                    let wake = state.space_waiters > 0;
                    let hooks = if was_full {
                        snapshot_hooks(&state.space_hooks)
                    } else {
                        None
                    };
                    drop(state);
                    if wake {
                        self.shared.space.notify_one();
                    }
                    fire_hooks(hooks);
                    Ok(v)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                let was_full = self.shared.capacity == Some(state.queue.len());
                if let Some(v) = state.queue.pop_front() {
                    let wake = state.space_waiters > 0;
                    let hooks = if was_full {
                        snapshot_hooks(&state.space_hooks)
                    } else {
                        None
                    };
                    drop(state);
                    if wake {
                        self.shared.space.notify_one();
                    }
                    fire_hooks(hooks);
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                state.ready_waiters += 1;
                let (guard, _timeout_result) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
                state.ready_waiters -= 1;
            }
        }

        /// Register a hook fired on every empty→non-empty transition of this
        /// channel and when every sender disconnects.  For a consumer that
        /// parks when the channel is empty: check emptiness *after*
        /// registering — hooks are edge-triggered and do not fire for data
        /// already queued at registration time.
        pub fn set_data_hook(&self, hook: ReadyHook) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .data_hooks
                .push(hook);
        }

        /// True when no message is queued right now.
        pub fn is_empty(&self) -> bool {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .is_empty()
        }

        /// Number of queued messages right now.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
        }

        /// Blocking iterator until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
            // Wake senders blocked on a full bounded channel so they can
            // observe the disconnect instead of waiting forever.  (Future
            // senders re-check `receivers` under the mutex before waiting.)
            let disconnected = state.receivers == 0;
            let wake = disconnected && state.space_waiters > 0;
            let hooks = if disconnected {
                snapshot_hooks(&state.space_hooks)
            } else {
                None
            };
            drop(state);
            if wake {
                self.shared.space.notify_all();
            }
            fire_hooks(hooks);
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn timeout_expires_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        }

        #[test]
        fn bounded_channel_applies_backpressure() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            // The queue is full: a third send must block until a recv frees a
            // slot.  Run it on a helper thread and release it from here.
            let blocked = std::thread::spawn(move || {
                tx.send(3).unwrap();
                tx
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.len(), 2, "blocked sender must not have enqueued yet");
            assert_eq!(rx.recv().unwrap(), 1);
            let tx = blocked.join().unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
            // A full queue with no receivers errors instead of blocking.
            drop(rx);
            assert!(tx.send(4).is_err());
        }

        #[test]
        fn try_send_reports_full_and_disconnected_without_blocking() {
            let (tx, rx) = bounded(1);
            tx.try_send(1u8).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.recv().unwrap(), 1);
            tx.try_send(3).unwrap();
            drop(rx);
            assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
        }

        #[test]
        fn dropping_the_receiver_unblocks_a_full_sender() {
            let (tx, rx) = bounded(1);
            tx.send(1u8).unwrap();
            let blocked = std::thread::spawn(move || tx.send(2).is_err());
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
            assert!(blocked.join().unwrap(), "sender must fail once receivers are gone");
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(10));
            tx.send(7u32).unwrap();
            assert_eq!(h.join().unwrap(), 7);
        }

        #[test]
        fn data_hook_fires_on_empty_transition_and_disconnect_only() {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let (tx, rx) = unbounded();
            let fired = Arc::new(AtomicUsize::new(0));
            let hook_fired = Arc::clone(&fired);
            rx.set_data_hook(Arc::new(move || {
                hook_fired.fetch_add(1, Ordering::SeqCst);
            }));
            tx.send(1u8).unwrap(); // empty → non-empty: fires
            tx.send(2).unwrap(); // already non-empty: silent
            assert_eq!(fired.load(Ordering::SeqCst), 1);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            tx.try_send(3).unwrap(); // drained, so this transitions again
            assert_eq!(fired.load(Ordering::SeqCst), 2);
            assert_eq!(rx.try_recv(), Ok(3));
            drop(tx); // disconnect fires so a parked consumer can observe it
            assert_eq!(fired.load(Ordering::SeqCst), 3);
        }

        #[test]
        fn space_hook_fires_on_full_transition_and_disconnect_only() {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let (tx, rx) = bounded(2);
            let fired = Arc::new(AtomicUsize::new(0));
            let hook_fired = Arc::clone(&fired);
            tx.set_space_hook(Arc::new(move || {
                hook_fired.fetch_add(1, Ordering::SeqCst);
            }));
            tx.send(1u8).unwrap();
            assert_eq!(rx.try_recv(), Ok(1)); // not full: silent
            assert_eq!(fired.load(Ordering::SeqCst), 0);
            tx.send(2).unwrap();
            tx.send(3).unwrap(); // now full
            assert_eq!(rx.try_recv(), Ok(2)); // full → not-full: fires
            assert_eq!(fired.load(Ordering::SeqCst), 1);
            assert_eq!(rx.try_recv(), Ok(3)); // not full anymore: silent
            assert_eq!(fired.load(Ordering::SeqCst), 1);
            drop(rx); // disconnect fires so a parked producer can observe it
            assert_eq!(fired.load(Ordering::SeqCst), 2);
        }

        #[test]
        fn multiple_hooks_all_fire() {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let (tx, rx) = unbounded();
            let fired = Arc::new(AtomicUsize::new(0));
            for _ in 0..3 {
                let hook_fired = Arc::clone(&fired);
                rx.set_data_hook(Arc::new(move || {
                    hook_fired.fetch_add(1, Ordering::SeqCst);
                }));
            }
            tx.send(1u8).unwrap();
            assert_eq!(fired.load(Ordering::SeqCst), 3);
        }
    }
}

pub mod thread {
    //! Crossbeam-style scoped threads over `std::thread::scope`.

    /// A scope handle; crossbeam passes one to `scope` closures and to every
    /// spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries the panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope.  The closure receives the scope
        /// (crossbeam's signature) so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before returning.
    /// `Err` carries a panic payload, as in crossbeam.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let counter = AtomicUsize::new(0);
            let counter_ref = &counter;
            let sum = scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|i| {
                        s.spawn(move |_| {
                            counter_ref.fetch_add(1, Ordering::SeqCst);
                            i * 2
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
            })
            .unwrap();
            assert_eq!(sum, 12);
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        }

        #[test]
        fn panics_surface_as_err() {
            let r = scope(|s| {
                let h = s.spawn(|_| panic!("boom"));
                h.join().expect_err("thread panicked");
                panic!("propagate");
            });
            assert!(r.is_err());
        }
    }
}
