//! Vendored minimal cooperative task executor (this workspace builds fully
//! offline, so no tokio/smol/async-std — and none is needed).
//!
//! The model is deliberately simpler than `std::future`: a [`Task`] is a
//! state machine with a single `poll` method that either finishes
//! ([`Poll::Ready`]), made progress and wants to be polled again soon
//! ([`Poll::Progress`]), or found nothing to do right now ([`Poll::Idle`]).
//! There are no wakers wired into I/O sources — the channels this workspace
//! multiplexes expose non-blocking `try_send`/`try_recv` halves, which is all
//! a poll loop needs.  Instead, the run queue self-paces: while any task
//! reports progress the pool spins the queue hot; once a full sweep of the
//! live tasks comes back idle, workers park on a condvar for a bounded
//! interval (near-zero CPU) before sweeping again.  A `Progress` poll
//! re-arms the hot sweep; a `spawn` wakes one worker to poll just the new
//! task, leaving the idle pile parked.
//!
//! The intended use is N-thousands of cheap cooperatively-scheduled units
//! (session consumers, stripe pumps, pacers) multiplexed over a worker pool
//! whose size is chosen once — OS thread count stays bounded by the pool, not
//! by the unit count.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// What one `poll` of a [`Task`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// The task is finished; it will never be polled again.
    Ready,
    /// The task did useful work and should be polled again promptly.
    Progress,
    /// Nothing to do right now (empty queue, pacing deadline not reached);
    /// the task stays scheduled but a full sweep of idle tasks lets the pool
    /// park briefly.
    Idle,
}

/// A cooperatively scheduled unit of work.
///
/// `poll` must not block: it should move whatever is movable (bounded by its
/// own fairness budget), then return.  Blocking in `poll` stalls one worker
/// of the shared pool — exactly the thread-per-session cost the executor
/// exists to avoid.
pub trait Task: Send {
    /// Advance the state machine as far as it can without blocking.
    fn poll(&mut self) -> Poll;
}

struct HandleState {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Completion handle for a spawned task: `wait` blocks until the task's
/// `poll` returned [`Poll::Ready`].
#[derive(Clone)]
pub struct TaskHandle {
    state: Arc<HandleState>,
}

impl TaskHandle {
    /// True once the task has finished.
    pub fn is_done(&self) -> bool {
        *self.state.done.lock()
    }

    /// Block until the task finishes.
    pub fn wait(&self) {
        let mut done = self.state.done.lock();
        while !*done {
            self.state.cv.wait(&mut done);
        }
    }
}

struct Slot {
    task: Box<dyn Task>,
    handle: Arc<HandleState>,
}

struct State {
    runnable: VecDeque<Slot>,
    /// Spawned tasks that have not yet returned `Ready` (including ones
    /// currently being polled by a worker).
    live: usize,
    /// Consecutive `Idle` polls since the last `Ready`/`Progress` (clamped
    /// to `live`); reaching `live` means one full sweep found no work, so
    /// workers park.  A park that expires un-notified resets it to re-arm
    /// the next sweep.
    unproductive: usize,
    /// Current idle-park interval: starts at [`IDLE_PARK_MIN`] and doubles
    /// per consecutive fully-idle sweep up to [`idle_park_cap`]; any
    /// productive poll resets it.
    park: Duration,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled on spawn, progress, and shutdown.
    work: Condvar,
}

/// The idle-park backoff knob pair.  After a fully idle sweep workers park
/// for the *current* interval, which starts at `IDLE_PARK_MIN` and doubles
/// per consecutive idle sweep up to [`idle_park_cap`]; any `Ready`/
/// `Progress` poll resets it to the minimum.  External producers (a backend
/// thread filling a channel — nothing notifies the pool for those) are thus
/// picked up within microseconds while traffic flows, and the pool still
/// settles to a near-zero-CPU cadence once genuinely quiet.  A flat 200µs
/// park here is what made small async-plane runs pay ~2x per session-frame
/// versus the threaded plane: every cross-thread chunk hand-off ate a full
/// park interval.
const IDLE_PARK_MIN: Duration = Duration::from_micros(5);
/// Upper bound of the idle-park backoff (the old flat park interval) while
/// the pool is small; [`idle_park_cap`] stretches it for large pools.
const IDLE_PARK_MAX: Duration = Duration::from_micros(200);
/// Hard ceiling of the scaled idle-park cap.
const IDLE_PARK_CEIL: Duration = Duration::from_millis(10);

/// The idle-park backoff cap, scaled to the sweep cost.  A full idle sweep
/// costs O(live) mutex hops and polls; parking a flat 200µs between 3ms
/// sweeps of 10k idle session consumers would keep the workers ~95% busy
/// doing nothing — on a box where those cycles belong to admission or
/// delivery work.  Scaling the cap with the live count (~1µs per task,
/// ceiling 10ms) bounds the sweep duty cycle instead, while pools of a few
/// hundred tasks keep the original 200µs staleness bound.
fn idle_park_cap(live: usize) -> Duration {
    IDLE_PARK_MAX
        .max(Duration::from_micros(live as u64))
        .min(IDLE_PARK_CEIL)
}

/// A fixed pool of worker threads multiplexing every spawned [`Task`].
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// A pool of `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Executor {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                runnable: VecDeque::new(),
                live: 0,
                unproductive: 0,
                park: IDLE_PARK_MIN,
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("exec-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { shared, workers }
    }

    /// A pool sized to the machine: available parallelism clamped to 2..=8.
    pub fn with_default_workers() -> Executor {
        Executor::new(default_workers())
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Schedule a task; it starts being polled immediately.
    pub fn spawn(&self, task: Box<dyn Task>) -> TaskHandle {
        self.spawner().spawn(task)
    }

    /// A cheap cloneable handle that can spawn onto this pool — including
    /// from inside a running task's `poll`.  The handle does not keep the
    /// pool alive; spawning after the [`Executor`] dropped panics.
    pub fn spawner(&self) -> Spawner {
        Spawner {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Tasks spawned and not yet finished.
    pub fn live_tasks(&self) -> usize {
        self.shared.state.lock().live
    }
}

/// Spawns tasks onto an [`Executor`]'s pool without owning the pool.
#[derive(Clone)]
pub struct Spawner {
    shared: Arc<Shared>,
}

impl Spawner {
    /// Schedule a task; it starts being polled immediately.
    pub fn spawn(&self, task: Box<dyn Task>) -> TaskHandle {
        let handle = Arc::new(HandleState {
            done: Mutex::new(false),
            cv: Condvar::new(),
        });
        let mut st = self.shared.state.lock();
        assert!(!st.shutdown, "spawn on a shut-down executor");
        st.live += 1;
        // Front of the queue: the next worker polls the *new* task first,
        // not the pile of already-idle ones.  Deliberately no reset of
        // `unproductive` or `park` here — a spawn says nothing about the
        // other tasks' idleness, and resetting the sweep state on every
        // spawn is what used to make a 10k-session admission storm re-sweep
        // the whole idle pile once per admitted session (a quadratic amount
        // of do-nothing polling that time-slices against the admission loop
        // itself).  Notify only when the queue was empty: with tasks already
        // queued the workers are either mid-cycle (they will reach the front
        // of the queue on their own) or parked on an interval that already
        // bounds the pickup latency — waking one per spawn just buys a
        // context-switch round-trip to first-poll a task that, for a freshly
        // admitted session consumer, has nothing to do yet anyway.
        let wake = st.runnable.is_empty();
        st.runnable.push_front(Slot {
            task,
            handle: Arc::clone(&handle),
        });
        drop(st);
        if wake {
            self.shared.work.notify_one();
        }
        TaskHandle { state: handle }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            // Abandon anything still queued (the plane waits for its handles
            // before dropping the pool, so this only fires on panic paths).
            st.runnable.clear();
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The worker-pool size [`Executor::with_default_workers`] uses.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

fn worker_loop(shared: &Shared) {
    loop {
        let mut st = shared.state.lock();
        let slot = loop {
            if st.shutdown {
                return;
            }
            if st.live > 0 && st.unproductive >= st.live {
                // A full sweep of the live tasks produced nothing: park for
                // the current backoff interval, then double it.  `spawn` /
                // `Progress` notify to cut the park short.  Only a park that
                // *expires* re-arms a sweep: nothing notified, so the only
                // reason to poll again is an external producer silently
                // filling a channel, and the park interval bounds how stale
                // that pickup can get.  A notified wake leaves the sweep
                // state alone — the notifier queued something specific
                // (front of the queue for a spawn), so the woken worker
                // polls that without re-sweeping the idle pile.
                let park = st.park;
                st.park = (st.park * 2).min(idle_park_cap(st.live));
                if shared.work.wait_for(&mut st, park).timed_out() {
                    st.unproductive = 0;
                }
                continue;
            }
            match st.runnable.pop_front() {
                Some(slot) => break slot,
                // Every live task is in another worker's hands (or none
                // exist yet); wait for one to come back or for a spawn.
                // This park must back off like the idle sweep does: an
                // executor whose tasks all finished (live == 0) otherwise
                // spins its workers awake at IDLE_PARK_MIN forever, which
                // on a loaded box steals real CPU from the executors that
                // still have work.
                None => {
                    let park = st.park;
                    st.park = (st.park * 2).min(idle_park_cap(st.live));
                    shared.work.wait_for(&mut st, park);
                }
            }
        };
        drop(st);

        let mut slot = slot;
        let outcome = slot.task.poll();

        let mut st = shared.state.lock();
        match outcome {
            Poll::Ready => {
                st.live -= 1;
                st.unproductive = 0;
                st.park = IDLE_PARK_MIN;
                drop(st);
                let mut done = slot.handle.done.lock();
                *done = true;
                slot.handle.cv.notify_all();
                shared.work.notify_one();
            }
            Poll::Progress => {
                st.unproductive = 0;
                st.park = IDLE_PARK_MIN;
                st.runnable.push_back(slot);
                drop(st);
                shared.work.notify_one();
            }
            Poll::Idle => {
                // Clamped so a later spawn (live + 1) always drops the count
                // strictly below the threshold and gets its first poll.
                st.unproductive = (st.unproductive + 1).min(st.live);
                st.runnable.push_back(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counter {
        n: usize,
        left: usize,
        total: Arc<AtomicUsize>,
    }

    impl Task for Counter {
        fn poll(&mut self) -> Poll {
            if self.left == 0 {
                return Poll::Ready;
            }
            self.left -= 1;
            self.total.fetch_add(self.n, Ordering::SeqCst);
            Poll::Progress
        }
    }

    #[test]
    fn tasks_run_to_completion_and_handles_wait() {
        let exec = Executor::new(3);
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<TaskHandle> = (1..=10)
            .map(|n| {
                exec.spawn(Box::new(Counter {
                    n,
                    left: 4,
                    total: Arc::clone(&total),
                }))
            })
            .collect();
        for h in &handles {
            h.wait();
            assert!(h.is_done());
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 55);
        assert_eq!(exec.live_tasks(), 0);
    }

    /// A task that idles until an external flag flips — the executor's parked
    /// sweep must still pick the flip up (no lost-wakeup deadlock).
    struct WaitsForFlag {
        flag: Arc<AtomicUsize>,
    }

    impl Task for WaitsForFlag {
        fn poll(&mut self) -> Poll {
            if self.flag.load(Ordering::SeqCst) == 0 {
                Poll::Idle
            } else {
                Poll::Ready
            }
        }
    }

    #[test]
    fn idle_tasks_park_the_pool_but_external_progress_is_picked_up() {
        let exec = Executor::new(2);
        let flag = Arc::new(AtomicUsize::new(0));
        let handles: Vec<TaskHandle> = (0..8)
            .map(|_| {
                exec.spawn(Box::new(WaitsForFlag {
                    flag: Arc::clone(&flag),
                }))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(exec.live_tasks(), 8, "idle tasks must stay scheduled");
        flag.store(1, Ordering::SeqCst);
        for h in handles {
            h.wait();
        }
        assert_eq!(exec.live_tasks(), 0);
    }

    /// Spawning from inside a task (how the plane materializes a session
    /// consumer at its admission frame) must work without deadlocking.
    struct SpawnsInner {
        spawner: Spawner,
        inner: Arc<Mutex<Option<TaskHandle>>>,
        total: Arc<AtomicUsize>,
    }

    impl Task for SpawnsInner {
        fn poll(&mut self) -> Poll {
            let handle = self.spawner.spawn(Box::new(Counter {
                n: 7,
                left: 1,
                total: Arc::clone(&self.total),
            }));
            *self.inner.lock() = Some(handle);
            Poll::Ready
        }
    }

    #[test]
    fn tasks_can_spawn_tasks_through_a_spawner() {
        let exec = Executor::new(2);
        let total = Arc::new(AtomicUsize::new(0));
        let inner = Arc::new(Mutex::new(None));
        let h = exec.spawn(Box::new(SpawnsInner {
            spawner: exec.spawner(),
            inner: Arc::clone(&inner),
            total: Arc::clone(&total),
        }));
        h.wait();
        let inner = inner.lock().take().expect("inner task spawned");
        inner.wait();
        assert_eq!(total.load(Ordering::SeqCst), 7);
        assert_eq!(exec.live_tasks(), 0);
    }

    #[test]
    fn default_workers_is_bounded() {
        let w = default_workers();
        assert!((2..=8).contains(&w));
        let exec = Executor::with_default_workers();
        assert_eq!(exec.workers(), w);
    }

    #[test]
    fn drop_shuts_down_with_tasks_still_live() {
        let exec = Executor::new(2);
        let flag = Arc::new(AtomicUsize::new(0));
        let _h = exec.spawn(Box::new(WaitsForFlag { flag }));
        drop(exec); // must not hang
    }
}
