//! Vendored minimal cooperative task executor (this workspace builds fully
//! offline, so no tokio/smol/async-std — and none is needed).
//!
//! The model is deliberately simpler than `std::future`: a [`Task`] is a
//! state machine with a single `poll` method that either finishes
//! ([`Poll::Ready`]), made progress and wants to be polled again soon
//! ([`Poll::Progress`]), or found nothing to do right now ([`Poll::Idle`]).
//! There are no wakers wired into I/O sources — the channels this workspace
//! multiplexes expose non-blocking `try_send`/`try_recv` halves, which is all
//! a poll loop needs.  Instead, the run queue self-paces: while any task
//! reports progress the pool spins the queue hot; once a full sweep of the
//! live tasks comes back idle, workers park on a condvar for a short interval
//! (bounded staleness, near-zero CPU) before sweeping again.  `spawn` and
//! every `Progress` re-arm the pool immediately.
//!
//! The intended use is N-thousands of cheap cooperatively-scheduled units
//! (session consumers, stripe pumps, pacers) multiplexed over a worker pool
//! whose size is chosen once — OS thread count stays bounded by the pool, not
//! by the unit count.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// What one `poll` of a [`Task`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// The task is finished; it will never be polled again.
    Ready,
    /// The task did useful work and should be polled again promptly.
    Progress,
    /// Nothing to do right now (empty queue, pacing deadline not reached);
    /// the task stays scheduled but a full sweep of idle tasks lets the pool
    /// park briefly.
    Idle,
}

/// A cooperatively scheduled unit of work.
///
/// `poll` must not block: it should move whatever is movable (bounded by its
/// own fairness budget), then return.  Blocking in `poll` stalls one worker
/// of the shared pool — exactly the thread-per-session cost the executor
/// exists to avoid.
pub trait Task: Send {
    /// Advance the state machine as far as it can without blocking.
    fn poll(&mut self) -> Poll;
}

struct HandleState {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Completion handle for a spawned task: `wait` blocks until the task's
/// `poll` returned [`Poll::Ready`].
#[derive(Clone)]
pub struct TaskHandle {
    state: Arc<HandleState>,
}

impl TaskHandle {
    /// True once the task has finished.
    pub fn is_done(&self) -> bool {
        *self.state.done.lock()
    }

    /// Block until the task finishes.
    pub fn wait(&self) {
        let mut done = self.state.done.lock();
        while !*done {
            self.state.cv.wait(&mut done);
        }
    }
}

struct Slot {
    task: Box<dyn Task>,
    handle: Arc<HandleState>,
}

struct State {
    runnable: VecDeque<Slot>,
    /// Spawned tasks that have not yet returned `Ready` (including ones
    /// currently being polled by a worker).
    live: usize,
    /// Consecutive `Idle` polls since the last `Ready`/`Progress`/`spawn`;
    /// reaching `live` means one full sweep found no work, so workers park.
    unproductive: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled on spawn, progress, and shutdown.
    work: Condvar,
}

/// How long workers park after a fully idle sweep.  External producers (a
/// backend thread filling a channel) are picked up within this bound even
/// though nothing notifies the pool.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// A fixed pool of worker threads multiplexing every spawned [`Task`].
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// A pool of `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Executor {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                runnable: VecDeque::new(),
                live: 0,
                unproductive: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("exec-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { shared, workers }
    }

    /// A pool sized to the machine: available parallelism clamped to 2..=8.
    pub fn with_default_workers() -> Executor {
        Executor::new(default_workers())
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Schedule a task; it starts being polled immediately.
    pub fn spawn(&self, task: Box<dyn Task>) -> TaskHandle {
        self.spawner().spawn(task)
    }

    /// A cheap cloneable handle that can spawn onto this pool — including
    /// from inside a running task's `poll`.  The handle does not keep the
    /// pool alive; spawning after the [`Executor`] dropped panics.
    pub fn spawner(&self) -> Spawner {
        Spawner {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Tasks spawned and not yet finished.
    pub fn live_tasks(&self) -> usize {
        self.shared.state.lock().live
    }
}

/// Spawns tasks onto an [`Executor`]'s pool without owning the pool.
#[derive(Clone)]
pub struct Spawner {
    shared: Arc<Shared>,
}

impl Spawner {
    /// Schedule a task; it starts being polled immediately.
    pub fn spawn(&self, task: Box<dyn Task>) -> TaskHandle {
        let handle = Arc::new(HandleState {
            done: Mutex::new(false),
            cv: Condvar::new(),
        });
        let mut st = self.shared.state.lock();
        assert!(!st.shutdown, "spawn on a shut-down executor");
        st.live += 1;
        st.unproductive = 0;
        st.runnable.push_back(Slot {
            task,
            handle: Arc::clone(&handle),
        });
        drop(st);
        self.shared.work.notify_all();
        TaskHandle { state: handle }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            // Abandon anything still queued (the plane waits for its handles
            // before dropping the pool, so this only fires on panic paths).
            st.runnable.clear();
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The worker-pool size [`Executor::with_default_workers`] uses.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

fn worker_loop(shared: &Shared) {
    loop {
        let mut st = shared.state.lock();
        let slot = loop {
            if st.shutdown {
                return;
            }
            if st.live > 0 && st.unproductive >= st.live {
                // A full sweep of the live tasks produced nothing: park.
                // `spawn`/`Progress` notify to cut the park short; otherwise
                // the timeout bounds how stale external producers can get.
                st.unproductive = 0;
                shared.work.wait_for(&mut st, IDLE_PARK);
                continue;
            }
            match st.runnable.pop_front() {
                Some(slot) => break slot,
                // Every live task is in another worker's hands (or none
                // exist yet); wait for one to come back or for a spawn.
                None => {
                    shared.work.wait_for(&mut st, IDLE_PARK);
                }
            }
        };
        drop(st);

        let mut slot = slot;
        let outcome = slot.task.poll();

        let mut st = shared.state.lock();
        match outcome {
            Poll::Ready => {
                st.live -= 1;
                st.unproductive = 0;
                drop(st);
                let mut done = slot.handle.done.lock();
                *done = true;
                slot.handle.cv.notify_all();
                shared.work.notify_all();
            }
            Poll::Progress => {
                st.unproductive = 0;
                st.runnable.push_back(slot);
                drop(st);
                shared.work.notify_all();
            }
            Poll::Idle => {
                st.unproductive += 1;
                st.runnable.push_back(slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counter {
        n: usize,
        left: usize,
        total: Arc<AtomicUsize>,
    }

    impl Task for Counter {
        fn poll(&mut self) -> Poll {
            if self.left == 0 {
                return Poll::Ready;
            }
            self.left -= 1;
            self.total.fetch_add(self.n, Ordering::SeqCst);
            Poll::Progress
        }
    }

    #[test]
    fn tasks_run_to_completion_and_handles_wait() {
        let exec = Executor::new(3);
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<TaskHandle> = (1..=10)
            .map(|n| {
                exec.spawn(Box::new(Counter {
                    n,
                    left: 4,
                    total: Arc::clone(&total),
                }))
            })
            .collect();
        for h in &handles {
            h.wait();
            assert!(h.is_done());
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 55);
        assert_eq!(exec.live_tasks(), 0);
    }

    /// A task that idles until an external flag flips — the executor's parked
    /// sweep must still pick the flip up (no lost-wakeup deadlock).
    struct WaitsForFlag {
        flag: Arc<AtomicUsize>,
    }

    impl Task for WaitsForFlag {
        fn poll(&mut self) -> Poll {
            if self.flag.load(Ordering::SeqCst) == 0 {
                Poll::Idle
            } else {
                Poll::Ready
            }
        }
    }

    #[test]
    fn idle_tasks_park_the_pool_but_external_progress_is_picked_up() {
        let exec = Executor::new(2);
        let flag = Arc::new(AtomicUsize::new(0));
        let handles: Vec<TaskHandle> = (0..8)
            .map(|_| {
                exec.spawn(Box::new(WaitsForFlag {
                    flag: Arc::clone(&flag),
                }))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(exec.live_tasks(), 8, "idle tasks must stay scheduled");
        flag.store(1, Ordering::SeqCst);
        for h in handles {
            h.wait();
        }
        assert_eq!(exec.live_tasks(), 0);
    }

    /// Spawning from inside a task (how the plane materializes a session
    /// consumer at its admission frame) must work without deadlocking.
    struct SpawnsInner {
        spawner: Spawner,
        inner: Arc<Mutex<Option<TaskHandle>>>,
        total: Arc<AtomicUsize>,
    }

    impl Task for SpawnsInner {
        fn poll(&mut self) -> Poll {
            let handle = self.spawner.spawn(Box::new(Counter {
                n: 7,
                left: 1,
                total: Arc::clone(&self.total),
            }));
            *self.inner.lock() = Some(handle);
            Poll::Ready
        }
    }

    #[test]
    fn tasks_can_spawn_tasks_through_a_spawner() {
        let exec = Executor::new(2);
        let total = Arc::new(AtomicUsize::new(0));
        let inner = Arc::new(Mutex::new(None));
        let h = exec.spawn(Box::new(SpawnsInner {
            spawner: exec.spawner(),
            inner: Arc::clone(&inner),
            total: Arc::clone(&total),
        }));
        h.wait();
        let inner = inner.lock().take().expect("inner task spawned");
        inner.wait();
        assert_eq!(total.load(Ordering::SeqCst), 7);
        assert_eq!(exec.live_tasks(), 0);
    }

    #[test]
    fn default_workers_is_bounded() {
        let w = default_workers();
        assert!((2..=8).contains(&w));
        let exec = Executor::with_default_workers();
        assert_eq!(exec.workers(), w);
    }

    #[test]
    fn drop_shuts_down_with_tasks_still_live() {
        let exec = Executor::new(2);
        let flag = Arc::new(AtomicUsize::new(0));
        let _h = exec.spawn(Box::new(WaitsForFlag { flag }));
        drop(exec); // must not hang
    }
}
