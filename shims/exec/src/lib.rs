//! Vendored minimal cooperative task executor (this workspace builds fully
//! offline, so no tokio/smol/async-std — and none is needed).
//!
//! The model is deliberately simpler than `std::future`: a [`Task`] is a
//! state machine with a single `poll` method that either finishes
//! ([`Poll::Ready`]), made progress and wants to be polled again soon
//! ([`Poll::Progress`]), found nothing to do right now ([`Poll::Idle`]),
//! or is waiting on an external event that will call its [`Waker`]
//! ([`Poll::Blocked`]).  Idle tasks stay in the run queue and are re-swept
//! on a self-pacing backoff; blocked tasks leave the queue entirely and
//! cost nothing until woken.  The run queue self-paces: while any task
//! reports progress the pool spins the queue hot; once a full sweep of the
//! sweepable (live minus blocked) tasks comes back idle, workers park on a
//! condvar for a bounded interval (near-zero CPU) before sweeping again.
//! A `Progress` poll or a `wake` re-arms the hot sweep; a `spawn` wakes one
//! worker to poll just the new task, leaving the idle pile parked.
//!
//! The intended use is N-thousands of cheap cooperatively-scheduled units
//! (session consumers, stripe pumps, pacers) multiplexed over a worker pool
//! whose size is chosen once — OS thread count stays bounded by the pool, not
//! by the unit count.

#![forbid(unsafe_code)]

use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one `poll` of a [`Task`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// The task is finished; it will never be polled again.
    Ready,
    /// The task did useful work and should be polled again promptly.
    Progress,
    /// Nothing to do right now (empty queue, pacing deadline not reached);
    /// the task stays scheduled but a full sweep of idle tasks lets the pool
    /// park briefly.
    Idle,
    /// Nothing to do until an external event calls this task's [`Waker`]
    /// (registered via [`Task::bind`]).  The task is removed from the run
    /// queue entirely — zero poll/lock cost while blocked — and re-queued by
    /// the next `wake`.  A task must only return `Blocked` if every
    /// condition it is waiting on is guaranteed to fire its waker; a task
    /// with a time-based deadline (pacing) must use `Idle` instead, because
    /// nothing wakes a clock.
    Blocked,
}

/// A cooperatively scheduled unit of work.
///
/// `poll` must not block: it should move whatever is movable (bounded by its
/// own fairness budget), then return.  Blocking in `poll` stalls one worker
/// of the shared pool — exactly the thread-per-session cost the executor
/// exists to avoid.
pub trait Task: Send {
    /// Advance the state machine as far as it can without blocking.
    fn poll(&mut self) -> Poll;

    /// Called exactly once, at spawn time, before the first `poll`.  A task
    /// that intends to return [`Poll::Blocked`] registers `waker` with its
    /// event sources here (e.g. a channel's data hook); tasks that never
    /// block ignore it.  Because binding happens before the task is first
    /// queued, a source that becomes ready between `bind` and the first
    /// `poll` produces at worst a pending wake, never a lost one.
    fn bind(&mut self, waker: Waker) {
        let _ = waker;
    }
}

/// Re-schedules one specific [`Poll::Blocked`] task.  Handed to the task via
/// [`Task::bind`]; clones are cheap and callable from any thread (typically
/// from a channel's empty→non-empty transition hook).
///
/// Wakes are never lost: if the task is currently mid-poll (or still in the
/// run queue) when `wake` fires, the wake is recorded as *pending* and the
/// task's next `Blocked` return converts into an immediate re-queue instead
/// of parking.  Waking a finished task or a shut-down executor is a no-op.
#[derive(Clone)]
pub struct Waker {
    shared: Arc<Shared>,
    id: u64,
}

impl Waker {
    /// Move the task back onto the run queue (or mark the wake pending if
    /// the task is not currently parked).
    pub fn wake(&self) {
        let mut st = self.shared.state.lock();
        if st.shutdown {
            return;
        }
        self.shared.wakes.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = st.parked.remove(&self.id) {
            // A wake is proof of new work: re-arm the hot sweep so parked
            // workers pick it up immediately instead of on backoff expiry.
            // Notify only when the queue was empty — the same gate `spawn`
            // uses: with tasks already queued the workers are either mid-
            // cycle or parked on a bounded interval, and a wake storm (a
            // fan-out burst re-queueing thousands of consumers) must not pay
            // a futex syscall per task.
            let notify = st.runnable.is_empty();
            st.runnable.push_back(slot);
            st.unproductive = 0;
            st.park = IDLE_PARK_MIN;
            self.shared.observe_queue_depth(st.runnable.len());
            drop(st);
            if notify {
                self.shared.work.notify_one();
            }
        } else {
            st.pending_wakes.insert(self.id);
        }
    }
}

struct HandleState {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Completion handle for a spawned task: `wait` blocks until the task's
/// `poll` returned [`Poll::Ready`].
#[derive(Clone)]
pub struct TaskHandle {
    state: Arc<HandleState>,
}

impl TaskHandle {
    /// True once the task has finished.
    pub fn is_done(&self) -> bool {
        *self.state.done.lock()
    }

    /// Block until the task finishes.
    pub fn wait(&self) {
        let mut done = self.state.done.lock();
        while !*done {
            self.state.cv.wait(&mut done);
        }
    }
}

struct Slot {
    id: u64,
    task: Box<dyn Task>,
    handle: Arc<HandleState>,
}

struct State {
    runnable: VecDeque<Slot>,
    /// Tasks that returned [`Poll::Blocked`]: off the run queue, keyed by
    /// task id, costing nothing until their [`Waker`] fires.
    parked: HashMap<u64, Slot>,
    /// Wakes that arrived while their task was runnable or mid-poll; the
    /// task's next `Blocked` return re-queues instead of parking.  This
    /// closes the classic race where a channel fills between a task's last
    /// emptiness check and its `Blocked` return.
    pending_wakes: HashSet<u64>,
    /// Monotonic task-id source for [`Waker`] addressing.
    next_id: u64,
    /// Spawned tasks that have not yet returned `Ready` (including blocked
    /// ones and ones currently being polled by a worker).
    live: usize,
    /// Consecutive `Idle` polls since the last `Ready`/`Progress`/wake
    /// (clamped to the sweepable count, i.e. live minus parked); reaching it
    /// means one full sweep found no work, so workers park.  A park that
    /// expires un-notified resets it to re-arm the next sweep.
    unproductive: usize,
    /// Current idle-park interval: starts at [`IDLE_PARK_MIN`] and doubles
    /// per consecutive fully-idle sweep up to [`idle_park_cap`]; any
    /// productive poll resets it.
    park: Duration,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled on spawn, progress, and shutdown.
    work: Condvar,
    /// Pool-wide introspection counters (see [`ExecutorStats`]); relaxed
    /// atomics bumped off the hot paths' existing lock round-trips.
    wakes: AtomicU64,
    spawns: AtomicU64,
    run_queue_high_water: AtomicU64,
}

impl Shared {
    fn observe_queue_depth(&self, depth: usize) {
        self.run_queue_high_water.fetch_max(depth as u64, Ordering::Relaxed);
    }
}

/// Introspection counters for one worker thread of the pool.  The cells are
/// owned by their worker (other threads only read), so the relaxed atomic
/// stores cost nothing contended.
#[derive(Debug, Default)]
struct WorkerCell {
    polls: AtomicU64,
    poll_ns: AtomicU64,
    parks: AtomicU64,
    idle_sweeps: AtomicU64,
}

/// A snapshot of one worker's introspection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Task polls this worker performed.
    pub polls: u64,
    /// Nanoseconds spent inside `Task::poll` (timed per claimed batch, so
    /// the per-poll cost is `poll_ns / polls` with batch-level resolution).
    pub poll_ns: u64,
    /// Times this worker parked on the condvar (idle backoff or empty
    /// queue).
    pub parks: u64,
    /// Fully idle sweeps this worker observed (every sweepable task
    /// reported `Idle` since the last productive poll).
    pub idle_sweeps: u64,
}

/// A snapshot of the pool's introspection counters: what the telemetry plane
/// reads to explain executor behavior (park/wake storms, queue depth, poll
/// cost) without attaching a profiler.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Per-worker counters, indexed by worker thread.
    pub workers: Vec<WorkerStats>,
    /// `Waker::wake` invocations (including ones recorded as pending).
    pub wakes: u64,
    /// Tasks spawned onto the pool.
    pub spawns: u64,
    /// Deepest the run queue ever got.
    pub run_queue_high_water: u64,
}

impl ExecutorStats {
    /// Sum of polls across workers.
    pub fn total_polls(&self) -> u64 {
        self.workers.iter().map(|w| w.polls).sum()
    }

    /// Sum of poll nanoseconds across workers.
    pub fn total_poll_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.poll_ns).sum()
    }

    /// Sum of parks across workers.
    pub fn total_parks(&self) -> u64 {
        self.workers.iter().map(|w| w.parks).sum()
    }

    /// Sum of fully idle sweeps across workers.
    pub fn total_idle_sweeps(&self) -> u64 {
        self.workers.iter().map(|w| w.idle_sweeps).sum()
    }

    /// Fold another pool's counters into this one (how the sharded plane
    /// aggregates its per-shard executors).
    pub fn merge(&mut self, other: &ExecutorStats) {
        self.workers.extend(other.workers.iter().copied());
        self.wakes += other.wakes;
        self.spawns += other.spawns;
        self.run_queue_high_water = self.run_queue_high_water.max(other.run_queue_high_water);
    }
}

/// The idle-park backoff knob pair.  After a fully idle sweep workers park
/// for the *current* interval, which starts at `IDLE_PARK_MIN` and doubles
/// per consecutive idle sweep up to [`idle_park_cap`]; any `Ready`/
/// `Progress` poll resets it to the minimum.  External producers (a backend
/// thread filling a channel — nothing notifies the pool for those) are thus
/// picked up within microseconds while traffic flows, and the pool still
/// settles to a near-zero-CPU cadence once genuinely quiet.  A flat 200µs
/// park here is what made small async-plane runs pay ~2x per session-frame
/// versus the threaded plane: every cross-thread chunk hand-off ate a full
/// park interval.
const IDLE_PARK_MIN: Duration = Duration::from_micros(5);
/// Upper bound of the idle-park backoff (the old flat park interval) while
/// the pool is small; [`idle_park_cap`] stretches it for large pools.
const IDLE_PARK_MAX: Duration = Duration::from_micros(200);
/// Hard ceiling of the scaled idle-park cap.
const IDLE_PARK_CEIL: Duration = Duration::from_millis(10);

/// The idle-park backoff cap, scaled to the sweep cost.  A full idle sweep
/// costs O(live) mutex hops and polls; parking a flat 200µs between 3ms
/// sweeps of 10k idle session consumers would keep the workers ~95% busy
/// doing nothing — on a box where those cycles belong to admission or
/// delivery work.  Scaling the cap with the live count (~1µs per task,
/// ceiling 10ms) bounds the sweep duty cycle instead, while pools of a few
/// hundred tasks keep the original 200µs staleness bound.
fn idle_park_cap(live: usize) -> Duration {
    IDLE_PARK_MAX
        .max(Duration::from_micros(live as u64))
        .min(IDLE_PARK_CEIL)
}

/// A fixed pool of worker threads multiplexing every spawned [`Task`].
pub struct Executor {
    shared: Arc<Shared>,
    cells: Vec<Arc<WorkerCell>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// A pool of `workers` threads (clamped to at least one).
    pub fn new(workers: usize) -> Executor {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                runnable: VecDeque::new(),
                parked: HashMap::new(),
                pending_wakes: HashSet::new(),
                next_id: 0,
                live: 0,
                unproductive: 0,
                park: IDLE_PARK_MIN,
                shutdown: false,
            }),
            work: Condvar::new(),
            wakes: AtomicU64::new(0),
            spawns: AtomicU64::new(0),
            run_queue_high_water: AtomicU64::new(0),
        });
        let cells: Vec<Arc<WorkerCell>> = (0..workers.max(1)).map(|_| Arc::new(WorkerCell::default())).collect();
        let workers = cells
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let shared = Arc::clone(&shared);
                let cell = Arc::clone(cell);
                std::thread::Builder::new()
                    .name(format!("exec-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &cell))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { shared, cells, workers }
    }

    /// A pool sized to the machine: available parallelism clamped to 2..=8.
    pub fn with_default_workers() -> Executor {
        Executor::new(default_workers())
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Schedule a task; it starts being polled immediately.
    pub fn spawn(&self, task: Box<dyn Task>) -> TaskHandle {
        self.spawner().spawn(task)
    }

    /// A cheap cloneable handle that can spawn onto this pool — including
    /// from inside a running task's `poll`.  The handle does not keep the
    /// pool alive; spawning after the [`Executor`] dropped panics.
    pub fn spawner(&self) -> Spawner {
        Spawner {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Tasks spawned and not yet finished.
    pub fn live_tasks(&self) -> usize {
        self.shared.state.lock().live
    }

    /// A snapshot of the pool's introspection counters.  Safe to call while
    /// the pool runs (relaxed reads of worker-owned cells); typically read
    /// once after the workload drains, before dropping the pool.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            workers: self
                .cells
                .iter()
                .map(|c| WorkerStats {
                    polls: c.polls.load(Ordering::Relaxed),
                    poll_ns: c.poll_ns.load(Ordering::Relaxed),
                    parks: c.parks.load(Ordering::Relaxed),
                    idle_sweeps: c.idle_sweeps.load(Ordering::Relaxed),
                })
                .collect(),
            wakes: self.shared.wakes.load(Ordering::Relaxed),
            spawns: self.shared.spawns.load(Ordering::Relaxed),
            run_queue_high_water: self.shared.run_queue_high_water.load(Ordering::Relaxed),
        }
    }
}

/// Spawns tasks onto an [`Executor`]'s pool without owning the pool.
#[derive(Clone)]
pub struct Spawner {
    shared: Arc<Shared>,
}

impl Spawner {
    /// Schedule a task; it starts being polled immediately.  [`Task::bind`]
    /// runs here, before the task is queued, so waker registration can never
    /// miss an event that post-dates the task's first view of its sources.
    pub fn spawn(&self, mut task: Box<dyn Task>) -> TaskHandle {
        let handle = Arc::new(HandleState {
            done: Mutex::new(false),
            cv: Condvar::new(),
        });
        let id = {
            let mut st = self.shared.state.lock();
            assert!(!st.shutdown, "spawn on a shut-down executor");
            let id = st.next_id;
            st.next_id += 1;
            id
        };
        task.bind(Waker {
            shared: Arc::clone(&self.shared),
            id,
        });
        let mut st = self.shared.state.lock();
        assert!(!st.shutdown, "spawn on a shut-down executor");
        st.live += 1;
        // Front of the queue: the next worker polls the *new* task first,
        // not the pile of already-idle ones.  Deliberately no reset of
        // `unproductive` or `park` here — a spawn says nothing about the
        // other tasks' idleness, and resetting the sweep state on every
        // spawn is what used to make a 10k-session admission storm re-sweep
        // the whole idle pile once per admitted session (a quadratic amount
        // of do-nothing polling that time-slices against the admission loop
        // itself).  Notify only when the queue was empty: with tasks already
        // queued the workers are either mid-cycle (they will reach the front
        // of the queue on their own) or parked on an interval that already
        // bounds the pickup latency — waking one per spawn just buys a
        // context-switch round-trip to first-poll a task that, for a freshly
        // admitted session consumer, has nothing to do yet anyway.
        let wake = st.runnable.is_empty();
        st.runnable.push_front(Slot {
            id,
            task,
            handle: Arc::clone(&handle),
        });
        self.shared.spawns.fetch_add(1, Ordering::Relaxed);
        self.shared.observe_queue_depth(st.runnable.len());
        drop(st);
        if wake {
            self.shared.work.notify_one();
        }
        TaskHandle { state: handle }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            // Abandon anything still queued or blocked (the plane waits for
            // its handles before dropping the pool, so this only fires on
            // panic paths).  Late `wake` calls see `shutdown` and no-op.
            st.runnable.clear();
            st.parked.clear();
            st.pending_wakes.clear();
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The worker-pool size [`Executor::with_default_workers`] uses.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

/// Most runnable slots one worker claims per lock round-trip.  A fan-out
/// wave re-queues thousands of consumers at once; popping and settling them
/// one by one makes every poll pay two contended lock acquisitions, which on
/// a small machine costs more than the polls themselves.  Batching amortizes
/// the lock while the `/4` divisor below keeps short queues spread across
/// workers instead of claimed whole by one.
const POLL_BATCH: usize = 16;

fn worker_loop(shared: &Shared, cell: &WorkerCell) {
    let mut batch: Vec<Slot> = Vec::with_capacity(POLL_BATCH);
    let mut settled: Vec<(Slot, Poll)> = Vec::with_capacity(POLL_BATCH);
    let mut finished: Vec<Slot> = Vec::new();
    loop {
        let mut st = shared.state.lock();
        loop {
            if st.shutdown {
                return;
            }
            // Blocked tasks are not sweepable: a sweep is "poll everything
            // that might have work", and a blocked task by definition has
            // none until its waker fires.
            let sweepable = st.live - st.parked.len();
            if sweepable > 0 && st.unproductive >= sweepable {
                // A full sweep of the live tasks produced nothing: park for
                // the current backoff interval, then double it.  `spawn` /
                // `Progress` notify to cut the park short.  Only a park that
                // *expires* re-arms a sweep: nothing notified, so the only
                // reason to poll again is an external producer silently
                // filling a channel, and the park interval bounds how stale
                // that pickup can get.  A notified wake leaves the sweep
                // state alone — the notifier queued something specific
                // (front of the queue for a spawn), so the woken worker
                // polls that without re-sweeping the idle pile.
                let park = st.park;
                st.park = (st.park * 2).min(idle_park_cap(st.live));
                cell.idle_sweeps.fetch_add(1, Ordering::Relaxed);
                cell.parks.fetch_add(1, Ordering::Relaxed);
                if shared.work.wait_for(&mut st, park).timed_out() {
                    st.unproductive = 0;
                }
                continue;
            }
            if st.runnable.is_empty() {
                // Every live task is in another worker's hands (or none
                // exist yet); wait for one to come back or for a spawn.
                // This park must back off like the idle sweep does: an
                // executor whose tasks all finished (live == 0) otherwise
                // spins its workers awake at IDLE_PARK_MIN forever, which
                // on a loaded box steals real CPU from the executors that
                // still have work.
                let park = st.park;
                st.park = (st.park * 2).min(idle_park_cap(st.live));
                cell.parks.fetch_add(1, Ordering::Relaxed);
                shared.work.wait_for(&mut st, park);
                continue;
            }
            // Claim a run of the queue: deep queues amortize the lock over
            // up to `POLL_BATCH` polls, short ones stay spread across the
            // pool (each worker takes at most a quarter of what's queued).
            let take = (st.runnable.len() / 4).clamp(1, POLL_BATCH);
            batch.extend(st.runnable.drain(..take));
            break;
        }
        drop(st);

        // One Instant pair per claimed batch (not per poll): the timer cost
        // amortizes over up to POLL_BATCH polls, keeping the instrumentation
        // invisible next to the polls themselves.
        let started = Instant::now();
        let polled = batch.len() as u64;
        for mut slot in batch.drain(..) {
            let outcome = slot.task.poll();
            settled.push((slot, outcome));
        }
        cell.polls.fetch_add(polled, Ordering::Relaxed);
        cell.poll_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);

        let mut st = shared.state.lock();
        let mut notify = false;
        for (slot, outcome) in settled.drain(..) {
            match outcome {
                Poll::Ready => {
                    st.live -= 1;
                    st.unproductive = 0;
                    st.park = IDLE_PARK_MIN;
                    // A source hook may outlive the task and keep firing
                    // wakes; clearing here keeps `pending_wakes` from
                    // accreting ids that nothing will ever consume.
                    st.pending_wakes.remove(&slot.id);
                    notify = true;
                    // Handle completion signals after the pool lock drops.
                    finished.push(slot);
                }
                Poll::Progress => {
                    st.unproductive = 0;
                    st.park = IDLE_PARK_MIN;
                    st.runnable.push_back(slot);
                    notify = true;
                }
                Poll::Idle => {
                    // Clamped so a later spawn or wake (sweepable + 1)
                    // always drops the count strictly below the threshold
                    // and gets its first poll.
                    let sweepable = st.live - st.parked.len();
                    st.unproductive = (st.unproductive + 1).min(sweepable);
                    st.runnable.push_back(slot);
                }
                Poll::Blocked => {
                    // The wake-before-block race: the source fired mid-poll
                    // (after this task last looked at it).  Treat that as an
                    // immediate wake instead of parking on an event that
                    // already happened.
                    if st.pending_wakes.remove(&slot.id) {
                        st.runnable.push_back(slot);
                    } else {
                        st.parked.insert(slot.id, slot);
                    }
                }
            }
        }
        shared.observe_queue_depth(st.runnable.len());
        drop(st);
        for slot in finished.drain(..) {
            let mut done = slot.handle.done.lock();
            *done = true;
            slot.handle.cv.notify_all();
        }
        if notify {
            shared.work.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counter {
        n: usize,
        left: usize,
        total: Arc<AtomicUsize>,
    }

    impl Task for Counter {
        fn poll(&mut self) -> Poll {
            if self.left == 0 {
                return Poll::Ready;
            }
            self.left -= 1;
            self.total.fetch_add(self.n, Ordering::SeqCst);
            Poll::Progress
        }
    }

    #[test]
    fn tasks_run_to_completion_and_handles_wait() {
        let exec = Executor::new(3);
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<TaskHandle> = (1..=10)
            .map(|n| {
                exec.spawn(Box::new(Counter {
                    n,
                    left: 4,
                    total: Arc::clone(&total),
                }))
            })
            .collect();
        for h in &handles {
            h.wait();
            assert!(h.is_done());
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 55);
        assert_eq!(exec.live_tasks(), 0);
    }

    /// A task that idles until an external flag flips — the executor's parked
    /// sweep must still pick the flip up (no lost-wakeup deadlock).
    struct WaitsForFlag {
        flag: Arc<AtomicUsize>,
    }

    impl Task for WaitsForFlag {
        fn poll(&mut self) -> Poll {
            if self.flag.load(Ordering::SeqCst) == 0 {
                Poll::Idle
            } else {
                Poll::Ready
            }
        }
    }

    #[test]
    fn idle_tasks_park_the_pool_but_external_progress_is_picked_up() {
        let exec = Executor::new(2);
        let flag = Arc::new(AtomicUsize::new(0));
        let handles: Vec<TaskHandle> = (0..8)
            .map(|_| {
                exec.spawn(Box::new(WaitsForFlag {
                    flag: Arc::clone(&flag),
                }))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(exec.live_tasks(), 8, "idle tasks must stay scheduled");
        flag.store(1, Ordering::SeqCst);
        for h in handles {
            h.wait();
        }
        assert_eq!(exec.live_tasks(), 0);
    }

    /// Spawning from inside a task (how the plane materializes a session
    /// consumer at its admission frame) must work without deadlocking.
    struct SpawnsInner {
        spawner: Spawner,
        inner: Arc<Mutex<Option<TaskHandle>>>,
        total: Arc<AtomicUsize>,
    }

    impl Task for SpawnsInner {
        fn poll(&mut self) -> Poll {
            let handle = self.spawner.spawn(Box::new(Counter {
                n: 7,
                left: 1,
                total: Arc::clone(&self.total),
            }));
            *self.inner.lock() = Some(handle);
            Poll::Ready
        }
    }

    #[test]
    fn tasks_can_spawn_tasks_through_a_spawner() {
        let exec = Executor::new(2);
        let total = Arc::new(AtomicUsize::new(0));
        let inner = Arc::new(Mutex::new(None));
        let h = exec.spawn(Box::new(SpawnsInner {
            spawner: exec.spawner(),
            inner: Arc::clone(&inner),
            total: Arc::clone(&total),
        }));
        h.wait();
        let inner = inner.lock().take().expect("inner task spawned");
        inner.wait();
        assert_eq!(total.load(Ordering::SeqCst), 7);
        assert_eq!(exec.live_tasks(), 0);
    }

    #[test]
    fn default_workers_is_bounded() {
        let w = default_workers();
        assert!((2..=8).contains(&w));
        let exec = Executor::with_default_workers();
        assert_eq!(exec.workers(), w);
    }

    #[test]
    fn stats_reflect_pool_activity() {
        let exec = Executor::new(2);
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<TaskHandle> = (0..6)
            .map(|_| {
                exec.spawn(Box::new(Counter {
                    n: 1,
                    left: 3,
                    total: Arc::clone(&total),
                }))
            })
            .collect();
        for h in handles {
            h.wait();
        }
        let stats = exec.stats();
        assert_eq!(stats.workers.len(), 2);
        assert_eq!(stats.spawns, 6);
        // 6 tasks x (3 Progress + 1 Ready) polls.
        assert_eq!(stats.total_polls(), 24);
        assert!(stats.total_poll_ns() > 0);
        assert!(stats.run_queue_high_water >= 1);
        let mut merged = ExecutorStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.spawns, 12);
        assert_eq!(merged.workers.len(), 4);
        assert_eq!(merged.run_queue_high_water, stats.run_queue_high_water);
    }

    #[test]
    fn drop_shuts_down_with_tasks_still_live() {
        let exec = Executor::new(2);
        let flag = Arc::new(AtomicUsize::new(0));
        let _h = exec.spawn(Box::new(WaitsForFlag { flag }));
        drop(exec); // must not hang
    }

    /// A task that blocks until its waker fires, then counts the events it
    /// was woken for and finishes after `target` of them.
    struct BlocksForEvents {
        waker: Option<Waker>,
        events: Arc<AtomicUsize>,
        seen: usize,
        target: usize,
        polls: Arc<AtomicUsize>,
    }

    impl Task for BlocksForEvents {
        fn poll(&mut self) -> Poll {
            self.polls.fetch_add(1, Ordering::SeqCst);
            let available = self.events.load(Ordering::SeqCst);
            if available > self.seen {
                self.seen = available;
                if self.seen >= self.target {
                    return Poll::Ready;
                }
                return Poll::Progress;
            }
            Poll::Blocked
        }

        fn bind(&mut self, waker: Waker) {
            self.waker = Some(waker);
        }
    }

    #[test]
    fn blocked_tasks_cost_no_polls_and_wake_on_demand() {
        let exec = Executor::new(2);
        let events = Arc::new(AtomicUsize::new(0));
        let polls = Arc::new(AtomicUsize::new(0));
        let waker = Arc::new(Mutex::new(None::<Waker>));
        // Capture the waker at bind time through a shared slot so the test
        // can fire it from outside the pool.
        struct Stash {
            inner: BlocksForEvents,
            slot: Arc<Mutex<Option<Waker>>>,
        }
        impl Task for Stash {
            fn poll(&mut self) -> Poll {
                self.inner.poll()
            }
            fn bind(&mut self, waker: Waker) {
                *self.slot.lock() = Some(waker.clone());
                self.inner.bind(waker);
            }
        }
        let h = exec.spawn(Box::new(Stash {
            inner: BlocksForEvents {
                waker: None,
                events: Arc::clone(&events),
                seen: 0,
                target: 3,
                polls: Arc::clone(&polls),
            },
            slot: Arc::clone(&waker),
        }));
        let waker = waker.lock().clone().expect("bind ran at spawn");
        // Let the task block, then verify no polls accrue while blocked.
        std::thread::sleep(Duration::from_millis(5));
        let blocked_polls = polls.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            polls.load(Ordering::SeqCst),
            blocked_polls,
            "a blocked task must not be swept"
        );
        for _ in 0..3 {
            events.fetch_add(1, Ordering::SeqCst);
            waker.wake();
            std::thread::sleep(Duration::from_millis(2));
        }
        h.wait();
        assert_eq!(exec.live_tasks(), 0);
    }

    /// The wake-before-block race: firing the waker while the task is
    /// runnable (never yet parked) must convert its next `Blocked` into a
    /// re-queue, not a lost wakeup.
    #[test]
    fn wake_before_block_is_not_lost() {
        let exec = Executor::new(1);
        let events = Arc::new(AtomicUsize::new(0));
        let polls = Arc::new(AtomicUsize::new(0));
        let waker = Arc::new(Mutex::new(None::<Waker>));
        struct Stash {
            inner: BlocksForEvents,
            slot: Arc<Mutex<Option<Waker>>>,
        }
        impl Task for Stash {
            fn poll(&mut self) -> Poll {
                self.inner.poll()
            }
            fn bind(&mut self, waker: Waker) {
                *self.slot.lock() = Some(waker.clone());
                self.inner.bind(waker);
            }
        }
        let h = exec.spawn(Box::new(Stash {
            inner: BlocksForEvents {
                waker: None,
                events: Arc::clone(&events),
                seen: 0,
                target: 1,
                polls: Arc::clone(&polls),
            },
            slot: Arc::clone(&waker),
        }));
        let waker = waker.lock().clone().expect("bind ran at spawn");
        // Publish the event and wake *immediately* — likely before the task's
        // first poll ever runs, exercising the pending-wake path.
        events.fetch_add(1, Ordering::SeqCst);
        waker.wake();
        h.wait();
        assert_eq!(exec.live_tasks(), 0);
    }

    #[test]
    fn wake_after_shutdown_is_a_noop() {
        let exec = Executor::new(1);
        let waker = Arc::new(Mutex::new(None::<Waker>));
        struct BlockForever {
            slot: Arc<Mutex<Option<Waker>>>,
        }
        impl Task for BlockForever {
            fn poll(&mut self) -> Poll {
                Poll::Blocked
            }
            fn bind(&mut self, waker: Waker) {
                *self.slot.lock() = Some(waker);
            }
        }
        let _h = exec.spawn(Box::new(BlockForever {
            slot: Arc::clone(&waker),
        }));
        std::thread::sleep(Duration::from_millis(5));
        let waker = waker.lock().clone().expect("bind ran at spawn");
        drop(exec);
        waker.wake(); // must not panic or hang
    }
}
