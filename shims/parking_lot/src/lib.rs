//! Offline stand-in for `parking_lot`, vendored so the workspace builds with
//! no registry access.
//!
//! API-compatible for this workspace's uses: `lock()`/`read()`/`write()`
//! return guards directly (no `Result`), and `Condvar::wait` takes the guard
//! by `&mut`.  Built on `std::sync`; a poisoned std lock is recovered rather
//! than propagated, matching parking_lot's no-poisoning behaviour.
//!
//! With `--features lockdep` every Mutex and RwLock is threaded through a
//! runtime lock-order tracker (the `lockdep` module): per-thread held-lock stacks
//! feed a process-wide acquisition-order graph, and any acquisition that
//! closes an ordering cycle — or re-enters a lock the thread already holds —
//! panics with both conflicting chains instead of deadlocking silently.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

#[cfg(feature = "lockdep")]
pub mod lockdep;

/// A mutex whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lockdep")]
    tag: lockdep::LockTag,
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`].  Wraps the std guard in an `Option` so [`Condvar`]
/// can temporarily take ownership during `wait`.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockdep")]
    tag_id: u64,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lockdep")]
            tag: lockdep::LockTag::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let tag_id = {
            let id = self.tag.id();
            lockdep::before_blocking_acquire(id);
            id
        };
        let inner = Some(self.inner.lock().unwrap_or_else(|e| e.into_inner()));
        #[cfg(feature = "lockdep")]
        lockdep::after_acquire(tag_id);
        MutexGuard {
            #[cfg(feature = "lockdep")]
            tag_id,
            inner,
        }
    }

    /// Try to acquire the lock without blocking.
    ///
    /// Under lockdep the hold is recorded but no ordering edge is: a
    /// non-blocking probe cannot complete a deadlock cycle, and
    /// deadlock-avoidance code legitimately probes in "wrong" order.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lockdep")]
        let tag_id = {
            let id = self.tag.id();
            lockdep::after_acquire(id);
            id
        };
        Some(MutexGuard {
            #[cfg(feature = "lockdep")]
            tag_id,
            inner,
        })
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Name this lock in lockdep cycle reports.  No-op without the feature,
    /// so callers need no `cfg` of their own.
    pub fn lockdep_label(&self, label: &str) {
        #[cfg(feature = "lockdep")]
        lockdep::set_label(self.tag.id(), label.to_string());
        #[cfg(not(feature = "lockdep"))]
        let _ = label;
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present outside Condvar::wait")
    }
}

#[cfg(feature = "lockdep")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        lockdep::on_release(self.tag_id);
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lockdep")]
    tag: lockdep::LockTag,
    inner: std::sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockdep")]
    tag_id: u64,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockdep")]
    tag_id: u64,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// A new unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lockdep")]
            tag: lockdep::LockTag::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking.
    ///
    /// Lockdep models readers and the writer as one graph node: read-read
    /// inversion alone cannot deadlock, but one writer in the mix makes it
    /// real, so the conservative collapse is the classic lockdep trade.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let tag_id = {
            let id = self.tag.id();
            lockdep::before_blocking_acquire(id);
            id
        };
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lockdep")]
        lockdep::after_acquire(tag_id);
        RwLockReadGuard {
            #[cfg(feature = "lockdep")]
            tag_id,
            inner,
        }
    }

    /// Acquire exclusive access, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let tag_id = {
            let id = self.tag.id();
            lockdep::before_blocking_acquire(id);
            id
        };
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lockdep")]
        lockdep::after_acquire(tag_id);
        RwLockWriteGuard {
            #[cfg(feature = "lockdep")]
            tag_id,
            inner,
        }
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Name this lock in lockdep cycle reports.  No-op without the feature.
    pub fn lockdep_label(&self, label: &str) {
        #[cfg(feature = "lockdep")]
        lockdep::set_label(self.tag.id(), label.to_string());
        #[cfg(not(feature = "lockdep"))]
        let _ = label;
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lockdep")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        lockdep::on_release(self.tag_id);
    }
}

#[cfg(feature = "lockdep")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        lockdep::on_release(self.tag_id);
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`]; `wait` reborrows the guard
/// in place (parking_lot's `&mut guard` signature).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Release the guard, sleep until notified, reacquire.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        // The wait hands the lock back and blocks to retake it, so lockdep
        // must see a release followed by a fresh blocking acquisition — the
        // reacquire can order against whatever else the thread still holds.
        #[cfg(feature = "lockdep")]
        {
            lockdep::on_release(guard.tag_id);
            lockdep::before_blocking_acquire(guard.tag_id);
        }
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
        #[cfg(feature = "lockdep")]
        lockdep::after_acquire(guard.tag_id);
    }

    /// [`Condvar::wait`] with a timeout.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        #[cfg(feature = "lockdep")]
        {
            lockdep::on_release(guard.tag_id);
            lockdep::before_blocking_acquire(guard.tag_id);
        }
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        #[cfg(feature = "lockdep")]
        lockdep::after_acquire(guard.tag_id);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_deref() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            42
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_one();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}

#[cfg(all(test, feature = "lockdep"))]
mod lockdep_tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn consistent_order_stays_clean() {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let ga = a.lock();
                    let gb = b.lock();
                    drop(gb);
                    drop(ga);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(lockdep::held_locks().is_empty());
    }

    #[test]
    fn ab_ba_inversion_panics_with_both_chains() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        a.lockdep_label("ledger");
        b.lockdep_label("shard");
        // Establish a → b on record...
        {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
        // ...then acquire in the reverse order.  The second acquisition must
        // panic (it would deadlock against a concurrent a → b chain).
        let err = catch_unwind(AssertUnwindSafe(|| {
            let gb = b.lock();
            let _ga = a.lock();
            drop(gb);
        }))
        .expect_err("reverse acquisition order must be detected");
        let msg = panic_message(err);
        assert!(msg.contains("lock-order cycle"), "unexpected message: {msg}");
        assert!(msg.contains("ledger"), "cycle report names both locks: {msg}");
        assert!(msg.contains("shard"), "cycle report names both locks: {msg}");
        assert!(msg.contains("first seen on thread"), "witness chain shown: {msg}");
        assert!(lockdep::held_locks().is_empty(), "unwind released the holds");
    }

    #[test]
    fn recursive_acquisition_panics_instead_of_deadlocking() {
        let m = Mutex::new(());
        m.lockdep_label("recursive-target");
        let err = catch_unwind(AssertUnwindSafe(|| {
            let g = m.lock();
            let _again = m.lock();
            drop(g);
        }))
        .expect_err("self-deadlock must be detected");
        let msg = panic_message(err);
        assert!(msg.contains("recursive acquisition"), "unexpected message: {msg}");
        assert!(msg.contains("recursive-target"), "unexpected message: {msg}");
        assert!(lockdep::held_locks().is_empty());
    }

    #[test]
    fn try_lock_probes_record_no_ordering_edges() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        // a held, b probed: no a → b edge may be recorded...
        {
            let ga = a.lock();
            let gb = b.try_lock().expect("uncontended");
            drop(gb);
            drop(ga);
        }
        // ...so the reverse blocking order stays legal.
        let gb = b.lock();
        let ga = a.lock();
        assert_eq!(lockdep::held_locks().len(), 2);
        drop(ga);
        drop(gb);
        assert!(lockdep::held_locks().is_empty());
    }

    #[test]
    fn rwlock_inversion_against_mutex_panics() {
        let m = Mutex::new(());
        let rw = RwLock::new(());
        m.lockdep_label("meta");
        rw.lockdep_label("table");
        {
            let gm = m.lock();
            let gr = rw.read();
            drop(gr);
            drop(gm);
        }
        let err = catch_unwind(AssertUnwindSafe(|| {
            let gw = rw.write();
            let _gm = m.lock();
            drop(gw);
        }))
        .expect_err("read and write sides share one lockdep node");
        let msg = panic_message(err);
        assert!(msg.contains("lock-order cycle"), "unexpected message: {msg}");
        assert!(lockdep::held_locks().is_empty());
    }

    #[test]
    fn condvar_wait_keeps_held_stack_balanced() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert_eq!(lockdep::held_locks().len(), 1);
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        assert_eq!(lockdep::held_locks().len(), 1, "lock re-held after the wait");
        drop(g);
        assert!(lockdep::held_locks().is_empty());
    }
}
