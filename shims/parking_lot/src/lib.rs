//! Offline stand-in for `parking_lot`, vendored so the workspace builds with
//! no registry access.
//!
//! API-compatible for this workspace's uses: `lock()`/`read()`/`write()`
//! return guards directly (no `Result`), and `Condvar::wait` takes the guard
//! by `&mut`.  Built on `std::sync`; a poisoned std lock is recovered rather
//! than propagated, matching parking_lot's no-poisoning behaviour.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutex whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`].  Wraps the std guard in an `Option` so [`Condvar`]
/// can temporarily take ownership during `wait`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present outside Condvar::wait")
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive access, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`]; `wait` reborrows the guard
/// in place (parking_lot's `&mut guard` signature).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Release the guard, sleep until notified, reacquire.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// [`Condvar::wait`] with a timeout.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_deref() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            42
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_one();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
