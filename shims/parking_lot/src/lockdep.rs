//! Lock-order deadlock detection (`--features lockdep`).
//!
//! Every instrumented lock gets a lazily-assigned id.  Each thread keeps a
//! stack of the lock ids it currently holds; a *blocking* acquisition while
//! other locks are held records `held → acquiring` edges into a process-wide
//! acquisition-order graph.  The moment an edge closes a cycle — this thread
//! holds `A` and acquires `B`, but some prior chain established `B → … → A` —
//! the tracker panics with **both** conflicting chains: the one this thread
//! is building and the recorded witness path, each edge stamped with the
//! held-stack and thread name that created it.
//!
//! Design notes:
//!
//! * `try_lock` acquisitions record the hold (later blocking acquires see it
//!   as held) but add **no** edges: a try-lock cannot block, so it cannot
//!   complete a deadlock cycle — and deadlock-*avoidance* code legitimately
//!   probes locks in "wrong" order.
//! * `RwLock` readers and writers share one graph node.  Read-read inversion
//!   alone cannot deadlock, but one writer makes it real; the conservative
//!   collapse is the classic lockdep trade.
//! * A cycle is always detected when its final edge is inserted, so known
//!   edges re-taken on the hot path skip the graph walk entirely.
//! * The tracker's own state rides `std::sync` primitives — instrumenting
//!   the instrumentation would recurse.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex as StdMutex;

/// Lazily-assigned identity of one instrumented lock.
pub(crate) struct LockTag {
    id: AtomicU64,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

impl LockTag {
    pub(crate) const fn new() -> LockTag {
        LockTag { id: AtomicU64::new(0) }
    }

    /// The lock's id, assigned on first use.
    pub(crate) fn id(&self) -> u64 {
        match self.id.load(Ordering::Relaxed) {
            0 => {
                let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
                match self.id.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => fresh,
                    Err(raced) => raced,
                }
            }
            id => id,
        }
    }
}

/// How one acquisition-order edge was first observed.
#[derive(Debug, Clone)]
struct Witness {
    /// The full held stack (lock ids) at the moment the edge was recorded.
    held: Vec<u64>,
    /// Name of the recording thread.
    thread: String,
}

#[derive(Default)]
struct Graph {
    /// `from → (to → first witness)`.
    edges: HashMap<u64, HashMap<u64, Witness>>,
    /// Optional human labels (`Mutex::lockdep_label`).
    labels: HashMap<u64, String>,
}

thread_local! {
    static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Attach a human-readable label to a lock id for cycle reports.
pub fn set_label(id: u64, label: String) {
    let mut g = graph_cell().lock().unwrap_or_else(|e| e.into_inner());
    g.labels.insert(id, label);
}

fn graph_cell() -> &'static StdMutex<Graph> {
    static CELL: std::sync::OnceLock<StdMutex<Graph>> = std::sync::OnceLock::new();
    CELL.get_or_init(|| StdMutex::new(Graph::default()))
}

fn describe(g: &Graph, id: u64) -> String {
    match g.labels.get(&id) {
        Some(l) => format!("#{id} \"{l}\""),
        None => format!("#{id}"),
    }
}

fn describe_chain(g: &Graph, ids: &[u64]) -> String {
    let names: Vec<String> = ids.iter().map(|&i| describe(g, i)).collect();
    format!("[{}]", names.join(", "))
}

/// Record a *blocking* acquisition about to happen.  Panics on recursive
/// acquisition and on any lock-order cycle.
pub(crate) fn before_blocking_acquire(id: u64) {
    let held: Vec<u64> = match HELD.try_with(|h| h.borrow().clone()) {
        Ok(h) => h,
        Err(_) => return, // thread tearing down
    };
    if held.is_empty() {
        return;
    }
    if held.contains(&id) {
        let g = graph_cell().lock().unwrap_or_else(|e| e.into_inner());
        let msg = format!(
            "lockdep: recursive acquisition of lock {} on thread \"{}\" (already held: {}) — \
             this shim's locks are not reentrant, so this thread would deadlock against itself",
            describe(&g, id),
            thread_name(),
            describe_chain(&g, &held),
        );
        drop(g);
        panic!("{msg}");
    }

    let mut g = graph_cell().lock().unwrap_or_else(|e| e.into_inner());
    let mut added_any = false;
    for &from in &held {
        if let std::collections::hash_map::Entry::Vacant(slot) = g.edges.entry(from).or_default().entry(id) {
            slot.insert(Witness {
                held: held.clone(),
                thread: thread_name(),
            });
            added_any = true;
        }
    }
    if !added_any {
        return; // every edge already known ⇒ any cycle was caught earlier
    }
    // Does a recorded chain lead from the lock being acquired back to one we
    // hold?  If so, the edge just added closes a cycle.
    if let Some(path) = find_path(&g, id, &held) {
        let mut msg = format!(
            "lockdep: lock-order cycle detected\n  thread \"{}\" holds {} and is acquiring {}\n  \
             but the reverse order is already on record:",
            thread_name(),
            describe_chain(&g, &held),
            describe(&g, id),
        );
        for (from, to) in &path {
            let w = &g.edges[from][to];
            msg.push_str(&format!(
                "\n    {} -> {}  (first seen on thread \"{}\" holding {})",
                describe(&g, *from),
                describe(&g, *to),
                w.thread,
                describe_chain(&g, &w.held),
            ));
        }
        msg.push_str(
            "\n  one of these acquisition orders must flip (or the coarser lock must subsume \
             the finer) before the two chains can run concurrently",
        );
        drop(g);
        panic!("{msg}");
    }
}

/// Record a completed acquisition (blocking or try-lock).
pub(crate) fn after_acquire(id: u64) {
    let _ = HELD.try_with(|h| h.borrow_mut().push(id));
}

/// Record a release (guard drop, or a condvar wait handing the lock back).
pub(crate) fn on_release(id: u64) {
    let _ = HELD.try_with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&x| x == id) {
            held.remove(pos);
        }
    });
}

/// BFS from `start` to any id in `targets`; returns the edge list of the
/// witness path.
fn find_path(g: &Graph, start: u64, targets: &[u64]) -> Option<Vec<(u64, u64)>> {
    let mut prev: HashMap<u64, u64> = HashMap::new();
    let mut queue = VecDeque::from([start]);
    while let Some(node) = queue.pop_front() {
        let Some(nexts) = g.edges.get(&node) else { continue };
        // Deterministic exploration order keeps cycle reports stable.
        let mut sorted: Vec<u64> = nexts.keys().copied().collect();
        sorted.sort_unstable();
        for to in sorted {
            if prev.contains_key(&to) || to == start {
                continue;
            }
            prev.insert(to, node);
            if targets.contains(&to) {
                let mut path = vec![(node, to)];
                let mut cur = node;
                while cur != start {
                    let p = prev[&cur];
                    path.push((p, cur));
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(to);
        }
    }
    None
}

fn thread_name() -> String {
    std::thread::current().name().unwrap_or("<unnamed>").to_string()
}

/// Testing hook: the current thread's held-lock stack.
pub fn held_locks() -> Vec<u64> {
    HELD.try_with(|h| h.borrow().clone()).unwrap_or_default()
}
