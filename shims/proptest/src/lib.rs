//! Offline stand-in for `proptest`, vendored so the workspace builds with no
//! registry access.
//!
//! Supports the subset the workspace's property tests use: the [`proptest!`]
//! macro (with an optional `#![proptest_config(...)]` header), numeric range
//! strategies, `any::<T>()`, tuple strategies, `proptest::collection::vec`,
//! `prop_assert*`, and `prop_assume!`.  Sampling is purely random (seeded
//! deterministically from the test name) — there is no shrinking; a failing
//! case panics with the standard assertion message, and determinism makes it
//! reproducible.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config overriding only the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic sampling source (SplitMix64 seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's fully qualified name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name keeps streams distinct and stable.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

/// Something a test case value can be drawn from.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// The `any::<T>()` strategy: arbitrary values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Draw arbitrary values of a type (bit-pattern based for floats, so NaN and
/// infinities do occur, as with real proptest).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types `any::<T>()` can produce.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the tests `use ... ::prelude::*` for.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Assert inside a property test (no shrinking in the shim, so this is a
/// plain panic with the sampled inputs visible in the message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when a precondition fails (moves to the next case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// The test-defining macro.  Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written inside the block, as with
/// real proptest) running `body` over deterministically sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unused_variables)]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    let ($($arg,)*) = ($($crate::Strategy::sample(&($strategy), &mut rng),)*);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(x in 1usize..10, f in 0.0f64..1.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn assume_skips(a in 0u64..4, b in 0u64..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn vectors_and_tuples(
            xs in crate::collection::vec(any::<u8>(), 0..16),
            t in (any::<u8>(), 0u32..5),
        ) {
            prop_assert!(xs.len() < 16);
            prop_assert!(t.1 < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_applies(_x in 0u8..2) {
            // Runs exactly 7 cases; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
