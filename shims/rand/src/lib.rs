//! Offline stand-in for `rand`, vendored so the workspace builds without
//! registry access.
//!
//! Provides the slice of the rand 0.8 API this workspace uses:
//! `StdRng::seed_from_u64`, and `Rng::gen_range` over numeric `Range`s.  The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic across
//! runs and platforms, which is all the synthetic-data generators and the
//! virtual-time campaign jitter require.  The stream differs from the real
//! `StdRng` (ChaCha12); everything in this workspace that consumes it is
//! calibrated against this shim.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, as in rand's `SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`low..high`, half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform in `[0, 1)` (not in rand's `Rng`, but handy for shims/tests).
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        u64_to_unit_f64(self.next_u64())
    }

    /// A random boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range a value can be sampled from.
pub trait SampleRange<T> {
    /// Sample uniformly from `self`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

fn u64_to_unit_f64(x: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range requires start < end");
                let unit = u64_to_unit_f64(rng.next_u64()) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    };
}
float_range!(f32);
float_range!(f64);

macro_rules! uint_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range requires start < end");
                let span = (self.end - self.start) as u64;
                // Multiply-shift reduction; bias is < 2^-64 * span, irrelevant
                // for the workspace's small spans.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + r as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range requires start <= end");
                if end < <$t>::MAX {
                    (start..end + 1).sample_from(rng)
                } else if start > <$t>::MIN {
                    (start - 1..end).sample_from(rng) + 1
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    };
}
uint_range!(u8);
uint_range!(u16);
uint_range!(u32);
uint_range!(u64);
uint_range!(usize);

macro_rules! int_range {
    ($t:ty, $u:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range requires start < end");
                let span = (self.end as i128 - self.start as i128) as u64;
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + r as i128) as $t
            }
        }
    };
}
int_range!(i32, u32);
int_range!(i64, u64);
int_range!(isize, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen_range(0.04f32..0.14);
            assert!((0.04..0.14).contains(&g));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(samples.iter().any(|x| *x < 0.1));
        assert!(samples.iter().any(|x| *x > 0.9));
    }
}
