//! Offline stand-in for `serde`, vendored so the workspace builds without any
//! registry access.
//!
//! The real serde is a zero-overhead framework generic over data formats; this
//! shim trades that generality for a single self-describing [`Value`] tree:
//! [`Serialize`] renders a type into a `Value` and [`Deserialize`] rebuilds it
//! from one.  The companion `serde_json` and `toml` shims are formatters and
//! parsers for that tree, and the `serde_derive` proc-macro generates the two
//! impls for structs and enums with serde's standard data model (maps for
//! named fields, sequences for tuples, externally tagged enums).
//!
//! Only what this workspace uses is implemented; the API is intentionally
//! source-compatible for those uses (`#[derive(Serialize, Deserialize)]`,
//! `serde_json::to_string`, `toml::from_str`, ...) so that swapping the real
//! crates back in later is a manifest-only change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// A self-describing value: the single intermediate representation every
/// shimmed format reads and writes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null (also what missing map keys deserialize from).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with insertion order preserved (keeps emitted TOML readable).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::I64(_) | Value::U64(_) => "an integer",
            Value::F64(_) => "a float",
            Value::Str(_) => "a string",
            Value::Seq(_) => "a sequence",
            Value::Map(_) => "a map",
        }
    }

    /// Map lookup (linear; maps here are tiny).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error with a field path for diagnostics.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
    path: Vec<String>,
}

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError {
            msg: msg.into(),
            path: Vec::new(),
        }
    }

    /// "expected X, found Y" against an actual value.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self::custom(format!("expected {what}, found {}", got.kind()))
    }

    /// Prefix the path with a field name (derive uses this while unwinding).
    pub fn in_field(mut self, field: &str) -> Self {
        self.path.insert(0, field.to_string());
        self
    }

    /// Prefix the path with a sequence index.
    pub fn in_index(self, index: usize) -> Self {
        self.in_field(&format!("[{index}]"))
    }

    /// The message without the path.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "{}: {}", self.path.join("."), self.msg)
        }
    }
}

impl std::error::Error for DeError {}

/// Render `self` into a [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse the value tree, with a path-annotated error on mismatch.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

static NULL: Value = Value::Null;

/// Map-field lookup used by the derive: missing keys surface as [`Value::Null`]
/// so `Option<T>` fields are naturally optional.
pub fn field<'a>(m: &'a [(String, Value)], name: &str) -> &'a Value {
    m.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap_or(&NULL)
}

/// Enum-variant name matching used by the derive: exact, or normalized
/// (case-insensitive with `-`/`_` stripped), so TOML can say
/// `mode = "virtual-time"` for a `VirtualTime` variant.
pub fn variant_matches(candidate: &str, variant: &str) -> bool {
    if candidate == variant {
        return true;
    }
    let norm = |s: &str| {
        s.chars()
            .filter(|c| *c != '-' && *c != '_')
            .flat_map(|c| c.to_lowercase())
            .collect::<String>()
    };
    norm(candidate) == norm(variant)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let wide = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| DeError::custom(format!("{u} out of range for {}", stringify!($t))))?,
                    other => return Err(DeError::expected(concat!("an integer (", stringify!($t), ")"), other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::I64(i),
                    Err(_) => Value::U64(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let wide = match v {
                    Value::I64(i) => u64::try_from(*i)
                        .map_err(|_| DeError::custom(format!("{i} is negative but {} is unsigned", stringify!($t))))?,
                    Value::U64(u) => *u,
                    other => return Err(DeError::expected(concat!("an integer (", stringify!($t), ")"), other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::I64(i) => Ok(*i as f64),
            Value::U64(u) => Ok(*u as f64),
            other => Err(DeError::expected("a number (f64)", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("a boolean", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("a string", other)),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let s = String::deserialize(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!("expected a single character, found {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s
                .iter()
                .enumerate()
                .map(|(i, x)| T::deserialize(x).map_err(|e| e.in_index(i)))
                .collect(),
            other => Err(DeError::expected("a sequence", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::deserialize(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected an array of length {N}, found length {len}")))
    }
}

/// Types usable as map keys: rendered to / parsed from strings, since the
/// [`Value`] model (like JSON and TOML) only has string keys.
pub trait MapKey: Sized {
    /// The string form of the key.
    fn to_key(&self) -> String;

    /// Parse the string form back.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::custom(format!("invalid {} map key `{s}`", stringify!($t))))
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.serialize())).collect())
    }
}
impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, x)| Ok((K::from_key(k)?, V::deserialize(x).map_err(|e| e.in_field(k))?)))
                .collect(),
            other => Err(DeError::expected("a map", other)),
        }
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<K, V, S>
{
    fn serialize(&self) -> Value {
        // Sort by key so the serialized form is deterministic.
        let mut entries: Vec<(String, Value)> = self.iter().map(|(k, v)| (k.to_key(), v.serialize())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<K, V, S>
{
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, x)| Ok((K::from_key(k)?, V::deserialize(x).map_err(|e| e.in_field(k))?)))
                .collect(),
            other => Err(DeError::expected("a map", other)),
        }
    }
}

impl<T: Serialize + Ord, S: std::hash::BuildHasher> Serialize for std::collections::HashSet<T, S> {
    fn serialize(&self) -> Value {
        // Sort so the serialized form is deterministic.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::serialize).collect())
    }
}
impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s
                .iter()
                .enumerate()
                .map(|(i, x)| T::deserialize(x).map_err(|e| e.in_index(i)))
                .collect(),
            other => Err(DeError::expected("a sequence", other)),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s
                .iter()
                .enumerate()
                .map(|(i, x)| T::deserialize(x).map_err(|e| e.in_index(i)))
                .collect(),
            other => Err(DeError::expected("a sequence", other)),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                let s = match v {
                    Value::Seq(s) if s.len() == LEN => s,
                    other => return Err(DeError::expected("a tuple sequence", other)),
                };
                Ok(($($t::deserialize(&s[$n]).map_err(|e| e.in_index($n))?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl Serialize for Duration {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::I64(i64::from(self.subsec_nanos()))),
        ])
    }
}
impl Deserialize for Duration {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => {
                let secs = u64::deserialize(field(m, "secs")).map_err(|e| e.in_field("secs"))?;
                let nanos = u32::deserialize(field(m, "nanos")).map_err(|e| e.in_field("nanos"))?;
                Ok(Duration::new(secs, nanos))
            }
            other => Err(DeError::expected("a {secs, nanos} map for Duration", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-3i64).serialize()).unwrap(), -3);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(f64::deserialize(&Value::I64(7)).unwrap(), 7.0);
        assert!(u32::deserialize(&Value::I64(-1)).is_err());
        assert_eq!(String::deserialize(&"x".serialize()).unwrap(), "x");
        assert_eq!(Option::<u64>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            <(usize, usize)>::deserialize(&(3usize, 4usize).serialize()).unwrap(),
            (3, 4)
        );
        assert_eq!(
            <[f32; 3]>::deserialize(&[1.0f32, 2.0, 3.0].serialize()).unwrap(),
            [1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn missing_map_fields_read_as_null() {
        let m = vec![("a".to_string(), Value::I64(1))];
        assert_eq!(field(&m, "a"), &Value::I64(1));
        assert_eq!(field(&m, "b"), &Value::Null);
        assert_eq!(Option::<u64>::deserialize(field(&m, "b")).unwrap(), None);
    }

    #[test]
    fn variant_matching_is_normalized() {
        assert!(variant_matches("VirtualTime", "VirtualTime"));
        assert!(variant_matches("virtual-time", "VirtualTime"));
        assert!(variant_matches("nton_cplant", "NtonCplant"));
        assert!(!variant_matches("serial", "Overlapped"));
    }

    #[test]
    fn errors_carry_paths() {
        let e = DeError::custom("boom").in_field("x").in_field("outer");
        assert_eq!(e.to_string(), "outer.x: boom");
    }

    #[test]
    fn duration_round_trips() {
        let d = Duration::new(3, 250_000_000);
        assert_eq!(Duration::deserialize(&d.serialize()).unwrap(), d);
    }
}
