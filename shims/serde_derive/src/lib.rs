//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! This workspace builds with no registry access, so `syn`/`quote` are not
//! available; the derive input is parsed directly from the compiler's token
//! stream.  The supported shapes are exactly what the workspace uses:
//!
//! * structs with named fields, tuple structs (a 1-tuple serializes
//!   transparently as its inner value, like serde newtypes), unit structs;
//! * enums with unit, newtype, tuple and struct variants, externally tagged
//!   like serde (`"Variant"`, `{"Variant": ...}`).
//!
//! Generic types are not supported (none of the workspace's serialized types
//! are generic); encountering one produces a compile error naming this file.
//!
//! Field types never need to be parsed: generated code places every
//! `Deserialize::deserialize` call in a position (struct literal field,
//! variant constructor argument) where the compiler infers the target type.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Generate `impl serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Generate `impl serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected `struct` or `enum`, found {other:?}"
            ))
        }
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim derive: expected a type name, found {other:?}")),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported (see shims/serde_derive)"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("serde shim derive: unexpected struct body {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("serde shim derive: expected an enum body, found {other:?}")),
            };
            // Detach from `toks` to appease the borrow in the loop below.
            drop(toks.drain(..));
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("serde shim derive: cannot derive for `{other}` items")),
    }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket) {
                    *i += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis) {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field body: `{ a: T, pub b: U, ... }`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde shim derive: expected a field name, found {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde shim derive: expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type_until_comma(&toks, &mut i);
        names.push(name);
    }
    Ok(names)
}

/// Advance past a type, stopping after the next top-level `,` (angle-bracket
/// depth aware: the comma in `BTreeMap<String, V>` is not a field separator).
fn skip_type_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Arity of a tuple-struct / tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut arity = 0usize;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        arity += 1;
        skip_type_until_comma(&toks, &mut i);
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde shim derive: expected a variant name, found {other:?}")),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip a discriminant (`= expr`) and the separating comma.
        while let Some(t) = toks.get(i) {
            i += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f}))"))
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Value {{ {body} }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),")
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(x0) => ::serde::Value::Map(vec![({v:?}.to_string(), \
                         ::serde::Serialize::serialize(x0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::serialize(x{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(vec![({v:?}.to_string(), \
                             ::serde::Value::Seq(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(field_names) => {
                        let binds = field_names.join(", ");
                        let entries: Vec<String> = field_names
                            .iter()
                            .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::serialize({f}))"))
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![({v:?}.to_string(), \
                             ::serde::Value::Map(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Value {{\n        \
                 match self {{\n            {}\n        }}\n    }}\n}}\n",
                arms.join("\n            ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{{ let _ = v; Ok({name}) }}"),
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize(::serde::field(m, {f:?}))\
                                 .map_err(|e| e.in_field({f:?}))?,"
                            )
                        })
                        .collect();
                    format!(
                        "{{\n        let m = match v {{\n            ::serde::Value::Map(m) => m,\n            \
                         other => return Err(::serde::DeError::expected(\"a map for struct {name}\", other)),\n        \
                         }};\n        Ok({name} {{\n            {}\n        }})\n    }}",
                        inits.join("\n            ")
                    )
                }
                Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::deserialize(v)?))"),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&s[{i}]).map_err(|e| e.in_index({i}))?,"))
                        .collect();
                    format!(
                        "{{\n        let s = match v {{\n            ::serde::Value::Seq(s) if s.len() == {n} => s,\n            \
                         other => return Err(::serde::DeError::expected(\"a sequence of {n} for {name}\", other)),\n        \
                         }};\n        Ok({name}(\n            {}\n        ))\n    }}",
                        inits.join("\n            ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n    fn deserialize(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n        {body}\n    }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let unit_checks: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("if ::serde::variant_matches(s, {v:?}) {{ return Ok({name}::{v}); }}"))
                .collect();
            let data_checks: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "if ::serde::variant_matches(k, {v:?}) {{\n                return Ok({name}::{v}(\
                         ::serde::Deserialize::deserialize(inner).map_err(|e| e.in_field({v:?}))?));\n            }}"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize(&s[{i}]).map_err(|e| e.in_index({i}).in_field({v:?}))?,")
                            })
                            .collect();
                        Some(format!(
                            "if ::serde::variant_matches(k, {v:?}) {{\n                let s = match inner {{\n                    \
                             ::serde::Value::Seq(s) if s.len() == {n} => s,\n                    \
                             other => return Err(::serde::DeError::expected(\"a sequence of {n} for variant {v}\", other)),\n                \
                             }};\n                return Ok({name}::{v}({}));\n            }}",
                            inits.join(" ")
                        ))
                    }
                    Fields::Named(field_names) => {
                        let inits: Vec<String> = field_names
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::deserialize(::serde::field(m2, {f:?}))\
                                     .map_err(|e| e.in_field({f:?}).in_field({v:?}))?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "if ::serde::variant_matches(k, {v:?}) {{\n                let m2 = match inner {{\n                    \
                             ::serde::Value::Map(m2) => m2,\n                    \
                             other => return Err(::serde::DeError::expected(\"a map for variant {v}\", other)),\n                \
                             }};\n                return Ok({name}::{v} {{ {} }});\n            }}",
                            inits.join(" ")
                        ))
                    }
                })
                .collect();
            let variant_list: String = variants.iter().map(|(v, _)| v.as_str()).collect::<Vec<_>>().join("|");
            format!(
                "impl ::serde::Deserialize for {name} {{\n    fn deserialize(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n        match v {{\n            \
                 ::serde::Value::Str(s) => {{\n                {unit}\n                \
                 Err(::serde::DeError::custom(format!(\"unknown variant `{{s}}` of {name}, expected one of {list}\")))\n            }}\n            \
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n                let (k, inner) = (&m[0].0, &m[0].1);\n                \
                 let _ = inner;\n                {data}\n                \
                 Err(::serde::DeError::custom(format!(\"unknown variant `{{k}}` of {name}, expected one of {list}\")))\n            }}\n            \
                 other => Err(::serde::DeError::expected(\"a string or single-key map for enum {name}\", other)),\n        \
                 }}\n    }}\n}}\n",
                unit = if unit_checks.is_empty() {
                    "let _ = s;".to_string()
                } else {
                    unit_checks.join("\n                ")
                },
                data = if data_checks.is_empty() {
                    String::new()
                } else {
                    data_checks.join("\n                ")
                },
                list = variant_list,
            )
        }
    }
}
