//! Offline stand-in for `serde_json`: a JSON formatter/parser for the
//! vendored serde shim's [`serde::Value`] model.
//!
//! Floats are emitted with Rust's shortest round-trippable representation
//! (`{:?}`), so `f64` survives `to_string` → `from_str` bit-exactly — the
//! NetLogger event log round-trip test depends on that.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize to indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i, d| {
            write_value(out, &items[i], indent, d);
        }),
        Value::Map(entries) => write_compound(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
            write_string(out, &entries[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &entries[i].1, indent, d);
        }),
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no NaN/inf; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => return Err(Error::new(format!("expected `,` or `]`, found {other:?}"))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => return Err(Error::new(format!("expected `,` or `}}`, found {other:?}"))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let c = *rest.first().ok_or_else(|| Error::new("unterminated string"))?;
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = *rest.get(1).ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => return Err(Error::new(format!("invalid escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar.
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("nonempty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new(format!("invalid \\u escape `{hex}`")))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"a\\nb\\u0041\"").unwrap(), "a\nbA");
    }

    #[test]
    fn f64_bits_survive() {
        for f in [0.1f64, 1.0 / 3.0, 12.345678901234567, 1e-12, 1e20] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let s = to_string_pretty(&v).unwrap();
        let back: Vec<(u64, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 trailing").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
    }
}
