//! Offline stand-in for `toml` over the vendored serde shim's `Value` model.
//!
//! Implements the subset of TOML the scenario files use — and a little more:
//! `[tables]`, nested `[a.b]` tables, `[[arrays-of-tables]]`, bare and quoted
//! keys, basic and literal strings, integers (with `_` separators), floats,
//! booleans, inline arrays (nesting allowed, spanning multiple lines when
//! brackets stay open), comments.  Not implemented: inline tables `{...}`,
//! dates, multi-line strings.
//!
//! The emitter writes scalars first, then sub-tables, then arrays of tables,
//! so emitted documents parse back into the same tree (round-trip tested in
//! `visapult-core`'s scenario module).

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// TOML (de)serialization error with the 1-based source line when known.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    line: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            line: None,
        }
    }

    fn at(msg: impl Into<String>, line: usize) -> Self {
        Error {
            msg: msg.into(),
            line: Some(line),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "TOML error at line {n}: {}", self.msg),
            None => write!(f, "TOML error: {}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Deserialize a TOML document into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_document(s)?;
    Ok(T::deserialize(&value)?)
}

/// Serialize `T` as a TOML document (`T` must serialize to a map).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let v = value.serialize();
    let map = v
        .as_map()
        .ok_or_else(|| Error::new(format!("top-level TOML value must be a table, got {}", v.kind())))?;
    let mut out = String::new();
    emit_table(&mut out, &[], map)?;
    Ok(out)
}

/// Alias for [`to_string`] (the emitter is always "pretty").
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    to_string(value)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn is_scalar(v: &Value) -> bool {
    match v {
        Value::Null | Value::Bool(_) | Value::I64(_) | Value::U64(_) | Value::F64(_) | Value::Str(_) => true,
        Value::Seq(items) => items.iter().all(is_scalar),
        Value::Map(_) => false,
    }
}

fn emit_table(out: &mut String, path: &[String], entries: &[(String, Value)]) -> Result<(), Error> {
    // Scalars and inline arrays first...
    for (k, v) in entries {
        if matches!(v, Value::Null) {
            continue; // omitted; reads back as missing -> Option::None
        }
        if is_scalar(v) {
            out.push_str(&format!("{} = ", emit_key(k)));
            emit_inline(out, v, path, k)?;
            out.push('\n');
        }
    }
    // ...then sub-tables and arrays of tables.
    for (k, v) in entries {
        let mut sub_path = path.to_vec();
        sub_path.push(k.clone());
        match v {
            Value::Map(m) => {
                out.push('\n');
                out.push_str(&format!("[{}]\n", emit_path(&sub_path)));
                emit_table(out, &sub_path, m)?;
            }
            Value::Seq(items) if !is_scalar(v) => {
                for item in items {
                    let m = item.as_map().ok_or_else(|| {
                        Error::new(format!(
                            "array `{}` mixes tables and scalars; TOML cannot express that",
                            emit_path(&sub_path)
                        ))
                    })?;
                    out.push('\n');
                    out.push_str(&format!("[[{}]]\n", emit_path(&sub_path)));
                    emit_table(out, &sub_path, m)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn emit_inline(out: &mut String, v: &Value, path: &[String], key: &str) -> Result<(), Error> {
    match v {
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else if f.is_nan() {
                out.push_str("nan");
            } else if *f > 0.0 {
                out.push_str("inf");
            } else {
                out.push_str("-inf");
            }
        }
        Value::Str(s) => emit_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_inline(out, item, path, key)?;
            }
            out.push(']');
        }
        Value::Null | Value::Map(_) => {
            return Err(Error::new(format!(
                "cannot emit {} inline at `{}.{key}`",
                v.kind(),
                emit_path(path)
            )))
        }
    }
    Ok(())
}

fn emit_key(k: &str) -> String {
    let bare = !k.is_empty() && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        k.to_string()
    } else {
        let mut s = String::new();
        emit_string(&mut s, k);
        s
    }
}

fn emit_path(path: &[String]) -> String {
    path.iter().map(|p| emit_key(p)).collect::<Vec<_>>().join(".")
}

fn emit_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse a whole document into a `Value::Map` tree.
pub fn parse_document(s: &str) -> Result<Value, Error> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Path of the table currently receiving `key = value` lines.
    let mut current: Vec<PathSeg> = Vec::new();

    let mut lines = s.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        // Strip each physical line's comment *before* joining continuations,
        // so multi-line arrays may carry per-element comments.
        let mut logical = strip_comment(raw).map_err(|m| Error::at(m, line_no))?.to_string();
        // Inline arrays may span lines: keep appending while brackets stay
        // open outside strings.
        while open_brackets(&logical).map_err(|m| Error::at(m, line_no))? > 0 {
            match lines.next() {
                Some((_, next)) => {
                    let next = strip_comment(next).map_err(|m| Error::at(m, line_no))?;
                    logical.push(' ');
                    logical.push_str(next);
                }
                None => return Err(Error::at("unterminated array", line_no)),
            }
        }
        let line = logical.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let header = rest
                .strip_suffix("]]")
                .ok_or_else(|| Error::at("malformed [[table]] header", line_no))?;
            let path = parse_key_path(header).map_err(|m| Error::at(m, line_no))?;
            current = path.iter().map(|p| PathSeg::Key(p.clone())).collect();
            let seq = resolve_seq(&mut root, &path).map_err(|m| Error::at(m, line_no))?;
            seq.push(Value::Map(Vec::new()));
            current.push(PathSeg::LastElement);
        } else if let Some(rest) = line.strip_prefix('[') {
            let header = rest
                .strip_suffix(']')
                .ok_or_else(|| Error::at("malformed [table] header", line_no))?;
            let path = parse_key_path(header).map_err(|m| Error::at(m, line_no))?;
            // Creating the table now means empty tables still appear.
            resolve_table(&mut root, &path_segs(&path)).map_err(|m| Error::at(m, line_no))?;
            current = path_segs(&path);
        } else {
            let (key_part, value_part) = split_assignment(line).ok_or_else(|| {
                Error::at(
                    format!("expected `key = value`, `[table]` or `[[table]]`, got `{line}`"),
                    line_no,
                )
            })?;
            let key_path = parse_key_path(key_part).map_err(|m| Error::at(m, line_no))?;
            let (leaf, parents) = key_path.split_last().expect("key paths are nonempty");
            let mut full = current.clone();
            full.extend(parents.iter().map(|p| PathSeg::Key(p.clone())));
            let table = resolve_table(&mut root, &full).map_err(|m| Error::at(m, line_no))?;
            if table.iter().any(|(k, _)| k == leaf) {
                return Err(Error::at(format!("duplicate key `{leaf}`"), line_no));
            }
            let (value, rest) = parse_value(value_part.trim()).map_err(|m| Error::at(m, line_no))?;
            if !rest.trim().is_empty() {
                return Err(Error::at(
                    format!("trailing characters after value: `{}`", rest.trim()),
                    line_no,
                ));
            }
            table.push((leaf.clone(), value));
        }
    }
    Ok(Value::Map(root))
}

#[derive(Debug, Clone, PartialEq)]
enum PathSeg {
    Key(String),
    /// Step into the last element of an array of tables.
    LastElement,
}

fn path_segs(path: &[String]) -> Vec<PathSeg> {
    path.iter().map(|p| PathSeg::Key(p.clone())).collect()
}

/// Navigate (creating as needed) to the table at `path`.
fn resolve_table<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[PathSeg],
) -> Result<&'a mut Vec<(String, Value)>, String> {
    let mut table = root;
    for seg in path {
        match seg {
            PathSeg::Key(key) => {
                if !table.iter().any(|(k, _)| k == key) {
                    table.push((key.clone(), Value::Map(Vec::new())));
                }
                let slot = table
                    .iter_mut()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .expect("just ensured present");
                table = match slot {
                    Value::Map(m) => m,
                    Value::Seq(s) => match s.last_mut() {
                        Some(Value::Map(m)) => m,
                        _ => return Err(format!("`{key}` is not a table")),
                    },
                    _ => return Err(format!("`{key}` is already a non-table value")),
                };
            }
            PathSeg::LastElement => {
                // Handled by the Seq arm above via the preceding key.
            }
        }
    }
    Ok(table)
}

/// Navigate (creating as needed) to the array of tables at `path`.
fn resolve_seq<'a>(root: &'a mut Vec<(String, Value)>, path: &[String]) -> Result<&'a mut Vec<Value>, String> {
    let (leaf, parents) = path.split_last().ok_or("empty [[table]] header")?;
    let table = resolve_table(root, &path_segs(parents))?;
    if !table.iter().any(|(k, _)| k == leaf) {
        table.push((leaf.clone(), Value::Seq(Vec::new())));
    }
    match table.iter_mut().find(|(k, _)| k == leaf).map(|(_, v)| v) {
        Some(Value::Seq(s)) => Ok(s),
        _ => Err(format!("`{leaf}` is already a non-array value")),
    }
}

/// Count unbalanced `[`/`]` outside strings (for multi-line arrays); `key = [`
/// headers like `[table]` are balanced so they report 0.
fn open_brackets(line: &str) -> Result<i32, String> {
    let mut depth = 0i32;
    let mut chars = line.chars().peekable();
    let mut in_basic = false;
    let mut in_literal = false;
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_basic => {
                chars.next();
            }
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '#' if !in_basic && !in_literal => break,
            '[' if !in_basic && !in_literal => depth += 1,
            ']' if !in_basic && !in_literal => depth -= 1,
            _ => {}
        }
    }
    if in_basic || in_literal {
        return Err("unterminated string".to_string());
    }
    Ok(depth.max(0))
}

/// Strip a trailing comment, respecting strings.
fn strip_comment(line: &str) -> Result<&str, String> {
    let mut in_basic = false;
    let mut in_literal = false;
    let mut iter = line.char_indices().peekable();
    while let Some((i, c)) = iter.next() {
        match c {
            '\\' if in_basic => {
                iter.next();
            }
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '#' if !in_basic && !in_literal => return Ok(&line[..i]),
            _ => {}
        }
    }
    if in_basic || in_literal {
        return Err("unterminated string".to_string());
    }
    Ok(line)
}

/// Split `key = value` at the first `=` outside strings.
fn split_assignment(line: &str) -> Option<(&str, &str)> {
    let mut in_basic = false;
    let mut in_literal = false;
    let mut iter = line.char_indices().peekable();
    while let Some((i, c)) = iter.next() {
        match c {
            '\\' if in_basic => {
                iter.next();
            }
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '=' if !in_basic && !in_literal => return Some((line[..i].trim(), line[i + 1..].trim())),
            _ => {}
        }
    }
    None
}

/// Parse a possibly-dotted, possibly-quoted key path.
fn parse_key_path(s: &str) -> Result<Vec<String>, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("empty key".to_string());
    }
    let mut parts = Vec::new();
    let mut rest = s;
    loop {
        rest = rest.trim_start();
        let (part, after) = if let Some(stripped) = rest.strip_prefix('"') {
            let end = find_string_end(stripped, '"')?;
            (unescape_basic(&stripped[..end])?, &stripped[end + 1..])
        } else if let Some(stripped) = rest.strip_prefix('\'') {
            let end = stripped.find('\'').ok_or("unterminated literal key")?;
            (stripped[..end].to_string(), &stripped[end + 1..])
        } else {
            let end = rest.find('.').unwrap_or(rest.len());
            let bare = rest[..end].trim();
            if bare.is_empty() || !bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
                return Err(format!("invalid bare key `{bare}`"));
            }
            (bare.to_string(), &rest[end..])
        };
        parts.push(part);
        let after = after.trim_start();
        if after.is_empty() {
            return Ok(parts);
        }
        rest = after
            .strip_prefix('.')
            .ok_or_else(|| format!("expected `.` in key, found `{after}`"))?;
    }
}

fn find_string_end(s: &str, quote: char) -> Result<usize, String> {
    let mut iter = s.char_indices();
    while let Some((i, c)) = iter.next() {
        if c == '\\' {
            iter.next();
        } else if c == quote {
            return Ok(i);
        }
    }
    Err("unterminated string".to_string())
}

fn unescape_basic(s: &str) -> Result<String, String> {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).map_err(|_| format!("invalid \\u escape `{hex}`"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("invalid \\u escape `{hex}`"))?);
            }
            Some('U') => {
                let hex: String = chars.by_ref().take(8).collect();
                let code = u32::from_str_radix(&hex, 16).map_err(|_| format!("invalid \\U escape `{hex}`"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("invalid \\U escape `{hex}`"))?);
            }
            other => return Err(format!("invalid escape `\\{other:?}`")),
        }
    }
    Ok(out)
}

/// Parse one inline value, returning it plus any unconsumed remainder.
fn parse_value(s: &str) -> Result<(Value, &str), String> {
    let s = s.trim_start();
    if let Some(stripped) = s.strip_prefix('"') {
        let end = find_string_end(stripped, '"')?;
        return Ok((Value::Str(unescape_basic(&stripped[..end])?), &stripped[end + 1..]));
    }
    if let Some(stripped) = s.strip_prefix('\'') {
        let end = stripped.find('\'').ok_or("unterminated literal string")?;
        return Ok((Value::Str(stripped[..end].to_string()), &stripped[end + 1..]));
    }
    if let Some(stripped) = s.strip_prefix('[') {
        let mut items = Vec::new();
        let mut rest = stripped.trim_start();
        loop {
            if let Some(after) = rest.strip_prefix(']') {
                return Ok((Value::Seq(items), after));
            }
            let (item, after) = parse_value(rest)?;
            items.push(item);
            rest = after.trim_start();
            if let Some(after_comma) = rest.strip_prefix(',') {
                rest = after_comma.trim_start();
            } else if !rest.starts_with(']') {
                return Err(format!("expected `,` or `]` in array, found `{rest}`"));
            }
        }
    }
    if s.starts_with('{') {
        return Err("inline tables `{...}` are not supported by the toml shim; use a [table]".to_string());
    }
    // Bare scalar: runs to the next `,`, `]` or end.
    let end = s.find([',', ']']).unwrap_or(s.len());
    let (token, rest) = (s[..end].trim(), &s[end..]);
    if token.is_empty() {
        return Err("empty value".to_string());
    }
    match token {
        "true" => return Ok((Value::Bool(true), rest)),
        "false" => return Ok((Value::Bool(false), rest)),
        "inf" | "+inf" => return Ok((Value::F64(f64::INFINITY), rest)),
        "-inf" => return Ok((Value::F64(f64::NEG_INFINITY), rest)),
        "nan" | "+nan" | "-nan" => return Ok((Value::F64(f64::NAN), rest)),
        _ => {}
    }
    let cleaned: String = token.chars().filter(|c| *c != '_').collect();
    if !cleaned.contains(['.', 'e', 'E']) {
        if let Ok(i) = cleaned.parse::<i64>() {
            return Ok((Value::I64(i), rest));
        }
        if let Ok(u) = cleaned.parse::<u64>() {
            return Ok((Value::U64(u), rest));
        }
    }
    if let Ok(f) = cleaned.parse::<f64>() {
        return Ok((Value::F64(f), rest));
    }
    Err(format!("cannot parse value `{token}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_arrays_of_tables() {
        let doc = r#"
# campaign-style document
title = "demo"
count = 3
share = 62.5

[nested]
flag = true
dims = [64, 64, 32]   # inline array

[nested.deeper]
name = 'literal'

[[stage]]
name = "a"
share = 40

[[stage]]
name = "b"
share = 60
"#;
        let v = parse_document(doc).unwrap();
        assert_eq!(v.get("title").and_then(Value::as_str), Some("demo"));
        assert_eq!(v.get("count"), Some(&Value::I64(3)));
        assert_eq!(v.get("share"), Some(&Value::F64(62.5)));
        let nested = v.get("nested").unwrap();
        assert_eq!(nested.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(nested.get("dims").and_then(Value::as_seq).map(<[Value]>::len), Some(3));
        assert_eq!(
            nested.get("deeper").and_then(|d| d.get("name")).and_then(Value::as_str),
            Some("literal")
        );
        let stages = v.get("stage").and_then(Value::as_seq).unwrap();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[1].get("share"), Some(&Value::I64(60)));
    }

    #[test]
    fn multi_line_arrays_join() {
        let doc = "xs = [\n  1,\n  2,\n]\n";
        let v = parse_document(doc).unwrap();
        assert_eq!(v.get("xs").and_then(Value::as_seq).map(<[Value]>::len), Some(2));
    }

    #[test]
    fn multi_line_arrays_allow_comments() {
        let doc = "dims = [\n  32, # x\n  16, # y\n  8,\n]\nafter = true\n";
        let v = parse_document(doc).unwrap();
        assert_eq!(
            v.get("dims").and_then(Value::as_seq),
            Some(&[Value::I64(32), Value::I64(16), Value::I64(8)][..])
        );
        assert_eq!(v.get("after"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_document("key").is_err());
        assert!(parse_document("a = 1\na = 2").is_err());
        assert!(parse_document("a = \"unterminated").is_err());
        assert!(parse_document("a = {x = 1}").is_err());
        assert!(parse_document("a = 1 garbage").is_err());
    }

    #[test]
    fn emits_round_trippable_documents() {
        let v = Value::Map(vec![
            ("name".to_string(), Value::Str("x \"quoted\"\n".to_string())),
            ("seed".to_string(), Value::I64(42)),
            ("ratio".to_string(), Value::F64(0.75)),
            (
                "table".to_string(),
                Value::Map(vec![(
                    "dims".to_string(),
                    Value::Seq(vec![Value::I64(4), Value::I64(8)]),
                )]),
            ),
            (
                "stages".to_string(),
                Value::Seq(vec![
                    Value::Map(vec![("share".to_string(), Value::I64(100))]),
                    Value::Map(vec![("share".to_string(), Value::I64(0))]),
                ]),
            ),
        ]);
        let mut out = String::new();
        emit_table(&mut out, &[], v.as_map().unwrap()).unwrap();
        let back = parse_document(&out).unwrap();
        assert_eq!(back, v, "emitted:\n{out}");
    }
}
