//! # visapult — remote and distributed visualization over high-speed WANs
//!
//! A Rust reproduction of *"Using High-Speed WANs and Network Data Caches to
//! Enable Remote and Distributed Visualization"* (Bethel, Tierney, Lee,
//! Gunter, Lau — LBNL, SC 2000): the **Visapult** remote visualization
//! framework and the **DPSS** network data cache it stands on.
//!
//! This facade crate re-exports the workspace's crates under one roof:
//!
//! | module | contents |
//! |--------|----------|
//! | [`netsim`]      | WAN testbed models, TCP dynamics, fair-share flow simulation, token-bucket shaping |
//! | [`netlogger`]   | NetLogger-style event logging, NLV lifeline plots, phase analysis |
//! | [`parcomm`]     | MPI-like rank communicator and the Appendix B reader/render process groups |
//! | [`dpss`]        | the Distributed Parallel Storage System: master, block servers, client API, HPSS staging |
//! | [`volren`]      | parallel software volume rendering, domain decomposition, synthetic combustion/cosmology data |
//! | [`scenegraph`]  | retained-mode scene graph, software rasterizer, IBR-assisted volume rendering |
//! | [`core`]        | the Visapult back end, viewer, wire protocol, the declarative scenario engine, and baselines |
//!
//! ## Quick start
//!
//! Campaigns are declarative: a TOML scenario (see `scenarios/`) names a
//! testbed, a pipeline decomposition, a seed and a staged workload mix, and
//! compiles to either the real pipeline or its virtual-time replay through
//! one entry point:
//!
//! ```
//! use visapult::core::{run_scenario, ScenarioSpec};
//!
//! // The bundled laptop-scale scenario: synthetic combustion data staged
//! // onto an in-process DPSS, a 4-PE overlapped back end, the IBRAVR viewer.
//! let spec = ScenarioSpec::bundled("quickstart_lan").unwrap();
//! let report = run_scenario(&spec).unwrap();
//! assert_eq!(report.frames_received(), 4 * 3);
//! assert!(report.data_reduction_factor() > 1.0);
//!
//! // The same spec replayed in virtual time against the testbed models.
//! use visapult::core::ExecutionPath;
//! let replay = run_scenario(&spec.with_path(ExecutionPath::VirtualTime)).unwrap();
//! assert_eq!(replay.frames_received(), 4 * 3);
//! ```
//!
//! See `examples/` for the quickstart, the Combustion Corridor campaign
//! reproduction, the SC99 exhibit reconstruction and a DPSS tour, and
//! `crates/visapult-bench` for the binaries that regenerate every figure and
//! table in the paper's evaluation (documented in `EXPERIMENTS.md`).

#![forbid(unsafe_code)]

pub use dpss;
pub use netlogger;
pub use netsim;
pub use parcomm;
pub use scenegraph;
pub use volren;

/// The Visapult framework itself (back end, viewer, protocol, campaigns).
pub use visapult_core as core;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_exposes_all_subsystems() {
        // Touch one symbol from each re-exported crate.
        let _ = crate::netsim::Bandwidth::oc12();
        let _ = crate::netlogger::Collector::virtual_time();
        let _ = crate::parcomm::Semaphore::new(1);
        let _ = crate::dpss::StripeLayout::four_server();
        let _ = crate::volren::TransferFunction::combustion_default();
        let _ = crate::scenegraph::SceneGraph::new();
        let _ = crate::core::PipelineConfig::small(1, 1, crate::core::ExecutionMode::Serial);
    }
}
