//! Public-API snapshot: the `visapult-core` root re-export list is pinned
//! here, so surface changes are deliberate and reviewed.
//!
//! The test parses the `pub use` statements of `visapult-core`'s `lib.rs`
//! and compares the re-exported leaf names against a checked-in snapshot.
//! If you add, remove or rename a root re-export, update `EXPECTED` in the
//! same commit — the diff review *is* the API review.

/// Every name re-exported at the `visapult_core` crate root, sorted.
const EXPECTED: &[&str] = &[
    "AsyncPlane",
    "BackendPlacement",
    "CacheReport",
    "CacheSpec",
    "CampaignReport",
    "Clock",
    "ComputePlatform",
    "DataSource",
    "DpssDataSource",
    "ExecutionMode",
    "ExecutionPath",
    "Fabric",
    "FabricLinks",
    "FanoutPlane",
    "FarmRun",
    "FarmTableSpec",
    "FrameAssembler",
    "FrameChunk",
    "FramePayload",
    "FrameSegments",
    "HeavyPayload",
    "LightPayload",
    "ModelFarm",
    "ModeledFabric",
    "MultiBackendFarm",
    "OverlapModel",
    "PathCapabilities",
    "PhaseMeans",
    "Pipeline",
    "PipelineBuilder",
    "PipelineConfig",
    "PlaneKind",
    "PlaneSession",
    "PlatformSpec",
    "QualityTier",
    "RealCampaignConfig",
    "RealCampaignReport",
    "RealDataPath",
    "RealDpssEnv",
    "RejectReason",
    "RenderFarm",
    "ReplayPlane",
    "ResolvedTelemetry",
    "ScenarioSpec",
    "ServiceConfig",
    "ServicePlan",
    "ServicePlane",
    "ServiceReport",
    "ServiceRunReport",
    "ServiceStats",
    "ServiceTableSpec",
    "SessionArrivalSpec",
    "SessionBroker",
    "SessionDelivery",
    "SessionEvent",
    "SessionSpec",
    "ShardLockStats",
    "ShardedBroker",
    "SimCampaignConfig",
    "SimCampaignReport",
    "SimTransportModel",
    "StageArtifacts",
    "StageContext",
    "StageReport",
    "StageSpec",
    "StrategyBandwidth",
    "StripeReceiver",
    "StripeSender",
    "StripedFabric",
    "SyntheticSource",
    "TcpTuning",
    "TelemetryReport",
    "TelemetrySpec",
    "ThreadFarm",
    "TransportConfig",
    "TransportError",
    "TransportReport",
    "TransportSpec",
    "TransportStats",
    "Viewer",
    "ViewerError",
    "ViewerReport",
    "VirtualClock",
    "VisapultError",
    "VisualizationStrategy",
    "WallClock",
    "drain_frames",
    "log_service_telemetry",
    "plan_chunks",
    "run_real_campaign",
    "run_real_campaign_in_env",
    "run_scenario",
    "run_service_plane",
    "run_sim_campaign",
    "striped_link",
];

/// Extract the leaf names of every root-level `pub use` in a lib.rs source.
fn re_exported_names(lib_rs: &str) -> Vec<String> {
    // Strip comments so commented-out exports don't count.
    let mut src = String::new();
    for line in lib_rs.lines() {
        let code = match line.find("//") {
            Some(i) => &line[..i],
            None => line,
        };
        src.push_str(code);
        src.push('\n');
    }

    let mut names = Vec::new();
    let mut rest = src.as_str();
    while let Some(i) = rest.find("pub use ") {
        rest = &rest[i + "pub use ".len()..];
        let end = rest.find(';').expect("pub use terminates");
        let stmt = &rest[..end];
        rest = &rest[end + 1..];
        // `path::{A, B, C}` or `path::Leaf`.
        let items = match stmt.find('{') {
            Some(b) => stmt[b + 1..stmt.rfind('}').unwrap()].to_string(),
            None => stmt.rsplit("::").next().unwrap_or(stmt).trim().to_string(),
        };
        for item in items.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            // Handle `X as Y` renames: the public name is Y.
            let public = match item.split(" as ").nth(1) {
                Some(renamed) => renamed.trim(),
                None => item,
            };
            names.push(public.to_string());
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

#[test]
fn core_root_re_exports_are_pinned() {
    let lib_rs = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/crates/visapult-core/src/lib.rs"));
    let actual = re_exported_names(lib_rs);
    let expected: Vec<String> = EXPECTED.iter().map(|s| s.to_string()).collect();
    assert!(
        expected.windows(2).all(|w| w[0] < w[1]),
        "keep EXPECTED sorted and duplicate-free"
    );
    let added: Vec<&String> = actual.iter().filter(|n| !expected.contains(n)).collect();
    let removed: Vec<&String> = expected.iter().filter(|n| !actual.contains(n)).collect();
    assert!(
        added.is_empty() && removed.is_empty(),
        "visapult-core root surface changed.\n  added: {added:?}\n  removed: {removed:?}\n\
         If intentional, update EXPECTED in tests/api_surface.rs in the same commit."
    );
}

#[test]
fn pinned_symbols_resolve() {
    // A compile-time spot check that the snapshot isn't fiction: touch the
    // load-bearing names through the facade crate.
    fn object_safe(
        caps: &visapult::core::PathCapabilities,
    ) -> (&dyn visapult::core::Clock, &dyn visapult::core::Fabric) {
        (caps.clock.as_ref(), caps.fabric.as_ref())
    }
    let real = visapult::core::PathCapabilities::real();
    let (clock, _) = object_safe(&real);
    assert!(!clock.is_virtual());
    let virt = visapult::core::PathCapabilities::virtual_time();
    assert!(virt.clock.is_virtual());
    let _: fn(&visapult::core::ScenarioSpec) -> Result<visapult::core::CampaignReport, visapult::core::VisapultError> =
        visapult::core::run_scenario;
}
