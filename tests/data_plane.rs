//! Property tests over the zero-copy data plane: the new shared-buffer
//! `read_range` path must be byte-identical to the legacy copying
//! `dpss_read`/`read_at` API on arbitrary datasets, layouts and offsets —
//! with and without the sharded block cache mounted.

use proptest::prelude::*;
use std::sync::Arc;
use visapult::dpss::{BlockCache, CacheConfig, DatasetDescriptor, DpssClient, DpssCluster, SeekFrom, StripeLayout};

/// Build a cluster with the given layout, register a dataset of `dims` ×
/// `timesteps`, and fill it with a seeded byte pattern.
fn populated(
    block_size: u64,
    servers: usize,
    disks: usize,
    dims: (usize, usize, usize),
    timesteps: usize,
    seed: u64,
) -> (DpssCluster, DatasetDescriptor, Vec<u8>) {
    let cluster = DpssCluster::new(StripeLayout::new(block_size, servers, disks));
    let descriptor = DatasetDescriptor::new("prop", dims, 4, timesteps);
    cluster.register_dataset(descriptor.clone());
    let data: Vec<u8> = (0..descriptor.total_size().bytes())
        .map(|i| (i.wrapping_mul(31).wrapping_add(seed) % 251) as u8)
        .collect();
    DpssClient::new(cluster.clone(), "stager")
        .write_at("prop", 0, &data)
        .unwrap();
    (cluster, descriptor, data)
}

proptest! {
    /// `read_range` (zero-copy) returns exactly the bytes the legacy copying
    /// `dpss_read` returns, for random layouts, dataset sizes and offsets.
    #[test]
    fn read_range_is_byte_identical_to_legacy_dpss_read(
        block_size in 64u64..9_000,
        servers in 1usize..6,
        disks in 1usize..4,
        nx in 2usize..24,
        ny in 2usize..24,
        nz in 2usize..24,
        timesteps in 1usize..4,
        offset_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
        seed in 0u64..1_000,
    ) {
        let (cluster, descriptor, data) = populated(block_size, servers, disks, (nx, ny, nz), timesteps, seed);
        let size = descriptor.total_size().bytes();
        let offset = ((size - 1) as f64 * offset_frac) as u64;
        let len = 1 + ((size - offset - 1) as f64 * len_frac) as u64;

        // Legacy path: seek + dpss_read into a caller buffer.
        let legacy = DpssClient::new(cluster.clone(), "legacy");
        let mut file = legacy.dpss_open("prop").unwrap();
        legacy.dpss_lseek(&mut file, SeekFrom::Start(offset)).unwrap();
        let mut buf = vec![0u8; len as usize];
        legacy.dpss_read(&mut file, &mut buf).unwrap();

        // Zero-copy path.
        let plane = DpssClient::new(cluster.clone(), "plane");
        let range = plane.read_range("prop", offset, len).unwrap();

        prop_assert_eq!(&range[..], &buf[..]);
        prop_assert_eq!(&buf[..], &data[offset as usize..(offset + len) as usize]);

        // And through the sharded cache, cold then warm.
        let cache = Arc::new(BlockCache::new(CacheConfig::new(64, 4)));
        let pieces = cluster.layout().split_range(offset, len).len() as u64;
        let cached = DpssClient::new(cluster, "cached").with_cache(Arc::clone(&cache));
        let cold = cached.read_range("prop", offset, len).unwrap();
        let warm = cached.read_range("prop", offset, len).unwrap();
        prop_assert_eq!(&cold[..], &buf[..]);
        prop_assert_eq!(&warm[..], &buf[..]);
        let stats = cache.stats();
        prop_assert!(stats.misses > 0);
        prop_assert_eq!(stats.hits + stats.misses, 2 * pieces, "every piece access is a hit or a miss");
    }

    /// Whole-block reads agree with the equivalent byte-range reads,
    /// including the clipped tail block.
    #[test]
    fn read_block_agrees_with_read_range(
        block_size in 64u64..4_096,
        servers in 1usize..5,
        nx in 2usize..16,
        ny in 2usize..16,
        nz in 2usize..16,
        seed in 0u64..1_000,
    ) {
        let (cluster, descriptor, data) = populated(block_size, servers, 2, (nx, ny, nz), 2, seed);
        let client = DpssClient::new(cluster.clone(), "viz");
        let size = descriptor.total_size().bytes();
        let blocks = cluster.layout().blocks_for(size);
        for index in [0, blocks / 2, blocks - 1] {
            let block = client.read_block("prop", index).unwrap();
            let start = index * block_size;
            let expect_len = (size - start).min(block_size);
            prop_assert_eq!(block.len() as u64, expect_len);
            prop_assert_eq!(&block[..], &data[start as usize..(start + expect_len) as usize]);
        }
    }
}
