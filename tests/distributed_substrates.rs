//! Integration tests of the distributed substrates working together:
//! DPSS-over-TCP feeding the renderer, HPSS staging feeding a campaign, and
//! the virtual-time campaigns agreeing with the analytic model and with each
//! other across modes.

use visapult::core::{ExecutionMode, OverlapModel, SimCampaignConfig};
use visapult::dpss::{net::serve_cluster, DatasetDescriptor, DpssClient, DpssCluster, HpssArchive, StripeLayout};
use visapult::netsim::Bandwidth;
use visapult::scenegraph::IbravrModel;
use visapult::volren::{
    combustion_series_bytes, render_view, Axis, RenderSettings, TransferFunction, ViewOrientation, Volume,
};

#[test]
fn striped_tcp_dpss_feeds_the_volume_renderer() {
    // Stage synthetic data, serve it over real TCP sockets, read a slab back
    // through the striped client, and render it: the image must match the one
    // rendered straight from the generator.
    let descriptor = DatasetDescriptor::small_combustion(2);
    let cluster = DpssCluster::new(StripeLayout::new(32 * 1024, 3, 2));
    cluster.register_dataset(descriptor.clone());
    let bytes = combustion_series_bytes(descriptor.dims, descriptor.timesteps, 5);
    DpssClient::new(cluster.clone(), "stager")
        .write_at(&descriptor.name, 0, &bytes)
        .unwrap();

    let (_servers, tcp_client) = serve_cluster(&cluster, "backend", None).unwrap();
    let (offset, len) = descriptor.z_slab_range(1, 1, 4);
    let mut slab_bytes = vec![0u8; len as usize];
    tcp_client.read_at(&descriptor.name, offset, &mut slab_bytes).unwrap();

    let (x, y, _) = descriptor.dims;
    let nz = len as usize / (x * y * 4);
    let from_cache = Volume::from_le_bytes((x, y, nz), &slab_bytes);
    let direct = Volume::from_le_bytes((x, y, nz), &bytes[offset as usize..(offset + len) as usize]);
    assert_eq!(from_cache, direct);

    let tf = TransferFunction::combustion_default();
    let settings = RenderSettings::with_size(32, 32);
    let a = visapult::volren::render_region(&from_cache, Axis::Z, &tf, (0.0, 1.5), &settings);
    let b = visapult::volren::render_region(&direct, Axis::Z, &tf, (0.0, 1.5), &settings);
    assert_eq!(a.mean_abs_diff(&b), 0.0);
}

#[test]
fn hpss_staging_then_ibravr_display() {
    // The full data lifecycle: archive -> cache -> slab render -> IBR display.
    let descriptor = DatasetDescriptor::small_combustion(2);
    let cluster = DpssCluster::four_server();
    let client = DpssClient::new(cluster.clone(), "stager");
    let content = combustion_series_bytes(descriptor.dims, descriptor.timesteps, 13);

    let mut archive = HpssArchive::new();
    archive.archive(descriptor.clone());
    let staging = archive
        .stage_to_dpss(&descriptor.name, &client, &content, Bandwidth::from_mbps(980.0))
        .unwrap();
    assert!(staging.hpss_time > staging.dpss_time, "the cache must beat the archive");

    // Read the full first timestep back and display it through IBRAVR.
    let reader = DpssClient::new(cluster, "viewer-backend");
    let step_bytes = descriptor.bytes_per_timestep().bytes() as usize;
    let mut buf = vec![0u8; step_bytes];
    reader.read_at(&descriptor.name, 0, &mut buf).unwrap();
    let volume = Volume::from_le_bytes(descriptor.dims, &buf);

    let tf = TransferFunction::combustion_default();
    let settings = RenderSettings::with_size(48, 48);
    let model = IbravrModel::from_volume(&volume, Axis::Z, 4, &tf, &settings);
    let composite = model.composite(&ViewOrientation::new(6.0, 3.0), 48, 48);
    assert!(composite.coverage() > 0.05);
    let truth = render_view(&volume, &ViewOrientation::new(6.0, 3.0), &tf, &settings);
    assert!(truth.coverage() > 0.05);
}

#[test]
fn sim_campaigns_track_the_analytic_model() {
    // The virtual-time scheduler must agree with the closed-form §4.3 model
    // when fed the same L and R (up to the cold start, jitter and send time).
    for mode in ExecutionMode::ALL {
        let config = SimCampaignConfig::lan_e4500(8, 10, mode);
        let report = config.model().unwrap();
        let model = OverlapModel::new(report.mean_load_time, report.mean_render_time);
        let predicted = match mode {
            ExecutionMode::Serial => model.serial_time(10),
            ExecutionMode::Overlapped => model.overlapped_time(10),
        };
        let relative_error = (report.total_time - predicted).abs() / predicted;
        assert!(
            relative_error < 0.15,
            "{} total {:.1}s vs analytic {:.1}s (err {:.2})",
            report.name,
            report.total_time,
            predicted,
            relative_error
        );
    }
}

#[test]
fn overlap_speedup_shrinks_when_loading_dominates() {
    // On the LAN, L and R are balanced and overlapping pays ~1.5x; on ESnet,
    // loading dominates so the speedup is smaller — the trend the paper
    // predicts from the Ts/To analysis.
    let speedup = |make: fn(usize, usize, ExecutionMode) -> SimCampaignConfig| {
        let serial = make(8, 8, ExecutionMode::Serial).model().unwrap();
        let overlapped = make(8, 8, ExecutionMode::Overlapped).model().unwrap();
        serial.total_time / overlapped.total_time
    };
    let lan = speedup(SimCampaignConfig::lan_e4500);
    let esnet = speedup(SimCampaignConfig::esnet_anl);
    assert!(
        lan > esnet,
        "LAN speedup {lan:.2} should exceed ESnet speedup {esnet:.2}"
    );
    assert!(lan > 1.3 && lan < 2.0);
    assert!(esnet > 1.0);
}

#[test]
fn viewer_payload_scales_quadratically_not_cubically() {
    // Double the volume resolution: raw data grows 8x, the IBR imagery the
    // viewer needs grows only with its own texture resolution.
    let tf = TransferFunction::combustion_default();
    let settings = RenderSettings::with_size(64, 64);
    let small = visapult::volren::combustion_jet((32, 32, 32), 0.5, 3);
    let big = visapult::volren::combustion_jet((64, 64, 64), 0.5, 3);
    let small_model = IbravrModel::from_volume(&small, Axis::Z, 4, &tf, &settings);
    let big_model = IbravrModel::from_volume(&big, Axis::Z, 4, &tf, &settings);
    assert_eq!(small_model.payload_bytes(), big_model.payload_bytes());
    assert_eq!(big.len(), small.len() * 8);
}
