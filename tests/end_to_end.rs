//! Cross-crate integration tests: the full pipeline from the DPSS cache
//! through the parallel back end to the viewer's composited image.
//!
//! These tests run through the deprecated `run_real_campaign` facade on
//! purpose: they are the regression coverage that keeps the legacy
//! config-level surface working (and identical to the builder path it
//! delegates to) while callers migrate to `pipeline::Pipeline`.
#![allow(deprecated)]

use visapult::core::{run_real_campaign, ExecutionMode, PipelineConfig, RealCampaignConfig, RealDataPath};
use visapult::netlogger::{tags, LifelinePlot, NlvOptions, ProfileAnalysis};

fn campaign(pes: usize, timesteps: usize, mode: ExecutionMode, path: RealDataPath) -> RealCampaignConfig {
    let mut config = RealCampaignConfig::small(PipelineConfig::small(pes, timesteps, mode));
    config.data_path = path;
    config
}

#[test]
fn dpss_backed_campaign_end_to_end() {
    let config = campaign(
        4,
        3,
        ExecutionMode::Serial,
        RealDataPath::Dpss { stream_rate_mbps: None },
    );
    let report = run_real_campaign(&config).unwrap();

    // Every PE delivered every frame to the viewer.
    assert_eq!(report.viewer.frames_received, 4 * 3);
    // The viewer actually drew something.
    assert!(report.viewer.final_image.coverage() > 0.01);
    // The amount of data crossing the viewer link is much smaller than the
    // raw data moved out of the cache (the O(n^3) -> O(n^2) reduction).
    assert!(report.data_reduction_factor() > 1.5);
    // The whole dataset was read exactly once.
    assert_eq!(
        report.backend.total_bytes_loaded(),
        config.pipeline.dataset.total_size().bytes()
    );
}

#[test]
fn overlapped_and_serial_campaigns_produce_identical_images() {
    let serial = run_real_campaign(&campaign(2, 3, ExecutionMode::Serial, RealDataPath::Synthetic)).unwrap();
    let overlapped = run_real_campaign(&campaign(2, 3, ExecutionMode::Overlapped, RealDataPath::Synthetic)).unwrap();
    assert_eq!(serial.viewer.frames_received, overlapped.viewer.frames_received);
    let diff = serial.viewer.final_image.mean_abs_diff(&overlapped.viewer.final_image);
    assert!(
        diff < 1e-4,
        "pipelining must not change the rendered result (diff={diff})"
    );
}

#[test]
fn shaped_dpss_link_slows_loading_but_not_correctness() {
    // Shape each DPSS server stream to ~1 MB/s so the load phase visibly
    // dominates, the way a WAN-limited campaign behaves.
    let fast = run_real_campaign(&campaign(
        2,
        2,
        ExecutionMode::Serial,
        RealDataPath::Dpss { stream_rate_mbps: None },
    ))
    .unwrap();
    let slow = run_real_campaign(&campaign(
        2,
        2,
        ExecutionMode::Serial,
        RealDataPath::Dpss {
            stream_rate_mbps: Some(8.0),
        },
    ))
    .unwrap();
    assert_eq!(fast.viewer.frames_received, slow.viewer.frames_received);
    let fast_load = fast.analysis.load_stats().mean;
    let slow_load = slow.analysis.load_stats().mean;
    assert!(
        slow_load > fast_load && slow_load > 0.01,
        "shaping should slow the load phase (fast {fast_load:.4}s, slow {slow_load:.4}s)"
    );
    let diff = fast.viewer.final_image.mean_abs_diff(&slow.viewer.final_image);
    assert!(diff < 1e-4);
}

#[test]
fn netlogger_profile_covers_both_ends_and_renders_a_lifeline() {
    let report = run_real_campaign(&campaign(3, 2, ExecutionMode::Overlapped, RealDataPath::Synthetic)).unwrap();
    // Backend and viewer events for every (PE, frame).
    assert_eq!(report.log.with_tag(tags::BE_LOAD_END).count(), 6);
    assert_eq!(report.log.with_tag(tags::BE_RENDER_END).count(), 6);
    assert_eq!(report.log.with_tag(tags::V_HEAVYPAYLOAD_END).count(), 6);
    // The standard analysis reconstructs per-frame phases.
    let analysis = ProfileAnalysis::from_log(&report.log);
    assert_eq!(analysis.frames.len(), 2);
    assert!(analysis
        .frames
        .iter()
        .all(|f| f.load_time >= 0.0 && f.render_time > 0.0));
    // The NLV lifeline plot renders with data on the expected rows.
    let plot = LifelinePlot::new(&report.log, NlvOptions::default());
    let counts = plot.row_counts();
    let loads = counts.iter().find(|(t, _)| t == tags::BE_LOAD_END).unwrap();
    assert_eq!(loads.1, 6);
}

#[test]
fn single_pe_campaign_works() {
    let report = run_real_campaign(&campaign(1, 2, ExecutionMode::Overlapped, RealDataPath::Synthetic)).unwrap();
    assert_eq!(report.viewer.frames_received, 2);
    assert!(report.viewer.final_image.coverage() > 0.0);
}
