//! Golden replay-fingerprint regression: the six bundled scenarios must
//! keep producing byte-identical deterministic telemetry.
//!
//! The constants below were captured from the pre-`pipeline` scenario
//! engine (PR 4 era) and survived the unified-driver redesign unchanged —
//! which is the point: an API refactor that silently drifts a counter, an
//! event, a config hash or a composite pixel changes a fingerprint and
//! fails here.  If a change *intentionally* alters deterministic telemetry
//! (a new fingerprinted counter, a scenario file edit), update the constants
//! in the same commit and say why.

use visapult::core::{run_scenario, ExecutionPath, Pipeline, ScenarioSpec};

/// (scenario, virtual-time fingerprint, real-path fingerprint).
const GOLDEN: [(&str, u64, u64); 6] = [
    ("quickstart_lan", 0xffaf8093e9cf2078, 0xefb19b85b31ad3ba),
    ("combustion_corridor_oc12", 0x8b325163a7d5a7e9, 0xcbe9d4e69e169b44),
    ("sc99_exhibit", 0x2206024ceddf59ae, 0xeb30484143c5460b),
    ("cache_stress", 0x5b43666872677677, 0x524f81c23dc976a3),
    ("wan_stripes", 0x49b1c7f92081f7ae, 0x8247ed69da0c8f8b),
    ("exhibit_floor", 0x794693172ef35ad8, 0x3f8f0d34ab9bca44),
];

#[test]
fn bundled_scenarios_match_their_golden_virtual_time_fingerprints() {
    for (name, virtual_fp, _) in GOLDEN {
        let spec = ScenarioSpec::bundled(name)
            .unwrap()
            .with_path(ExecutionPath::VirtualTime);
        let report = run_scenario(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            report.replay_fingerprint(),
            virtual_fp,
            "{name} [virtual-time] drifted from its golden fingerprint: got {:#018x}",
            report.replay_fingerprint(),
        );
    }
}

#[test]
fn bundled_scenarios_match_their_golden_real_fingerprints() {
    for (name, _, real_fp) in GOLDEN {
        let spec = ScenarioSpec::bundled(name).unwrap().with_path(ExecutionPath::Real);
        let report = run_scenario(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            report.replay_fingerprint(),
            real_fp,
            "{name} [real] drifted from its golden fingerprint: got {:#018x}",
            report.replay_fingerprint(),
        );
    }
}

#[test]
fn golden_covers_every_bundled_scenario() {
    let mut bundled = ScenarioSpec::bundled_names();
    bundled.sort_unstable();
    let mut golden: Vec<&str> = GOLDEN.iter().map(|(n, _, _)| *n).collect();
    golden.sort_unstable();
    assert_eq!(bundled, golden, "add golden fingerprints for new bundled scenarios");
}

#[test]
fn the_builder_and_run_scenario_agree_on_fingerprints() {
    // `run_scenario` is a thin compile-and-run over the builder; both
    // spellings must be the same campaign.
    for (name, virtual_fp, _) in GOLDEN {
        let spec = ScenarioSpec::bundled(name).unwrap();
        let report = Pipeline::builder(spec)
            .path(ExecutionPath::VirtualTime)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.replay_fingerprint(), virtual_fp, "{name} via the builder");
    }
}
