//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use proptest::prelude::*;
use visapult::core::protocol::{decode_heavy, decode_light, encode_heavy, encode_light};
use visapult::core::{HeavyPayload, LightPayload, OverlapModel};
use visapult::dpss::StripeLayout;
use visapult::volren::{decompose, Axis, Decomposition, RgbaImage};

proptest! {
    /// Every slab decomposition is an exact partition: cells sum to the total
    /// and consecutive slabs are contiguous along the axis.
    #[test]
    fn slab_decomposition_partitions(
        nx in 1usize..64,
        ny in 1usize..64,
        nz in 4usize..64,
        parts in 1usize..4,
    ) {
        let parts = parts.min(nz);
        let regions = decompose((nx, ny, nz), parts, Decomposition::Slab(Axis::Z));
        prop_assert_eq!(regions.len(), parts);
        let total: usize = regions.iter().map(|r| r.cells()).sum();
        prop_assert_eq!(total, nx * ny * nz);
        let mut expected_z = 0;
        for r in &regions {
            prop_assert_eq!(r.origin.2, expected_z);
            prop_assert_eq!((r.dims.0, r.dims.1), (nx, ny));
            expected_z += r.dims.2;
        }
        prop_assert_eq!(expected_z, nz);
    }

    /// Block decomposition also partitions exactly for awkward processor counts.
    #[test]
    fn block_decomposition_partitions(
        n in 8usize..48,
        parts in 1usize..9,
    ) {
        let regions = decompose((n, n, n), parts, Decomposition::Block);
        prop_assert_eq!(regions.len(), parts);
        let total: usize = regions.iter().map(|r| r.cells()).sum();
        prop_assert_eq!(total, n * n * n);
    }

    /// The DPSS striping layout covers any byte range exactly once and maps
    /// every block to a valid (server, disk).
    #[test]
    fn stripe_layout_splits_ranges_exactly(
        block_size in 1u64..10_000,
        servers in 1usize..8,
        disks in 1usize..6,
        offset in 0u64..1_000_000,
        len in 0u64..1_000_000,
    ) {
        let layout = StripeLayout::new(block_size, servers, disks);
        let pieces = layout.split_range(offset, len);
        let covered: u64 = pieces.iter().map(|(_, _, l)| l).sum();
        prop_assert_eq!(covered, len);
        let mut cursor = offset;
        for (block, in_block, piece_len) in pieces {
            prop_assert_eq!(block.0 * block_size + in_block, cursor);
            prop_assert!(in_block + piece_len <= block_size);
            let loc = layout.locate(block);
            prop_assert!(loc.server < servers);
            prop_assert!(loc.disk < disks);
            cursor += piece_len;
        }
    }

    /// Two distinct logical blocks never map to the same physical location.
    #[test]
    fn stripe_layout_never_collides(
        servers in 1usize..6,
        disks in 1usize..5,
        a in 0u64..5_000,
        b in 0u64..5_000,
    ) {
        prop_assume!(a != b);
        let layout = StripeLayout::new(4096, servers, disks);
        let la = layout.locate(visapult::dpss::BlockId(a));
        let lb = layout.locate(visapult::dpss::BlockId(b));
        prop_assert_ne!((la.server, la.disk, la.disk_offset), (lb.server, lb.disk, lb.disk_offset));
    }

    /// The §4.3 analytic model: overlapped never loses to serial, never beats
    /// it by more than 2x, and the bound N·max + min is respected exactly.
    #[test]
    fn overlap_model_bounds(load in 0.01f64..100.0, render in 0.01f64..100.0, n in 1usize..50) {
        let m = OverlapModel::new(load, render);
        let ts = m.serial_time(n);
        let to = m.overlapped_time(n);
        prop_assert!(to <= ts + 1e-9);
        prop_assert!(ts <= 2.0 * to + 1e-9);
        prop_assert!((to - (n as f64 * load.max(render) + load.min(render))).abs() < 1e-9);
        prop_assert!(m.speedup(n) <= OverlapModel::ideal_speedup(n) + 1e-9);
    }

    /// Light payloads survive an encode/decode round trip for arbitrary field
    /// values.
    #[test]
    fn light_payload_roundtrip(
        frame in 0u32..100_000,
        rank in 0u32..1_000,
        w in 1u32..2_048,
        h in 1u32..2_048,
        cx in -1e6f32..1e6,
        cy in -1e6f32..1e6,
        cz in -1e6f32..1e6,
        segs in 0u32..100_000,
    ) {
        let p = LightPayload {
            frame,
            rank,
            texture_width: w,
            texture_height: h,
            bytes_per_pixel: 4,
            quad_center: [cx, cy, cz],
            quad_u: [1.0, 0.0, 0.0],
            quad_v: [0.0, 1.0, 0.0],
            geometry_segments: segs,
        };
        let decoded = decode_light(&encode_light(&p)).unwrap();
        prop_assert_eq!(decoded, p);
    }

    /// Heavy payloads survive a round trip for arbitrary texture bytes and
    /// geometry.
    #[test]
    fn heavy_payload_roundtrip(
        frame in 0u32..10_000,
        rank in 0u32..64,
        texture in proptest::collection::vec(any::<u8>(), 0..4_096),
        segments in proptest::collection::vec((any::<f32>(), any::<f32>(), any::<f32>()), 0..64),
    ) {
        let geometry: Vec<([f32; 3], [f32; 3])> = segments
            .iter()
            .map(|(a, b, c)| ([*a, *b, *c], [*c, *b, *a]))
            .collect();
        let p = HeavyPayload {
            frame,
            rank,
            texture_rgba8: texture.into(),
            geometry: std::sync::Arc::new(geometry),
        };
        let decoded = decode_heavy(&encode_heavy(&p)).unwrap();
        // NaNs break PartialEq; compare field by field with bitwise floats.
        prop_assert_eq!(decoded.frame, p.frame);
        prop_assert_eq!(decoded.rank, p.rank);
        prop_assert_eq!(&decoded.texture_rgba8, &p.texture_rgba8);
        prop_assert_eq!(decoded.geometry.len(), p.geometry.len());
        for (d, o) in decoded.geometry.iter().zip(p.geometry.iter()) {
            for k in 0..3 {
                prop_assert_eq!(d.0[k].to_bits(), o.0[k].to_bits());
                prop_assert_eq!(d.1[k].to_bits(), o.1[k].to_bits());
            }
        }
    }

    /// Porter–Duff `over` keeps every channel inside [0, 1] and is the
    /// identity when the front image is fully transparent.
    #[test]
    fn compositing_stays_in_range(
        r in 0.0f32..1.0, g in 0.0f32..1.0, b in 0.0f32..1.0, a in 0.0f32..1.0,
        fr in 0.0f32..1.0, fg in 0.0f32..1.0, fb in 0.0f32..1.0, fa in 0.0f32..1.0,
    ) {
        let mut back = RgbaImage::new(2, 2);
        let mut front = RgbaImage::new(2, 2);
        for y in 0..2 {
            for x in 0..2 {
                back.set(x, y, [r, g, b, a]);
                front.set(x, y, [fr, fg, fb, fa]);
            }
        }
        let mut out = back.clone();
        out.composite_over(&front);
        for c in out.get(0, 0) {
            prop_assert!((0.0..=1.0 + 1e-6).contains(&c));
        }
        // Transparent front leaves the back unchanged.
        let mut transparent = RgbaImage::new(2, 2);
        for y in 0..2 {
            for x in 0..2 {
                transparent.set(x, y, [1.0, 1.0, 1.0, 0.0]);
            }
        }
        let mut unchanged = back.clone();
        unchanged.composite_over(&transparent);
        prop_assert!(unchanged.rms_diff(&back) < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Volume byte (de)serialization round-trips for arbitrary small volumes —
    /// the property that guarantees what the back end reads from the DPSS is
    /// exactly what the simulation wrote.
    #[test]
    fn volume_byte_roundtrip(
        nx in 1usize..12,
        ny in 1usize..12,
        nz in 1usize..12,
        seed in any::<u64>(),
    ) {
        use visapult::volren::Volume;
        let count = nx * ny * nz;
        let mut state = seed;
        let data: Vec<f32> = (0..count)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as f32 / u32::MAX as f32
            })
            .collect();
        let v = Volume::from_data((nx, ny, nz), data);
        let back = Volume::from_le_bytes((nx, ny, nz), &v.to_le_bytes());
        prop_assert_eq!(back, v);
    }
}
