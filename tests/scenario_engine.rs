//! Integration tests of the declarative scenario engine: every bundled TOML
//! scenario must execute on both execution paths, deterministically.

use visapult::core::{run_scenario, ExecutionPath, ScenarioSpec};

/// Load every spec from the `scenarios/` directory on disk (the same files
/// compiled in via `ScenarioSpec::bundled`).
fn scenario_files() -> Vec<(String, ScenarioSpec)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut specs = Vec::new();
    for entry in std::fs::read_dir(dir).expect("scenarios/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("toml") {
            let name = path.file_stem().unwrap().to_string_lossy().to_string();
            specs.push((
                name.clone(),
                ScenarioSpec::load(&path).unwrap_or_else(|e| panic!("{name}: {e}")),
            ));
        }
    }
    specs.sort_by(|a, b| a.0.cmp(&b.0));
    specs
}

#[test]
fn the_six_bundled_scenarios_are_on_disk_and_compiled_in() {
    let files = scenario_files();
    assert_eq!(files.len(), 6, "expected exactly the 6 bundled scenarios");
    let mut bundled = ScenarioSpec::bundled_names();
    bundled.sort_unstable();
    let from_disk: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(from_disk, bundled);
    // Compiled-in copies match the files on disk.
    for (name, spec) in &files {
        assert_eq!(
            &ScenarioSpec::bundled(name).unwrap(),
            spec,
            "{name} drifted from scenarios/{name}.toml"
        );
    }
}

#[test]
fn every_bundled_scenario_runs_on_both_paths_with_identical_same_seed_reports() {
    for (name, spec) in scenario_files() {
        for path in ExecutionPath::ALL {
            let spec = spec.clone().with_path(path);
            let first = run_scenario(&spec).unwrap_or_else(|e| panic!("{name} [{}]: {e}", path.label()));
            let second = run_scenario(&spec).unwrap_or_else(|e| panic!("{name} [{}]: {e}", path.label()));

            // Same seed, same spec => same deterministic content.
            assert_eq!(
                first.replay_fingerprint(),
                second.replay_fingerprint(),
                "{name} [{}] is not replay-deterministic",
                path.label()
            );
            // Virtual time is bit-identical down to every event timestamp.
            if path == ExecutionPath::VirtualTime {
                assert_eq!(first.to_json(), second.to_json(), "{name} virtual-time replay diverged");
            }
            // Sanity: the pipeline actually ran.
            let expected_frames = spec.pipeline.timesteps * spec.pipeline.pes;
            assert_eq!(first.frames_received(), expected_frames, "{name} [{}]", path.label());
            assert!(first.total_time() > 0.0);
            assert!(!first.log.is_empty());
        }
    }
}

#[test]
fn real_and_virtual_reports_for_one_scenario_are_structurally_interchangeable() {
    let spec = ScenarioSpec::bundled("combustion_corridor_oc12").unwrap();
    let real = run_scenario(&spec.clone().with_path(ExecutionPath::Real)).unwrap();
    let sim = run_scenario(&spec.with_path(ExecutionPath::VirtualTime)).unwrap();

    // Same staged structure from the same spec.
    assert_eq!(real.stages.len(), sim.stages.len());
    for (r, s) in real.stages.iter().zip(&sim.stages) {
        assert_eq!(r.name, s.name);
        assert_eq!(r.mode, s.mode);
        assert_eq!(r.timesteps, s.timesteps);
        assert_eq!(r.pes, s.pes);
        assert_eq!(r.metrics.frames_received, s.metrics.frames_received);
        assert_eq!(r.metrics.bytes_loaded, s.metrics.bytes_loaded);
    }
    // The real path produced pixels; the virtual path produced a schedule.
    assert!(real.stages.iter().all(|s| s.metrics.image_hash != 0));
    assert!(sim.stages.iter().all(|s| s.metrics.image_hash == 0));
    // Both produce analyzable logs with the same backend coverage.
    use visapult::netlogger::tags;
    assert_eq!(
        real.log.with_tag(tags::BE_LOAD_END).count(),
        sim.log.with_tag(tags::BE_LOAD_END).count()
    );
}

#[test]
fn cache_stress_reports_identical_nonzero_hit_rates_on_both_paths() {
    let spec = ScenarioSpec::bundled("cache_stress").unwrap();
    let real = run_scenario(&spec.clone().with_path(ExecutionPath::Real)).unwrap();
    let sim = run_scenario(&spec.clone().with_path(ExecutionPath::VirtualTime)).unwrap();

    // The cold-fill stage misses, the two playback stages hit: a strictly
    // positive hit rate, identical between the live sharded cache and the
    // virtual-time replay of the same block access sequence.
    let (rc, sc) = (real.cache.expect("real cache"), sim.cache.expect("sim cache"));
    assert!(real.cache_hit_rate() > 0.0, "playback must hit the cache");
    assert_eq!(rc, sc, "real and sim cache telemetry diverged");
    assert_eq!(rc.totals.misses, 24, "cold-fill pulls 3 steps x 8 blocks");
    assert_eq!(rc.totals.hits, 48, "two playback passes re-read them");
    assert!((real.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    for (r, s) in real.stages.iter().zip(&sim.stages) {
        assert_eq!(r.metrics.cache, s.metrics.cache, "stage {}", r.name);
    }

    // The cache telemetry is covered by each path's replay fingerprint:
    // rerunning reproduces it, and changing only the cache capacity (which
    // leaves every frame count untouched) changes it.
    for path in ExecutionPath::ALL {
        let fp = |s: &ScenarioSpec| run_scenario(s).unwrap().replay_fingerprint();
        let base = spec.clone().with_path(path);
        assert_eq!(fp(&base), fp(&base), "{} fingerprint unstable", path.label());
        let mut resized = base.clone();
        resized.cache.as_mut().unwrap().capacity_blocks = Some(32);
        assert_ne!(
            fp(&base),
            fp(&resized),
            "{} fingerprint misses cache config",
            path.label()
        );
    }
}

#[test]
fn scenario_seed_changes_the_replay_fingerprint() {
    let spec = ScenarioSpec::bundled("quickstart_lan")
        .unwrap()
        .with_path(ExecutionPath::VirtualTime);
    let a = run_scenario(&spec).unwrap();
    let b = run_scenario(&spec.clone().with_seed(spec.scenario.seed + 1)).unwrap();
    assert_ne!(a.replay_fingerprint(), b.replay_fingerprint());
}

#[test]
fn spec_toml_round_trip_preserves_bundled_scenarios() {
    for (name, spec) in scenario_files() {
        let text = spec.to_toml_string().unwrap();
        let back = ScenarioSpec::from_toml_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back, spec, "{name} did not round-trip:\n{text}");
    }
}
