//! Integration tests of the multi-session service layer: the session broker,
//! the shared-render fan-out planes (threaded and async), admission control
//! under churn, and the `exhibit_floor` acceptance sweep — including the
//! property that a degraded session can never corrupt a healthy session's
//! composite, on either plane.

use proptest::prelude::*;
use std::sync::Arc;
use visapult::core::transport::striped_link;
use visapult::core::{
    plan_chunks, run_scenario, AsyncPlane, ExecutionPath, FanoutPlane, FramePayload, FrameSegments, HeavyPayload,
    LightPayload, PlaneKind, QualityTier, ScenarioSpec, ServiceConfig, ServiceRunReport, SessionBroker, SessionSpec,
    ShardedBroker, StripeReceiver, TransportConfig, ViewerError,
};

const BOTH_PLANES: [PlaneKind; 2] = [PlaneKind::Threaded, PlaneKind::Async];

/// Drive the selected plane implementation over backend links.
fn drive_plane(
    plane: PlaneKind,
    broker: SessionBroker,
    inputs: Vec<StripeReceiver>,
    transport: &TransportConfig,
) -> ServiceRunReport {
    match plane {
        PlaneKind::Threaded => FanoutPlane::drive(broker, inputs, Vec::new(), transport),
        PlaneKind::Async => AsyncPlane::with_workers(3).drive(broker, inputs, Vec::new(), transport),
    }
}

fn payload(rank: u32, frame: u32, tex: usize) -> FramePayload {
    let texture: Vec<u8> = (0..tex * tex * 4).map(|i| (i % 249) as u8).collect();
    FramePayload {
        light: LightPayload {
            frame,
            rank,
            texture_width: tex as u32,
            texture_height: tex as u32,
            bytes_per_pixel: 4,
            quad_center: [1.0; 3],
            quad_u: [2.0, 0.0, 0.0],
            quad_v: [0.0, 2.0, 0.0],
            geometry_segments: 2,
        },
        heavy: HeavyPayload {
            frame,
            rank,
            texture_rgba8: texture.into(),
            geometry: Arc::new(vec![([0.0; 3], [1.0; 3]), ([2.0; 3], [3.0; 3])]),
        },
    }
}

/// Drive `frames` timesteps from `pes` PEs through the selected fan-out plane.
fn run_plane(
    plane: PlaneKind,
    schedule: Vec<SessionSpec>,
    config: ServiceConfig,
    transport: &TransportConfig,
    frames: u32,
    tex: usize,
    pes: usize,
) -> ServiceRunReport {
    let mut txs = Vec::with_capacity(pes);
    let mut rxs = Vec::with_capacity(pes);
    for _ in 0..pes {
        let (tx, rx) = striped_link(transport);
        txs.push(tx);
        rxs.push(rx);
    }
    let broker = SessionBroker::new(config, schedule);
    let handle = {
        let transport = transport.clone();
        std::thread::spawn(move || drive_plane(plane, broker, rxs, &transport))
    };
    let senders: Vec<_> = txs
        .into_iter()
        .enumerate()
        .map(|(pe, tx)| {
            std::thread::spawn(move || {
                for f in 0..frames {
                    tx.send_frame(&payload(pe as u32, f, tex)).unwrap();
                }
            })
        })
        .collect();
    for s in senders {
        s.join().unwrap();
    }
    handle.join().unwrap()
}

#[test]
fn exhibit_floor_serves_64_sessions_with_a_sixteenth_of_the_renders() {
    let spec = ScenarioSpec::bundled("exhibit_floor").unwrap();
    let real = run_scenario(&spec).unwrap();
    let sim = run_scenario(&spec.clone().with_path(ExecutionPath::VirtualTime)).unwrap();
    for (report, label) in [(&real, "real"), (&sim, "virtual-time")] {
        let totals = &report.service.as_ref().unwrap().totals;
        // 1 (solo) + 8 (briefing) + 64 (exhibit floor), everyone admitted.
        assert_eq!(totals.sessions_offered, 73, "{label}");
        assert_eq!(totals.sessions_admitted, 73, "{label}");
        assert_eq!(totals.sessions_rejected, 0, "{label}");
        assert_eq!(totals.peak_live_sessions, 64, "{label}");
        // The acceptance point: 64 sessions over 4 shared viewpoints means
        // the farm renders 1/16th of what a per-session farm would.
        let floor = report.stages.iter().find(|s| s.name == "exhibit-floor").unwrap();
        let svc = &floor.metrics.service;
        assert_eq!(svc.render_requests, 64 * 4, "{label}");
        assert_eq!(svc.renders_performed, 4 * 4, "{label}");
        assert!(svc.render_ratio() <= 1.0 / 16.0 + 1e-12, "{label}");
        assert!((svc.shared_render_hit_rate() - 0.9375).abs() < 1e-9, "{label}");
        // The briefing stage actually churned: staggered joins and two-frame
        // dwells mean far fewer session-frames than 8 sessions x 4 frames.
        let briefing = report.stages.iter().find(|s| s.name == "briefing").unwrap();
        assert!(
            briefing.metrics.service.render_requests < 8 * 4,
            "{label}: dwell expires ({} requests)",
            briefing.metrics.service.render_requests
        );
    }
    // The deterministic lifecycle half is identical across the paths.
    let (r, s) = (
        &real.service.as_ref().unwrap().totals,
        &sim.service.as_ref().unwrap().totals,
    );
    assert_eq!(
        (
            r.sessions_admitted,
            r.sessions_rejected,
            r.sessions_evicted,
            r.peak_live_sessions
        ),
        (
            s.sessions_admitted,
            s.sessions_rejected,
            s.sessions_evicted,
            s.peak_live_sessions
        )
    );
    assert_eq!(
        (r.render_requests, r.renders_performed),
        (s.render_requests, s.renders_performed)
    );
    // At this laptop scale nothing needed degrading on the real path: every
    // offered chunk was enqueued and every session frame assembled.
    assert_eq!(r.chunks_delivered, r.fanout_chunks);
    assert_eq!(r.chunks_dropped, 0);
    assert_eq!(r.frames_skipped, 0);
    // Replay determinism on the real path (the virtual-time path is covered
    // byte-for-byte by the scenario-engine suite).
    let again = run_scenario(&spec).unwrap();
    assert_eq!(real.replay_fingerprint(), again.replay_fingerprint());
}

#[test]
fn service_layer_leaves_the_primary_composite_untouched() {
    // The same scenario with and without the service layer (same seed, so
    // the same pixels) — fanning frames out to sessions, including a
    // flow-limited straggler behind an untuned single stripe, must not
    // change what the primary viewer composites.
    let doc = r#"
[scenario]
name = "composite-guard"
seed = 9
path = "real"

[testbed]
kind = "esnet-anl-smp"

[pipeline]
pes = 2
timesteps = 3
execution = "serial"

[transport]
stripes = 2
chunk_kb = 1

[service]
queue_depth = 4

[[service.arrivals]]
stage = "full"
sessions = 2
viewpoints = 2

[[service.arrivals]]
stage = "full"
sessions = 1
tier = "preview"
tuning = "untuned"
stripes = 1
"#;
    let with_service = ScenarioSpec::from_toml_str(doc).unwrap();
    let mut without_service = with_service.clone();
    without_service.service = None;
    let served = run_scenario(&with_service).unwrap();
    let solo = run_scenario(&without_service).unwrap();
    for (a, b) in served.stages.iter().zip(&solo.stages) {
        assert_eq!(a.metrics.frames_received, b.metrics.frames_received);
        assert_eq!(
            a.metrics.image_hash, b.metrics.image_hash,
            "fan-out changed the primary composite"
        );
    }
    let svc = &served.service.as_ref().unwrap().totals;
    assert_eq!(svc.sessions_admitted, 3);
    assert_eq!(
        svc.flow_limited_sessions, 1,
        "the untuned single stripe is flow-limited"
    );
}

#[test]
fn late_and_corrupt_chunks_surface_as_typed_errors_in_every_session() {
    use visapult::core::FrameChunk;
    // The typed-error seam is shared by both plane implementations: the
    // async plane must surface the same LateStripe / Corrupt / MissingFrame
    // errors, per session, as the threaded plane.
    for plane in BOTH_PLANES {
        let transport = TransportConfig::default().with_stripes(2).with_chunk_bytes(512);
        let (backend_tx, backend_rx) = striped_link(&transport);
        let schedule = vec![
            SessionSpec::new("s0", 0, QualityTier::Standard),
            SessionSpec::new("s1", 1, QualityTier::Standard),
        ];
        let broker = SessionBroker::new(ServiceConfig::default(), schedule);
        let handle = {
            let transport = transport.clone();
            std::thread::spawn(move || drive_plane(plane, broker, vec![backend_rx], &transport))
        };
        backend_tx.send_frame(&payload(0, 0, 8)).unwrap();
        // A straggler for the already-complete frame 0: every session must
        // report LateStripe, none may treat it as data.
        backend_tx
            .send_raw_chunk(FrameChunk {
                frame: 0,
                rank: 0,
                seq: 0,
                total: 4,
                stripe: 1,
                stripe_seq: 99,
                segment: 0,
                payload: bytes::Bytes::from(vec![0u8; 16]),
            })
            .unwrap();
        // Two copies of chunk 0 of a never-completed frame 7: the duplicate
        // is corrupt, typed, and per-session.
        for _ in 0..2 {
            backend_tx
                .send_raw_chunk(FrameChunk {
                    frame: 7,
                    rank: 0,
                    seq: 0,
                    total: 9,
                    stripe: 0,
                    stripe_seq: 100,
                    segment: 0,
                    payload: bytes::Bytes::from(vec![1u8; 16]),
                })
                .unwrap();
        }
        drop(backend_tx);
        let report = handle.join().unwrap();
        assert_eq!(report.sessions.len(), 2);
        for s in &report.sessions {
            assert_eq!(s.frames_completed, 1, "{}: {}", plane.label(), s.name);
            assert!(
                s.errors
                    .iter()
                    .any(|e| matches!(e, ViewerError::LateStripe { frame: 0, .. })),
                "{}: {}: {:?}",
                plane.label(),
                s.name,
                s.errors
            );
            assert!(
                s.errors.iter().any(|e| matches!(e, ViewerError::Corrupt { .. })),
                "{}: {}: {:?}",
                plane.label(),
                s.name,
                s.errors
            );
            assert!(
                s.errors
                    .iter()
                    .any(|e| matches!(e, ViewerError::MissingFrame { frame: 7, .. })),
                "{}: {}: {:?}",
                plane.label(),
                s.name,
                s.errors
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the chunking, stripe width or frame count — and whichever
    /// plane implementation runs the fan-out — a session degraded by a
    /// saturated queue behind a dial-up-grade pacer loses only its own
    /// frames: the healthy session assembles every frame with zero
    /// anomalies, nobody ever sees a Corrupt error, and the plane's chunk
    /// accounting stays exact (every owed chunk is either delivered or
    /// counted dropped).
    #[test]
    fn a_degraded_session_never_corrupts_a_healthy_session(
        chunk_bytes in 128usize..768,
        frames in 2u32..6,
        tex in 6usize..14,
    ) {
        let transport = TransportConfig::default().with_stripes(2).with_chunk_bytes(chunk_bytes);
        // Size the shared queue depth so the healthy session's 8-stripe
        // queue can hold the whole campaign (it can never overflow), while
        // the degraded session's single stripe holds only a fraction of it.
        let total_chunks = plan_chunks(
            FrameSegments::encode(&payload(0, 0, tex)).lens(),
            chunk_bytes,
            transport.stripes,
        )
        .len() as u32
            * frames;
        for plane in BOTH_PLANES {
            let mut healthy = SessionSpec::new("healthy", 0, QualityTier::Interactive);
            // Deep enough for the whole campaign on any one stripe: the
            // healthy session can never overflow, whatever the chunk
            // distribution.
            healthy.queue_depth = Some(total_chunks as usize);
            let mut degraded = SessionSpec::new("degraded", 0, QualityTier::Preview).paced_at_mbps(0.2);
            degraded.stripes = 1;
            degraded.queue_depth = Some(3);
            let config = ServiceConfig::default();
            let report = run_plane(plane, vec![healthy, degraded], config, &transport, frames, tex, 1);

            let healthy = report.sessions.iter().find(|s| s.name == "healthy").unwrap();
            let degraded = report.sessions.iter().find(|s| s.name == "degraded").unwrap();
            // The healthy session is untouched by its neighbour's collapse.
            prop_assert_eq!(healthy.frames_completed, u64::from(frames), "{}: {:?}", plane.label(), healthy.errors);
            prop_assert_eq!(healthy.frames_skipped, 0);
            prop_assert!(healthy.errors.is_empty(), "{}: healthy session saw {:?}", plane.label(), healthy.errors);
            // The degraded session lost frames — and only to typed,
            // partial-composite skips, never corruption.
            prop_assert!(degraded.frames_skipped > 0, "{}: queue never overflowed: {degraded:?}", plane.label());
            prop_assert!(
                degraded.errors.iter().all(|e| matches!(e, ViewerError::MissingFrame { .. })),
                "{}: {:?}",
                plane.label(),
                degraded.errors
            );
            prop_assert!(degraded.frames_completed < u64::from(frames));
            // Exact accounting: owed = delivered + dropped.
            prop_assert_eq!(
                report.stats.fanout_chunks,
                report.stats.chunks_delivered + report.stats.chunks_dropped
            );
        }
    }

    /// The plane implementations are interchangeable on the deterministic
    /// half of the report: whatever the arrival mix (random joins, dwells,
    /// tiers, viewpoints, over-subscription forcing rejections and
    /// evictions), the threaded and async planes drive the identical broker
    /// state machine to the identical lifecycle, shared-render and
    /// offered-load stats.
    #[test]
    fn threaded_and_async_planes_agree_on_deterministic_stats(
        mix in proptest::collection::vec((0u32..5, 1u32..6, 0u32..4, 0usize..3), 1..12),
        frames in 4u32..7,
        pes in 1usize..3,
    ) {
        let tiers = [QualityTier::Preview, QualityTier::Standard, QualityTier::Interactive];
        let schedule: Vec<SessionSpec> = mix
            .iter()
            .enumerate()
            .map(|(i, &(join, dwell, viewpoint, tier))| {
                let mut spec = SessionSpec::new(format!("s{i}"), viewpoint, tiers[tier]);
                spec.join_frame = join.min(frames - 1);
                spec.leave_frame = Some((spec.join_frame + dwell).min(frames));
                spec
            })
            .collect();
        // Tight capacity so bigger mixes exercise rejection and eviction.
        let config = ServiceConfig {
            max_sessions: 6,
            link_capacity_units: 10,
            render_slots: 2,
            queue_depth: 64,
            ..ServiceConfig::default()
        };
        let transport = TransportConfig::default().with_stripes(2).with_chunk_bytes(512);
        let reports: Vec<ServiceRunReport> = BOTH_PLANES
            .iter()
            .map(|&plane| run_plane(plane, schedule.clone(), config.clone(), &transport, frames, 8, pes))
            .collect();
        let (threaded, asynced) = (&reports[0], &reports[1]);
        prop_assert_eq!(&threaded.events, &asynced.events, "lifecycle event streams diverged");
        let deterministic = |s: &visapult::core::ServiceStats| {
            (
                s.sessions_offered,
                s.sessions_admitted,
                s.sessions_rejected,
                s.sessions_evicted,
                s.peak_live_sessions,
                s.render_requests,
                s.renders_performed,
                s.flow_limited_sessions,
                s.fanout_chunks,
                s.fanout_bytes,
            )
        };
        prop_assert_eq!(deterministic(&threaded.stats), deterministic(&asynced.stats));
        // Both planes keep exact chunk accounting whatever the timing.
        for (r, plane) in reports.iter().zip(BOTH_PLANES) {
            prop_assert_eq!(
                r.stats.fanout_chunks,
                r.stats.chunks_delivered + r.stats.chunks_dropped,
                "{} accounting leaked",
                plane.label()
            );
        }
    }

    /// `shards = 1` is not "approximately" the plain broker — it IS the
    /// plain broker: whatever the arrival mix (random joins, dwells, tiers,
    /// viewpoints, over-subscription forcing rejections and evictions), the
    /// single-shard [`ShardedBroker`] replays byte-identical lifecycle event
    /// streams, per-frame advance returns, and deterministic stats.
    #[test]
    fn a_single_shard_broker_is_byte_identical_to_the_plain_broker(
        mix in proptest::collection::vec((0u32..5, 1u32..6, 0u32..4, 0usize..3), 1..16),
        frames in 3u32..8,
    ) {
        let tiers = [QualityTier::Preview, QualityTier::Standard, QualityTier::Interactive];
        let schedule: Vec<SessionSpec> = mix
            .iter()
            .enumerate()
            .map(|(i, &(join, dwell, viewpoint, tier))| {
                let mut spec = SessionSpec::new(format!("s{i}"), viewpoint, tiers[tier]);
                spec.join_frame = join.min(frames - 1);
                spec.leave_frame = Some((spec.join_frame + dwell).min(frames));
                spec
            })
            .collect();
        // Tight capacity so bigger mixes exercise rejection and eviction.
        let config = ServiceConfig {
            max_sessions: 6,
            link_capacity_units: 10,
            render_slots: 2,
            queue_depth: 64,
            shards: Some(1),
            ..ServiceConfig::default()
        };
        let mut plain = SessionBroker::new(config.clone(), schedule.clone());
        let mut sharded = ShardedBroker::new(config, schedule);
        for f in 0..frames {
            prop_assert_eq!(plain.advance_to(f), sharded.advance_to(f), "frame {} diverged", f);
        }
        plain.finish();
        sharded.finish();
        let per_frame: Vec<(u64, u64)> = (0..frames).map(|f| (u64::from(f) + 3, (u64::from(f) + 1) * 512)).collect();
        plain.fold_fanout_load(&per_frame);
        sharded.fold_fanout_load(&per_frame);
        prop_assert_eq!(plain.stats(), &sharded.stats(), "stats diverged");
        prop_assert_eq!(plain.events(), &sharded.events()[..], "event streams diverged");
    }
}

/// The headline scale smoke: ten thousand sessions multiplexed over the
/// async plane's bounded worker pool.  Ignored by default — run it in
/// release with `cargo test --release --test service -- --ignored`.
#[test]
#[ignore = "10k-session scale smoke; run in release with -- --ignored"]
fn ten_thousand_sessions_ride_the_async_plane_on_a_bounded_pool() {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    fn live_threads() -> usize {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("Threads:"))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|n| n.parse().ok())
            })
            .unwrap_or(0)
    }

    const SESSIONS: usize = 10_000;
    const FRAMES: u32 = 2;
    let schedule: Vec<SessionSpec> = (0..SESSIONS)
        .map(|i| SessionSpec::new(format!("s{i}"), (i % 4) as u32, QualityTier::Preview))
        .collect();
    let config = ServiceConfig {
        max_sessions: SESSIONS,
        link_capacity_units: SESSIONS as u64,
        render_slots: 8,
        queue_depth: 16,
        ..ServiceConfig::default()
    };
    let transport = TransportConfig::default().with_stripes(2).with_chunk_bytes(4096);
    let stop = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicUsize::new(0));
    let monitor = {
        let (stop, peak) = (Arc::clone(&stop), Arc::clone(&peak));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                peak.fetch_max(live_threads(), Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        })
    };
    let report = run_plane(PlaneKind::Async, schedule, config, &transport, FRAMES, 16, 1);
    stop.store(true, Ordering::Relaxed);
    monitor.join().unwrap();
    assert_eq!(report.stats.sessions_admitted, SESSIONS as u64);
    assert_eq!(report.stats.peak_live_sessions, SESSIONS as u64);
    assert_eq!(
        report.stats.fanout_chunks,
        report.stats.chunks_delivered + report.stats.chunks_dropped
    );
    let peak = peak.load(Ordering::Relaxed);
    // Thread-per-session would sit at ~10k threads; the pool keeps the whole
    // process within a few dozen (workers + PEs + harness).
    assert!(peak > 0, "thread monitor never sampled");
    assert!(peak < 64, "async plane leaked threads: peak {peak}");
}

/// The exhibit-floor ceiling: one hundred thousand sessions over the sharded
/// async plane (4 viewpoint-hash shards, one per distinct viewpoint).  At
/// this scale the indexed admission ledger is load-bearing — the old
/// every-session-every-frame scan would spend its whole budget in
/// `advance_to`.  Ignored by default — run it in release with
/// `cargo test --release --test service -- --ignored`.
#[test]
#[ignore = "100k-session scale smoke; run in release with -- --ignored"]
fn one_hundred_thousand_sessions_ride_the_sharded_async_plane() {
    const SESSIONS: usize = 100_000;
    const SHARDS: usize = 4;
    const FRAMES: u32 = 2;
    let schedule: Vec<SessionSpec> = (0..SESSIONS)
        .map(|i| SessionSpec::new(format!("s{i}"), (i % SHARDS) as u32, QualityTier::Preview))
        .collect();
    let config = ServiceConfig {
        max_sessions: SESSIONS,
        link_capacity_units: SESSIONS as u64,
        render_slots: SHARDS as u32,
        queue_depth: 16,
        shards: Some(SHARDS),
        ..ServiceConfig::default()
    };
    let transport = TransportConfig::default().with_stripes(2).with_chunk_bytes(4096);
    let (tx, rx) = striped_link(&transport);
    let handle = {
        let transport = transport.clone();
        let broker = ShardedBroker::new(config, schedule);
        std::thread::spawn(move || AsyncPlane::with_workers(4).drive_sharded(broker, vec![rx], Vec::new(), &transport))
    };
    for f in 0..FRAMES {
        tx.send_frame(&payload(0, f, 16)).unwrap();
    }
    drop(tx);
    let report = handle.join().unwrap();
    assert_eq!(report.stats.sessions_admitted, SESSIONS as u64);
    assert_eq!(report.stats.peak_live_sessions, SESSIONS as u64);
    assert_eq!(
        report.stats.fanout_chunks,
        report.stats.chunks_delivered + report.stats.chunks_dropped
    );
    assert_eq!(report.shard_locks.len(), SHARDS);
}
