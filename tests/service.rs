//! Integration tests of the multi-session service layer: the session broker,
//! the shared-render fan-out plane, admission control under churn, and the
//! `exhibit_floor` acceptance sweep — including the property that a degraded
//! session can never corrupt a healthy session's composite.

use proptest::prelude::*;
use std::sync::Arc;
use visapult::core::transport::striped_link;
use visapult::core::{
    plan_chunks, run_scenario, ExecutionPath, FanoutPlane, FramePayload, FrameSegments, HeavyPayload, LightPayload,
    QualityTier, ScenarioSpec, ServiceConfig, SessionBroker, SessionSpec, TransportConfig, ViewerError,
};

fn payload(rank: u32, frame: u32, tex: usize) -> FramePayload {
    let texture: Vec<u8> = (0..tex * tex * 4).map(|i| (i % 249) as u8).collect();
    FramePayload {
        light: LightPayload {
            frame,
            rank,
            texture_width: tex as u32,
            texture_height: tex as u32,
            bytes_per_pixel: 4,
            quad_center: [1.0; 3],
            quad_u: [2.0, 0.0, 0.0],
            quad_v: [0.0, 2.0, 0.0],
            geometry_segments: 2,
        },
        heavy: HeavyPayload {
            frame,
            rank,
            texture_rgba8: texture.into(),
            geometry: Arc::new(vec![([0.0; 3], [1.0; 3]), ([2.0; 3], [3.0; 3])]),
        },
    }
}

/// Drive `frames` timesteps from one PE through the fan-out plane.
fn run_plane(
    schedule: Vec<SessionSpec>,
    config: ServiceConfig,
    transport: &TransportConfig,
    frames: u32,
    tex: usize,
) -> visapult::core::ServiceRunReport {
    let (backend_tx, backend_rx) = striped_link(transport);
    let broker = SessionBroker::new(config, schedule);
    let plane = {
        let transport = transport.clone();
        std::thread::spawn(move || FanoutPlane::drive(broker, vec![backend_rx], Vec::new(), &transport))
    };
    for f in 0..frames {
        backend_tx.send_frame(&payload(0, f, tex)).unwrap();
    }
    drop(backend_tx);
    plane.join().unwrap()
}

#[test]
fn exhibit_floor_serves_64_sessions_with_a_sixteenth_of_the_renders() {
    let spec = ScenarioSpec::bundled("exhibit_floor").unwrap();
    let real = run_scenario(&spec).unwrap();
    let sim = run_scenario(&spec.clone().with_path(ExecutionPath::VirtualTime)).unwrap();
    for (report, label) in [(&real, "real"), (&sim, "virtual-time")] {
        let totals = &report.service.as_ref().unwrap().totals;
        // 1 (solo) + 8 (briefing) + 64 (exhibit floor), everyone admitted.
        assert_eq!(totals.sessions_offered, 73, "{label}");
        assert_eq!(totals.sessions_admitted, 73, "{label}");
        assert_eq!(totals.sessions_rejected, 0, "{label}");
        assert_eq!(totals.peak_live_sessions, 64, "{label}");
        // The acceptance point: 64 sessions over 4 shared viewpoints means
        // the farm renders 1/16th of what a per-session farm would.
        let floor = report.stages.iter().find(|s| s.name == "exhibit-floor").unwrap();
        let svc = &floor.metrics.service;
        assert_eq!(svc.render_requests, 64 * 4, "{label}");
        assert_eq!(svc.renders_performed, 4 * 4, "{label}");
        assert!(svc.render_ratio() <= 1.0 / 16.0 + 1e-12, "{label}");
        assert!((svc.shared_render_hit_rate() - 0.9375).abs() < 1e-9, "{label}");
        // The briefing stage actually churned: staggered joins and two-frame
        // dwells mean far fewer session-frames than 8 sessions x 4 frames.
        let briefing = report.stages.iter().find(|s| s.name == "briefing").unwrap();
        assert!(
            briefing.metrics.service.render_requests < 8 * 4,
            "{label}: dwell expires ({} requests)",
            briefing.metrics.service.render_requests
        );
    }
    // The deterministic lifecycle half is identical across the paths.
    let (r, s) = (
        &real.service.as_ref().unwrap().totals,
        &sim.service.as_ref().unwrap().totals,
    );
    assert_eq!(
        (
            r.sessions_admitted,
            r.sessions_rejected,
            r.sessions_evicted,
            r.peak_live_sessions
        ),
        (
            s.sessions_admitted,
            s.sessions_rejected,
            s.sessions_evicted,
            s.peak_live_sessions
        )
    );
    assert_eq!(
        (r.render_requests, r.renders_performed),
        (s.render_requests, s.renders_performed)
    );
    // At this laptop scale nothing needed degrading on the real path: every
    // offered chunk was enqueued and every session frame assembled.
    assert_eq!(r.chunks_delivered, r.fanout_chunks);
    assert_eq!(r.chunks_dropped, 0);
    assert_eq!(r.frames_skipped, 0);
    // Replay determinism on the real path (the virtual-time path is covered
    // byte-for-byte by the scenario-engine suite).
    let again = run_scenario(&spec).unwrap();
    assert_eq!(real.replay_fingerprint(), again.replay_fingerprint());
}

#[test]
fn service_layer_leaves_the_primary_composite_untouched() {
    // The same scenario with and without the service layer (same seed, so
    // the same pixels) — fanning frames out to sessions, including a
    // flow-limited straggler behind an untuned single stripe, must not
    // change what the primary viewer composites.
    let doc = r#"
[scenario]
name = "composite-guard"
seed = 9
path = "real"

[testbed]
kind = "esnet-anl-smp"

[pipeline]
pes = 2
timesteps = 3
execution = "serial"

[transport]
stripes = 2
chunk_kb = 1

[service]
queue_depth = 4

[[service.arrivals]]
stage = "full"
sessions = 2
viewpoints = 2

[[service.arrivals]]
stage = "full"
sessions = 1
tier = "preview"
tuning = "untuned"
stripes = 1
"#;
    let with_service = ScenarioSpec::from_toml_str(doc).unwrap();
    let mut without_service = with_service.clone();
    without_service.service = None;
    let served = run_scenario(&with_service).unwrap();
    let solo = run_scenario(&without_service).unwrap();
    for (a, b) in served.stages.iter().zip(&solo.stages) {
        assert_eq!(a.metrics.frames_received, b.metrics.frames_received);
        assert_eq!(
            a.metrics.image_hash, b.metrics.image_hash,
            "fan-out changed the primary composite"
        );
    }
    let svc = &served.service.as_ref().unwrap().totals;
    assert_eq!(svc.sessions_admitted, 3);
    assert_eq!(
        svc.flow_limited_sessions, 1,
        "the untuned single stripe is flow-limited"
    );
}

#[test]
fn late_and_corrupt_chunks_surface_as_typed_errors_in_every_session() {
    use visapult::core::FrameChunk;
    let transport = TransportConfig::default().with_stripes(2).with_chunk_bytes(512);
    let (backend_tx, backend_rx) = striped_link(&transport);
    let schedule = vec![
        SessionSpec::new("s0", 0, QualityTier::Standard),
        SessionSpec::new("s1", 1, QualityTier::Standard),
    ];
    let broker = SessionBroker::new(ServiceConfig::default(), schedule);
    let plane = {
        let transport = transport.clone();
        std::thread::spawn(move || FanoutPlane::drive(broker, vec![backend_rx], Vec::new(), &transport))
    };
    backend_tx.send_frame(&payload(0, 0, 8)).unwrap();
    // A straggler for the already-complete frame 0: every session must
    // report LateStripe, none may treat it as data.
    backend_tx
        .send_raw_chunk(FrameChunk {
            frame: 0,
            rank: 0,
            seq: 0,
            total: 4,
            stripe: 1,
            stripe_seq: 99,
            segment: 0,
            payload: bytes::Bytes::from(vec![0u8; 16]),
        })
        .unwrap();
    // Two copies of chunk 0 of a never-completed frame 7: the duplicate is
    // corrupt, typed, and per-session.
    for _ in 0..2 {
        backend_tx
            .send_raw_chunk(FrameChunk {
                frame: 7,
                rank: 0,
                seq: 0,
                total: 9,
                stripe: 0,
                stripe_seq: 100,
                segment: 0,
                payload: bytes::Bytes::from(vec![1u8; 16]),
            })
            .unwrap();
    }
    drop(backend_tx);
    let report = plane.join().unwrap();
    assert_eq!(report.sessions.len(), 2);
    for s in &report.sessions {
        assert_eq!(s.frames_completed, 1, "{}", s.name);
        assert!(
            s.errors
                .iter()
                .any(|e| matches!(e, ViewerError::LateStripe { frame: 0, .. })),
            "{}: {:?}",
            s.name,
            s.errors
        );
        assert!(
            s.errors.iter().any(|e| matches!(e, ViewerError::Corrupt { .. })),
            "{}: {:?}",
            s.name,
            s.errors
        );
        assert!(
            s.errors
                .iter()
                .any(|e| matches!(e, ViewerError::MissingFrame { frame: 7, .. })),
            "{}: {:?}",
            s.name,
            s.errors
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the chunking, stripe width or frame count, a session
    /// degraded by a saturated queue behind a dial-up-grade pacer loses only
    /// its own frames: the healthy session assembles every frame with zero
    /// anomalies, nobody ever sees a Corrupt error, and the plane's chunk
    /// accounting stays exact (every owed chunk is either delivered or
    /// counted dropped).
    #[test]
    fn a_degraded_session_never_corrupts_a_healthy_session(
        chunk_bytes in 128usize..768,
        frames in 2u32..6,
        tex in 6usize..14,
    ) {
        let transport = TransportConfig::default().with_stripes(2).with_chunk_bytes(chunk_bytes);
        // Size the shared queue depth so the healthy session's 8-stripe
        // queue can hold the whole campaign (it can never overflow), while
        // the degraded session's single stripe holds only a fraction of it.
        let total_chunks = plan_chunks(
            FrameSegments::encode(&payload(0, 0, tex)).lens(),
            chunk_bytes,
            transport.stripes,
        )
        .len() as u32
            * frames;
        let mut healthy = SessionSpec::new("healthy", 0, QualityTier::Interactive);
        // Deep enough for the whole campaign on any one stripe: the healthy
        // session can never overflow, whatever the chunk distribution.
        healthy.queue_depth = Some(total_chunks as usize);
        let mut degraded = SessionSpec::new("degraded", 0, QualityTier::Preview).paced_at_mbps(0.2);
        degraded.stripes = 1;
        degraded.queue_depth = Some(3);
        let config = ServiceConfig::default();
        let report = run_plane(vec![healthy, degraded], config, &transport, frames, tex);

        let healthy = report.sessions.iter().find(|s| s.name == "healthy").unwrap();
        let degraded = report.sessions.iter().find(|s| s.name == "degraded").unwrap();
        // The healthy session is untouched by its neighbour's collapse.
        prop_assert_eq!(healthy.frames_completed, u64::from(frames), "{:?}", healthy.errors);
        prop_assert_eq!(healthy.frames_skipped, 0);
        prop_assert!(healthy.errors.is_empty(), "healthy session saw {:?}", healthy.errors);
        // The degraded session lost frames — and only to typed,
        // partial-composite skips, never corruption.
        prop_assert!(degraded.frames_skipped > 0, "queue never overflowed: {degraded:?}");
        prop_assert!(
            degraded.errors.iter().all(|e| matches!(e, ViewerError::MissingFrame { .. })),
            "{:?}",
            degraded.errors
        );
        prop_assert!(degraded.frames_completed < u64::from(frames));
        // Exact accounting: owed = delivered + dropped.
        prop_assert_eq!(
            report.stats.fanout_chunks,
            report.stats.chunks_delivered + report.stats.chunks_dropped
        );
    }
}
