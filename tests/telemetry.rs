//! Telemetry-plane integration tests: replay fingerprints are byte-identical
//! with the `[telemetry]` table on or off (on both execution paths), and the
//! threaded and async fan-out planes expose the same `fanout/*` metric set —
//! the executor's `exec/*` introspection is the async plane's documented
//! extra.

use std::collections::BTreeSet;
use std::sync::Arc;
use visapult::core::transport::striped_link;
use visapult::core::{
    run_scenario, AsyncPlane, ExecutionPath, FanoutPlane, FramePayload, HeavyPayload, LightPayload, PlaneKind,
    QualityTier, ScenarioSpec, ServiceConfig, SessionBroker, SessionSpec, TelemetrySpec, TransportConfig,
};
use visapult::netlogger::{MetricsHub, MetricsSnapshot};

fn fingerprint(path: ExecutionPath, enable: bool) -> u64 {
    let mut spec = ScenarioSpec::bundled("exhibit_floor").expect("bundled scenario");
    spec.scenario.path = path;
    spec.telemetry = Some(TelemetrySpec {
        enable: Some(enable),
        sample_every: Some(1),
        snapshot_frames: Some(4),
    });
    run_scenario(&spec).expect("scenario runs").replay_fingerprint()
}

/// The metrics plane observes; it must never perturb the deterministic
/// lifecycle half the fingerprints hash.
#[test]
fn fingerprints_invariant_under_telemetry_toggle() {
    for path in [ExecutionPath::Real, ExecutionPath::VirtualTime] {
        let on = fingerprint(path, true);
        let off = fingerprint(path, false);
        assert_eq!(
            on, off,
            "telemetry on/off changed the replay fingerprint on the {path:?} path"
        );
    }
}

fn payload(frame: u32) -> FramePayload {
    let tex = 32usize;
    let texture: Vec<u8> = (0..tex * tex * 4).map(|i| (i % 249) as u8).collect();
    FramePayload {
        light: LightPayload {
            frame,
            rank: 0,
            texture_width: tex as u32,
            texture_height: tex as u32,
            bytes_per_pixel: 4,
            quad_center: [0.5; 3],
            quad_u: [1.0, 0.0, 0.0],
            quad_v: [0.0, 1.0, 0.0],
            geometry_segments: 2,
        },
        heavy: HeavyPayload {
            frame,
            rank: 0,
            texture_rgba8: texture.into(),
            geometry: Arc::new(vec![([0.0; 3], [1.0; 3]), ([2.0; 3], [3.0; 3])]),
        },
    }
}

/// Run a small metered campaign and return the hub's final snapshot.
fn metered_snapshot(plane: PlaneKind) -> MetricsSnapshot {
    let transport = TransportConfig::default().with_stripes(2).with_chunk_bytes(4 * 1024);
    let config = ServiceConfig {
        max_sessions: 128,
        link_capacity_units: 1024,
        render_slots: 4,
        queue_depth: 256,
        ..ServiceConfig::default()
    };
    let schedule: Vec<SessionSpec> = (0..6)
        .map(|i| SessionSpec::new(format!("s{i}"), i % 2, QualityTier::Standard))
        .collect();
    let hub = MetricsHub::enabled();
    let (tx, rx) = striped_link(&transport);
    let broker = SessionBroker::new(config, schedule);
    let handle = {
        let transport = transport.clone();
        let hub = hub.clone();
        std::thread::spawn(move || match plane {
            PlaneKind::Threaded => FanoutPlane::drive_metered(broker, vec![rx], Vec::new(), &transport, &hub),
            PlaneKind::Async => {
                AsyncPlane::with_workers(2).drive_metered(broker, vec![rx], Vec::new(), &transport, &hub)
            }
        })
    };
    for f in 0..4 {
        tx.send_frame(&payload(f)).unwrap();
    }
    drop(tx);
    assert!(handle.join().unwrap().stats.frames_completed > 0);
    hub.snapshot(&format!("{plane:?}"))
}

fn keys_with_prefix(snap: &MetricsSnapshot, prefix: &str) -> BTreeSet<String> {
    snap.histograms
        .keys()
        .chain(snap.counters.keys())
        .chain(snap.high_waters.keys())
        .filter(|k| k.starts_with(prefix))
        .cloned()
        .collect()
}

/// Both planes must record the identical `fanout/*` instrument set, so
/// dashboards and baseline comparisons work unchanged whichever plane a
/// deployment picks.  `exec/*` is async-only by design.
#[test]
fn threaded_and_async_planes_expose_the_same_fanout_metrics() {
    let threaded = metered_snapshot(PlaneKind::Threaded);
    let asynced = metered_snapshot(PlaneKind::Async);
    if threaded.histograms.is_empty() && asynced.histograms.is_empty() {
        // Telemetry feature compiled out: both hubs are no-ops — parity
        // trivially holds and there is nothing further to check.
        return;
    }

    let threaded_fanout = keys_with_prefix(&threaded, "fanout/");
    let async_fanout = keys_with_prefix(&asynced, "fanout/");
    assert_eq!(
        threaded_fanout, async_fanout,
        "fanout/* metric presence must match between planes"
    );
    for key in ["fanout/wave_us", "fanout/waves", "fanout/chunks", "fanout/endpoints"] {
        assert!(threaded_fanout.contains(key), "missing {key} on the threaded plane");
    }
    let wave = threaded.histograms.get("fanout/wave_us").expect("wave histogram");
    assert!(wave.count > 0, "wave latencies recorded");

    // Executor introspection is the async plane's extra — and only its.
    assert!(keys_with_prefix(&threaded, "exec/").is_empty());
    let exec = keys_with_prefix(&asynced, "exec/");
    for key in [
        "exec/polls",
        "exec/parks",
        "exec/wakes",
        "exec/spawns",
        "exec/run_queue_depth",
    ] {
        assert!(exec.contains(key), "missing {key} on the async plane");
    }
}
