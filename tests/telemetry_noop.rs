//! The disabled-telemetry cost contract: a plane campaign driven with the
//! no-op hub performs **zero** metric atomics on the chunk hot path.
//!
//! This lives in its own test binary because the proof reads the
//! process-global `live_record_ops` counter — any concurrently running test
//! with a live hub would bump it and turn the zero-delta assertion flaky.

use std::sync::Arc;
use visapult::core::transport::striped_link;
use visapult::core::{
    AsyncPlane, FanoutPlane, FramePayload, HeavyPayload, LightPayload, PlaneKind, QualityTier, ServiceConfig,
    SessionBroker, SessionSpec, TransportConfig,
};
use visapult::netlogger::metrics::live_record_ops;
use visapult::netlogger::MetricsHub;

fn payload(frame: u32) -> FramePayload {
    let tex = 32usize;
    let texture: Vec<u8> = (0..tex * tex * 4).map(|i| (i % 249) as u8).collect();
    FramePayload {
        light: LightPayload {
            frame,
            rank: 0,
            texture_width: tex as u32,
            texture_height: tex as u32,
            bytes_per_pixel: 4,
            quad_center: [0.5; 3],
            quad_u: [1.0, 0.0, 0.0],
            quad_v: [0.0, 1.0, 0.0],
            geometry_segments: 2,
        },
        heavy: HeavyPayload {
            frame,
            rank: 0,
            texture_rgba8: texture.into(),
            geometry: Arc::new(vec![([0.0; 3], [1.0; 3]), ([2.0; 3], [3.0; 3])]),
        },
    }
}

/// One 4-frame, 4-session campaign through the selected plane with `hub`.
fn run_metered(plane: PlaneKind, hub: &MetricsHub) -> u64 {
    let transport = TransportConfig::default().with_stripes(2).with_chunk_bytes(4 * 1024);
    let config = ServiceConfig {
        max_sessions: 128,
        link_capacity_units: 1024,
        render_slots: 4,
        queue_depth: 256,
        ..ServiceConfig::default()
    };
    let schedule: Vec<SessionSpec> = (0..4)
        .map(|i| SessionSpec::new(format!("s{i}"), i % 2, QualityTier::Standard))
        .collect();
    let (tx, rx) = striped_link(&transport);
    let broker = SessionBroker::new(config, schedule);
    let handle = {
        let transport = transport.clone();
        let hub = hub.clone();
        std::thread::spawn(move || match plane {
            PlaneKind::Threaded => FanoutPlane::drive_metered(broker, vec![rx], Vec::new(), &transport, &hub),
            PlaneKind::Async => {
                AsyncPlane::with_workers(2).drive_metered(broker, vec![rx], Vec::new(), &transport, &hub)
            }
        })
    };
    for f in 0..4 {
        tx.send_frame(&payload(f)).unwrap();
    }
    drop(tx);
    handle.join().unwrap().stats.frames_completed
}

#[test]
fn disabled_telemetry_does_zero_atomics_on_the_chunk_hot_path() {
    // Both planes, no-op hub: every instrument handle is the None variant,
    // so the campaign must not touch a single metric atomic.
    let before = live_record_ops();
    for plane in [PlaneKind::Threaded, PlaneKind::Async] {
        assert!(run_metered(plane, &MetricsHub::disabled()) > 0);
    }
    assert_eq!(
        live_record_ops() - before,
        0,
        "a disabled hub must not perform metric atomics on the chunk hot path"
    );

    // Sanity check on the counter itself: the same campaign with a live hub
    // does record (skipped when the telemetry feature is compiled out and
    // `enabled()` degrades to the no-op hub).
    let hub = MetricsHub::enabled();
    if hub.is_enabled() {
        let before = live_record_ops();
        assert!(run_metered(PlaneKind::Threaded, &hub) > 0);
        assert!(
            live_record_ops() > before,
            "a live hub records on the same instrumented path"
        );
    }
}
