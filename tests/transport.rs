//! Integration tests of the striped WAN transport: property tests of chunk
//! reassembly under arbitrary reordering, and the wan_stripes acceptance run
//! — a real-mode stripe sweep whose per-stripe telemetry is structurally
//! identical to the virtual-time replay of the same spec, with reproducible
//! replay fingerprints and at least one partial composite before any final
//! frame.

use proptest::prelude::*;
use std::sync::Arc;
use visapult::core::protocol::FrameSegments;
use visapult::core::transport::AssemblyEvent;
use visapult::core::{
    plan_chunks, run_scenario, ExecutionPath, FrameAssembler, FrameChunk, FramePayload, HeavyPayload, LightPayload,
    ScenarioSpec,
};

fn frame_with(tex_w: usize, tex_h: usize, segments: usize, seed: u64) -> FramePayload {
    let texture: Vec<u8> = (0..tex_w * tex_h * 4)
        .map(|i| ((i as u64).wrapping_mul(131).wrapping_add(seed) % 251) as u8)
        .collect();
    let geometry: Vec<([f32; 3], [f32; 3])> = (0..segments)
        .map(|i| {
            let f = i as f32 + seed as f32;
            ([f, f * 0.5, 0.0], [f, f * 0.5, 1.0])
        })
        .collect();
    FramePayload {
        light: LightPayload {
            frame: 5,
            rank: 1,
            texture_width: tex_w as u32,
            texture_height: tex_h as u32,
            bytes_per_pixel: 4,
            quad_center: [1.0, 2.0, 3.0],
            quad_u: [4.0, 0.0, 0.0],
            quad_v: [0.0, 5.0, 0.0],
            geometry_segments: segments as u32,
        },
        heavy: HeavyPayload {
            frame: 5,
            rank: 1,
            texture_rgba8: texture.into(),
            geometry: Arc::new(geometry),
        },
    }
}

proptest! {
    /// Any chunking of any frame, delivered in any order, must reassemble to
    /// the exact original payload — with the texture arriving as the
    /// sender's own buffer (zero deep copies), however the stripes
    /// interleaved.
    #[test]
    fn stripe_reassembly_reproduces_the_payload_under_any_reordering(
        tex_w in 1usize..24,
        tex_h in 1usize..24,
        segments in 0usize..20,
        chunk_bytes in 16usize..5_000,
        stripes in 1u32..9,
        shuffle_seed in 0u64..10_000,
    ) {
        let frame = frame_with(tex_w, tex_h, segments, shuffle_seed);
        let wire = FrameSegments::encode(&frame);
        let seg_bufs = [wire.light.clone(), wire.heavy_header.clone(), wire.texture.clone(), wire.geometry.clone()];
        let plans = plan_chunks(wire.lens(), chunk_bytes, stripes);
        let total = plans.len() as u32;
        let mut chunks: Vec<FrameChunk> = plans
            .iter()
            .map(|p| FrameChunk {
                frame: 5,
                rank: 1,
                seq: p.seq,
                total,
                stripe: p.stripe,
                stripe_seq: 0,
                segment: p.segment,
                payload: seg_bufs[p.segment as usize].slice(p.start..p.start + p.len),
            })
            .collect();

        // Fisher–Yates with a seeded LCG: an arbitrary reordering, far beyond
        // what per-stripe FIFO interleaving alone could produce.
        let mut state = shuffle_seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        for i in (1..chunks.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            chunks.swap(i, j);
        }

        let copies_before = bytes::deep_copy_count();
        let mut assembler = FrameAssembler::new();
        let mut completed = None;
        for chunk in chunks {
            if let AssemblyEvent::Complete { payload, wire_bytes } = assembler.accept(chunk).unwrap() {
                prop_assert_eq!(wire_bytes, wire.wire_bytes());
                completed = Some(payload);
            }
        }
        let got = completed.expect("every chunk delivered, so the frame completes");
        prop_assert_eq!(&got, &frame);
        prop_assert!(
            got.heavy.texture_rgba8.ptr_eq(&frame.heavy.texture_rgba8),
            "reassembly must rejoin the sender's texture buffer in place"
        );
        prop_assert_eq!(bytes::deep_copy_count() - copies_before, 0, "reassembly must not copy");
        prop_assert_eq!(assembler.stats.chunks, u64::from(total));
        prop_assert_eq!(assembler.stats.bytes, wire.wire_bytes());
    }
}

/// The acceptance run: `wan_stripes` sweeps 1/4/8 stripes over the shared
/// OC-12 ESnet testbed in real mode, paced by the modeled untuned TCP
/// session; the 8-stripe stage's per-stripe TransportStats are structurally
/// identical to the virtual-time replay of the same spec, replay
/// fingerprints are reproducible on both paths, and the progressive viewer
/// composited at least one partial frame before a final one.
#[test]
fn wan_stripes_acceptance() {
    let spec = ScenarioSpec::bundled("wan_stripes").unwrap();
    let real = run_scenario(&spec).unwrap();
    let real_again = run_scenario(&spec).unwrap();
    assert_eq!(
        real.replay_fingerprint(),
        real_again.replay_fingerprint(),
        "real-mode striping must be replay-deterministic"
    );
    let sim_spec = spec.clone().with_path(ExecutionPath::VirtualTime);
    let sim = run_scenario(&sim_spec).unwrap();
    assert_eq!(
        sim.replay_fingerprint(),
        run_scenario(&sim_spec).unwrap().replay_fingerprint()
    );

    // The sweep: stages ran 1, 4 and 8 stripes on both paths.
    for report in [&real, &sim] {
        let widths: Vec<usize> = report
            .stages
            .iter()
            .map(|s| s.metrics.transport.stripe_count())
            .collect();
        assert_eq!(widths, vec![1, 4, 8], "{:?}", report.path);
    }

    // The 8-stripe stage: every stripe carried chunks, and the real stage's
    // stats are structurally identical to the virtual-time replay's.
    let (r8, s8) = (&real.stages[2].metrics.transport, &sim.stages[2].metrics.transport);
    assert_eq!(r8.stripe_count(), 8);
    assert_eq!(r8.stripe_count(), s8.stripe_count());
    assert_eq!(r8.frames, s8.frames);
    assert!(r8.per_stripe.iter().all(|s| s.chunks > 0));
    assert!(s8.per_stripe.iter().all(|s| s.chunks > 0));

    // The paper's UX property: partial composites before the final frame.
    let partials: u64 = real.stages.iter().map(|s| s.metrics.transport.partial_updates).sum();
    assert!(
        partials >= 1,
        "the progressive viewer must integrate stripes before frames complete"
    );

    // Each stage moved every frame, and the telemetry reached the log on
    // both paths.
    for report in [&real, &sim] {
        assert_eq!(report.transport.totals.frames as usize, report.frames_received());
        use visapult::netlogger::tags;
        assert_eq!(report.log.with_tag(tags::TRANSPORT_STATS).count(), 3);
        assert_eq!(report.log.with_tag(tags::TRANSPORT_STRIPE).count(), 1 + 4 + 8);
    }
}

/// Striping is the headline: with untuned windows over the ESnet RTT, the
/// paced 8-stripe stage must move its frames measurably faster than the
/// single-stripe stage (the §3.4 effect, felt on the real link).
#[test]
fn wan_stripes_real_pacing_shows_the_striping_win() {
    let spec = ScenarioSpec::bundled("wan_stripes").unwrap();
    let report = run_scenario(&spec).unwrap();
    let send_time = |i: usize| report.stages[i].metrics.mean_send_time;
    assert!(
        send_time(0) > 2.0 * send_time(2),
        "1 stripe ({}s) should be much slower than 8 ({}s)",
        send_time(0),
        send_time(2)
    );
}
