//! Property test: `EventLog::write_ulm` / `read_ulm` round-trips randomized
//! event logs — hosts/programs/tags/keys full of whitespace, `=` and
//! backslashes (the `ulm_escape` alphabet), int fields, float fields, and
//! string fields — up to the documented lossiness: timestamps quantize to
//! microseconds, and integral floats re-parse as ints (compared via
//! `as_float`).

use proptest::collection::vec;
use proptest::prelude::*;
use visapult::netlogger::{Event, EventLog, FieldValue};

/// The token alphabet leans on every character `ulm_escape` must handle —
/// spaces, tabs, `=`, backslashes — plus benign filler.
const CHARS: &[char] = &['a', 'b', 'Z', '9', '_', '.', '-', ':', '/', ' ', '\t', '=', '\\', 'µ'];

/// A token from sampled alphabet indices, letter-prefixed so it can never
/// re-parse as a number (the ULM field parser tries int, then float, then
/// falls back to string).
fn token(picks: &[usize]) -> String {
    let mut s = String::from("k");
    for &p in picks {
        s.push(CHARS[p % CHARS.len()]);
    }
    s
}

type FieldCase = (Vec<usize>, u8, i64, u64, Vec<usize>);

fn build_field(case: &FieldCase) -> (String, FieldValue) {
    let (key_picks, kind, int_v, float_us, str_picks) = case;
    let value = match kind % 3 {
        0 => FieldValue::Int(*int_v),
        1 => FieldValue::Float(*float_us as f64 / 1024.0),
        _ => FieldValue::Str(token(str_picks)),
    };
    (token(key_picks), value)
}

proptest! {
    #[test]
    fn ulm_roundtrip_randomized(
        cases in vec(
            (
                0u64..1_000_000,     // fractional timestamp part, microseconds
                vec(0usize..14, 0..8),  // host
                vec(0usize..14, 0..8),  // program
                vec(0usize..14, 0..8),  // tag
                vec(
                    (
                        vec(0usize..14, 0..6), // field key
                        0u8..3,                // value kind
                        -1_000_000_000i64..1_000_000_000, // int value
                        0u64..2_000_000_000,   // float value, 1/1024 units
                        vec(0usize..14, 0..8), // string value
                    ),
                    0..5,
                ),
            ),
            0..10,
        ),
    ) {
        let mut expected: Vec<Event> = Vec::new();
        for (i, (frac_us, host, prog, tag, fields)) in cases.iter().enumerate() {
            // Timestamps strictly increasing and >1µs apart, so the sort
            // inside `from_events` is order-stable across the quantizing
            // round-trip.
            let ts = i as f64 * 2.0 + *frac_us as f64 / 1e7;
            let mut e = Event::new(ts, token(host), token(prog), token(tag));
            for field in fields {
                let (key, value) = build_field(field);
                e = e.with_field(key, value);
            }
            expected.push(e);
        }

        let log = EventLog::from_events(expected.clone());
        let mut buf = Vec::new();
        log.write_ulm(&mut buf).unwrap();
        let back = EventLog::read_ulm(std::io::Cursor::new(buf)).unwrap();

        prop_assert_eq!(back.len(), expected.len());
        for (orig, got) in expected.iter().zip(back.events()) {
            prop_assert!((orig.timestamp - got.timestamp).abs() < 1e-6,
                "timestamp {} -> {}", orig.timestamp, got.timestamp);
            prop_assert_eq!(&orig.host, &got.host);
            prop_assert_eq!(&orig.program, &got.program);
            prop_assert_eq!(&orig.tag, &got.tag);
            prop_assert_eq!(orig.fields.len(), got.fields.len());
            for (key, value) in &orig.fields {
                let round = got.field(key);
                prop_assert!(round.is_some(), "field {key:?} lost");
                let round = round.unwrap();
                match value {
                    FieldValue::Int(i) => prop_assert_eq!(round.as_int(), Some(*i)),
                    // Integral floats legitimately re-parse as ints;
                    // `as_float` widens them back.  Non-integral f64s
                    // round-trip exactly (shortest-repr Display).
                    FieldValue::Float(f) => prop_assert_eq!(round.as_float(), Some(*f)),
                    FieldValue::Str(s) => prop_assert_eq!(round.as_str(), Some(s.as_str())),
                }
            }
        }
    }
}
