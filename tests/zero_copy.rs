//! End-to-end proof of the zero-copy data plane (this file stays a separate
//! integration-test binary on purpose: the deep-copy counter is process-wide,
//! and here nothing else runs in the process to touch it).
//!
//! The acceptance bar: a heavy frame payload performs **zero** byte-buffer
//! copies between the `DataSource` load and the viewer receiving it.  With
//! block-aligned slabs the whole real pipeline — DPSS arena read, cache
//! fill, render packaging, channel transport, viewer receipt — clears an
//! even higher bar: zero deep copies end to end, asserted via the `bytes`
//! shim's process-wide copy counter.

use visapult::core::{run_scenario, CacheSpec, ScenarioSpec, TransportSpec};

fn assert_zero_copy_run(spec: &ScenarioSpec, label: &str) {
    let before = bytes::deep_copy_count();
    let report = run_scenario(spec).unwrap();
    let after = bytes::deep_copy_count();
    assert_eq!(
        after - before,
        0,
        "{label}: the pipeline deep-copied a byte buffer somewhere between load and viewer receive"
    );
    // The run actually moved data (this is not a trivially empty pipeline).
    assert!(report.frames_received() > 0);
    assert!(report.bytes_loaded() > 0);
    assert!(report.wire_bytes() > 0);
}

/// The bundled quickstart: synthetic combustion staged onto an in-process
/// DPSS, 4 overlapped PEs, the real viewer.  32³ floats across 4 PEs makes
/// every slab a sub-range of a single 64 KB block, so even the loads are
/// pure arena slices.
#[test]
fn real_pipeline_is_copy_free_from_load_to_viewer() {
    let spec = ScenarioSpec::bundled("quickstart_lan").unwrap();
    assert_zero_copy_run(&spec, "uncached quickstart");
}

/// The striped transport under stress: 8 stripes and 1 KB chunks force every
/// frame through multi-chunk fan-out and out-of-order reassembly.  Chunks
/// are O(1) slices of the frame's segment buffers and reassembly rejoins
/// them in place (`Bytes::try_join`), so even heavily striped frames cross
/// the link — and feed the progressive compositor — with zero deep copies.
#[test]
fn striped_transport_path_is_copy_free() {
    let mut spec = ScenarioSpec::bundled("quickstart_lan").unwrap();
    spec.transport = Some(TransportSpec {
        stripes: Some(8),
        chunk_kb: Some(1),
        queue_depth: None,
        tcp: None,
        emulate_wan: Some(false),
    });
    let before = bytes::deep_copy_count();
    let report = run_scenario(&spec).unwrap();
    assert_eq!(
        bytes::deep_copy_count() - before,
        0,
        "striping/reassembly must not copy frame bytes"
    );
    // Every stripe actually carried chunks, and reassembly never fell back
    // to a gather copy.
    assert_eq!(report.transport.totals.stripe_count(), 8);
    assert!(report.transport.totals.per_stripe.iter().all(|s| s.chunks > 0));
    assert_eq!(report.transport.totals.reassembly_copies, 0);
}

/// Same pipeline with the sharded block cache mounted: misses fill whole
/// blocks (still arena slices), hits slice cache entries — no copies either
/// way, and the replayed second stage is served from cache.
#[test]
fn cached_pipeline_is_copy_free_and_hits_on_replay() {
    let mut spec = ScenarioSpec::bundled("quickstart_lan").unwrap();
    spec.cache = Some(CacheSpec {
        capacity_blocks: Some(64),
        shards: Some(4),
    });
    let before = bytes::deep_copy_count();
    let report = run_scenario(&spec).unwrap();
    assert_eq!(bytes::deep_copy_count() - before, 0, "cached run must not copy");
    let cache = report.cache.expect("cache telemetry present");
    assert!(cache.totals.misses > 0);
}
